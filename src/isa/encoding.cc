#include "isa/encoding.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::isa
{

namespace
{

// ===================================================================
// RISCV flavor
// ===================================================================
//
// 32-bit word: opc[6:2]|11, rd[11:7], f3[14:12], rs1[19:15],
// rs2[24:20], f7[31:25]. 16-bit compressed when bits[1:0] != 11.

constexpr u32 kRvLoad = 0b00000;
constexpr u32 kRvLoadFp = 0b00001;
constexpr u32 kRvOpImm = 0b00100;
constexpr u32 kRvStore = 0b01000;
constexpr u32 kRvStoreFp = 0b01001;
constexpr u32 kRvOp = 0b01100;
constexpr u32 kRvLui = 0b01101;
constexpr u32 kRvOpFp = 0b10100;
constexpr u32 kRvBranch = 0b11000;
constexpr u32 kRvJalr = 0b11001;
constexpr u32 kRvJal = 0b11011;
constexpr u32 kRvSystem = 0b11100;

u32
rvWord(u32 opc, u32 rd, u32 f3, u32 rs1, u32 rs2, u32 f7)
{
    return 0b11 | (opc << 2) | (rd << 7) | (f3 << 12) | (rs1 << 15) |
           (rs2 << 20) | (f7 << 25);
}

u32
rvIType(u32 opc, u32 rd, u32 f3, u32 rs1, i64 imm)
{
    return 0b11 | (opc << 2) | (rd << 7) | (f3 << 12) | (rs1 << 15) |
           (static_cast<u32>(imm & 0xfff) << 20);
}

u32
rvSType(u32 opc, u32 f3, u32 rs1, u32 rs2, i64 imm)
{
    const u32 lo = imm & 0x1f;
    const u32 hi = (imm >> 5) & 0x7f;
    return 0b11 | (opc << 2) | (lo << 7) | (f3 << 12) | (rs1 << 15) |
           (rs2 << 20) | (hi << 25);
}

void
put16(std::vector<u8> &out, u32 half)
{
    out.push_back(half & 0xff);
    out.push_back((half >> 8) & 0xff);
}

void
put32(std::vector<u8> &out, u32 word)
{
    out.push_back(word & 0xff);
    out.push_back((word >> 8) & 0xff);
    out.push_back((word >> 16) & 0xff);
    out.push_back((word >> 24) & 0xff);
}

bool
isPrimeReg(unsigned r)
{
    return r >= 8 && r <= 15;
}

/// Map a branch condition to the RISCV BRANCH funct3, or -1.
int
rvBranchF3(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return 0;
      case Cond::Ne: return 1;
      case Cond::Lt: return 4;
      case Cond::Ge: return 5;
      case Cond::LtU: return 6;
      case Cond::GeU: return 7;
      default: return -1;
    }
}

/// Try to emit a 2-byte compressed form. Returns true when emitted.
bool
encodeRiscvCompressed(const MInst &mi, std::vector<u8> &out)
{
    switch (mi.op) {
      case MOp::AddI:
        if (mi.ra == 0 && mi.rd != 0 && fitsSigned(mi.imm, 6)) {
            // c.li rd, imm6
            const u32 imm = mi.imm & 0x3f;
            put16(out, 0b01 | (2u << 13) | (u32(mi.rd) << 7) |
                           ((imm >> 5) << 12) | ((imm & 0x1f) << 2));
            return true;
        }
        if (mi.ra == mi.rd && mi.rd != 0 && mi.imm != 0 &&
            fitsSigned(mi.imm, 6)) {
            // c.addi rd, imm6
            const u32 imm = mi.imm & 0x3f;
            put16(out, 0b01 | (0u << 13) | (u32(mi.rd) << 7) |
                           ((imm >> 5) << 12) | ((imm & 0x1f) << 2));
            return true;
        }
        return false;
      case MOp::Mov:
        if (!mi.fp && mi.rd != 0 && mi.ra != 0) {
            // c.mv rd, rs2
            put16(out, 0b10 | (4u << 13) | (0u << 12) |
                           (u32(mi.rd) << 7) | (u32(mi.ra) << 2));
            return true;
        }
        return false;
      case MOp::Add:
        if (mi.rd == mi.ra && mi.rd != 0 && mi.rb != 0) {
            // c.add rd, rs2
            put16(out, 0b10 | (4u << 13) | (1u << 12) |
                           (u32(mi.rd) << 7) | (u32(mi.rb) << 2));
            return true;
        }
        return false;
      case MOp::Ld:
        if (mi.size == 8 && isPrimeReg(mi.rd) && isPrimeReg(mi.ra) &&
            mi.imm >= 0 && mi.imm <= 248 && (mi.imm & 7) == 0) {
            // c.ld rd', rs1', uimm8
            const u32 uimm = static_cast<u32>(mi.imm);
            put16(out, 0b00 | (2u << 13) | (((uimm >> 3) & 7) << 10) |
                           ((u32(mi.ra) - 8) << 7) |
                           (((uimm >> 6) & 3) << 5) |
                           ((u32(mi.rd) - 8) << 2));
            return true;
        }
        return false;
      case MOp::St:
        if (mi.size == 8 && isPrimeReg(mi.rb) && isPrimeReg(mi.ra) &&
            mi.imm >= 0 && mi.imm <= 248 && (mi.imm & 7) == 0) {
            // c.sd rs2', rs1', uimm8
            const u32 uimm = static_cast<u32>(mi.imm);
            put16(out, 0b00 | (3u << 13) | (((uimm >> 3) & 7) << 10) |
                           ((u32(mi.ra) - 8) << 7) |
                           (((uimm >> 6) & 3) << 5) |
                           ((u32(mi.rb) - 8) << 2));
            return true;
        }
        return false;
      case MOp::Jmp:
        if (fitsSigned(mi.imm, 12) && (mi.imm & 1) == 0) {
            // c.j imm11<<1
            const u32 f = (mi.imm >> 1) & 0x7ff;
            put16(out, 0b01 | (5u << 13) | (((f >> 10) & 1) << 12) |
                           ((f & 0x3ff) << 2));
            return true;
        }
        return false;
      case MOp::Br:
        if ((mi.cond == Cond::Eq || mi.cond == Cond::Ne) && mi.rb == 0 &&
            isPrimeReg(mi.ra) && fitsSigned(mi.imm, 9) &&
            (mi.imm & 1) == 0) {
            // c.beqz / c.bnez rs1', imm8<<1
            const u32 f3 = mi.cond == Cond::Eq ? 6 : 7;
            const u32 f = (mi.imm >> 1) & 0xff;
            put16(out, 0b01 | (f3 << 13) | (((f >> 7) & 1) << 12) |
                           (((f >> 5) & 3) << 10) |
                           ((u32(mi.ra) - 8) << 7) | ((f & 0x1f) << 2));
            return true;
        }
        return false;
      case MOp::Ret:
        // c.jr x1
        put16(out, 0b10 | (4u << 13) | (0u << 12) | (1u << 7));
        return true;
      case MOp::JmpR:
        if (mi.ra != 0 && mi.ra != 1) {
            // c.jr ra
            put16(out, 0b10 | (4u << 13) | (0u << 12) |
                           (u32(mi.ra) << 7));
            return true;
        }
        return false;
      default:
        return false;
    }
}

void
encodeRiscv(const MInst &mi, std::vector<u8> &out, bool allowCompressed)
{
    if (allowCompressed && encodeRiscvCompressed(mi, out))
        return;

    auto aluRR = [&](u32 f3, u32 f7) {
        put32(out, rvWord(kRvOp, mi.rd, f3, mi.ra, mi.rb, f7));
    };
    auto aluImm = [&](u32 f3, i64 imm) {
        if (!fitsSigned(imm, 12))
            fatal("riscv encode: imm %lld does not fit",
                  static_cast<long long>(imm));
        put32(out, rvIType(kRvOpImm, mi.rd, f3, mi.ra, imm));
    };

    switch (mi.op) {
      case MOp::Nop:
        put32(out, rvIType(kRvOpImm, 0, 0, 0, 0)); // addi x0, x0, 0
        break;
      case MOp::Add: aluRR(0, 0); break;
      case MOp::Sub: aluRR(0, 0x20); break;
      case MOp::Shl: aluRR(1, 0); break;
      case MOp::Slt: aluRR(2, 0); break;
      case MOp::SltU: aluRR(3, 0); break;
      case MOp::Xor: aluRR(4, 0); break;
      case MOp::Shr: aluRR(5, 0); break;
      case MOp::Sra: aluRR(5, 0x20); break;
      case MOp::Or: aluRR(6, 0); break;
      case MOp::And: aluRR(7, 0); break;
      case MOp::Mul: aluRR(0, 1); break;
      case MOp::Div: aluRR(4, 1); break;
      case MOp::DivU: aluRR(5, 1); break;
      case MOp::Rem: aluRR(6, 1); break;
      case MOp::RemU: aluRR(7, 1); break;
      case MOp::AddI: aluImm(0, mi.imm); break;
      case MOp::ShlI: aluImm(1, mi.imm & 0x3f); break;
      case MOp::SltI: aluImm(2, mi.imm); break;
      case MOp::SltIU: aluImm(3, mi.imm); break;
      case MOp::XorI: aluImm(4, mi.imm); break;
      case MOp::ShrI: aluImm(5, mi.imm & 0x3f); break;
      case MOp::SraI: aluImm(5, (mi.imm & 0x3f) | 0x400); break;
      case MOp::OrI: aluImm(6, mi.imm); break;
      case MOp::AndI: aluImm(7, mi.imm); break;
      case MOp::Lui: {
        if (mi.imm & 0xfff)
            fatal("riscv encode: lui imm low bits set");
        const u32 imm20 = (static_cast<u64>(mi.imm) >> 12) & 0xfffff;
        put32(out, 0b11 | (kRvLui << 2) | (u32(mi.rd) << 7) |
                       (imm20 << 12));
        break;
      }
      case MOp::Mov:
        if (mi.fp) {
            // fmov: OP-FP f7=0x10
            put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, 0, 0x10));
        } else {
            put32(out, rvIType(kRvOpImm, mi.rd, 0, mi.ra, 0));
        }
        break;
      case MOp::Ld: {
        u32 f3;
        if (mi.size == 8)
            f3 = 3;
        else if (mi.size == 1)
            f3 = mi.sign ? 0 : 4;
        else if (mi.size == 2)
            f3 = mi.sign ? 1 : 5;
        else
            f3 = mi.sign ? 2 : 6;
        if (!fitsSigned(mi.imm, 12))
            fatal("riscv encode: load offset too large");
        put32(out, rvIType(kRvLoad, mi.rd, f3, mi.ra, mi.imm));
        break;
      }
      case MOp::St: {
        const u32 f3 = mi.size == 1 ? 0 : mi.size == 2 ? 1
                       : mi.size == 4 ? 2 : 3;
        if (!fitsSigned(mi.imm, 12))
            fatal("riscv encode: store offset too large");
        put32(out, rvSType(kRvStore, f3, mi.ra, mi.rb, mi.imm));
        break;
      }
      case MOp::LdF:
        if (!fitsSigned(mi.imm, 12))
            fatal("riscv encode: fld offset too large");
        put32(out, rvIType(kRvLoadFp, mi.rd, 3, mi.ra, mi.imm));
        break;
      case MOp::StF:
        if (!fitsSigned(mi.imm, 12))
            fatal("riscv encode: fsd offset too large");
        put32(out, rvSType(kRvStoreFp, 3, mi.ra, mi.rb, mi.imm));
        break;
      case MOp::Br: {
        const int f3 = rvBranchF3(mi.cond);
        if (f3 < 0)
            fatal("riscv encode: branch condition not encodable");
        if (!fitsSigned(mi.imm, 13) || (mi.imm & 1))
            fatal("riscv encode: branch displacement out of range");
        put32(out, rvSType(kRvBranch, static_cast<u32>(f3), mi.ra,
                           mi.rb, mi.imm >> 1));
        break;
      }
      case MOp::Jmp:
      case MOp::Call: {
        const u32 link = mi.op == MOp::Call ? 1 : 0;
        if (!fitsSigned(mi.imm, 21) || (mi.imm & 1))
            fatal("riscv encode: jal displacement out of range");
        const u32 imm20 = (mi.imm >> 1) & 0xfffff;
        put32(out, 0b11 | (kRvJal << 2) | (link << 7) | (imm20 << 12));
        break;
      }
      case MOp::JmpR:
        put32(out, rvIType(kRvJalr, 0, 0, mi.ra, 0));
        break;
      case MOp::Ret:
        put32(out, rvIType(kRvJalr, 0, 0, 1, 0));
        break;
      case MOp::FAdd:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, mi.rb, 0x00));
        break;
      case MOp::FSub:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, mi.rb, 0x04));
        break;
      case MOp::FMul:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, mi.rb, 0x08));
        break;
      case MOp::FDiv:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, mi.rb, 0x0c));
        break;
      case MOp::FSqrt:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, 0, 0x2c));
        break;
      case MOp::FSet: {
        u32 f3;
        if (mi.cond == Cond::Le)
            f3 = 0;
        else if (mi.cond == Cond::Lt)
            f3 = 1;
        else if (mi.cond == Cond::Eq)
            f3 = 2;
        else
            fatal("riscv encode: fset condition not encodable");
        put32(out, rvWord(kRvOpFp, mi.rd, f3, mi.ra, mi.rb, 0x50));
        break;
      }
      case MOp::ItoF:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, 0, 0x68));
        break;
      case MOp::FtoI:
        put32(out, rvWord(kRvOpFp, mi.rd, 0, mi.ra, 0, 0x60));
        break;
      case MOp::Magic:
        put32(out, rvIType(kRvSystem, 0, 0, 0, 0x700 | mi.subop));
        break;
      default:
        fatal("riscv encode: MOp %d not encodable",
              static_cast<int>(mi.op));
    }
}

DecodeResult
decodeRiscvCompressed(u32 half)
{
    DecodeResult r;
    r.length = 2;
    MInst &mi = r.mi;
    const u32 q = half & 3;
    const u32 f3 = (half >> 13) & 7;
    const u32 bit12 = (half >> 12) & 1;
    if (q == 0) {
        const u32 rs1 = 8 + ((half >> 7) & 7);
        const u32 rlo = 8 + ((half >> 2) & 7);
        const u32 uimm = (((half >> 10) & 7) << 3) |
                         (((half >> 5) & 3) << 6);
        if (f3 == 2) {
            mi = {.op = MOp::Ld, .rd = static_cast<u8>(rlo),
                  .ra = static_cast<u8>(rs1), .size = 8,
                  .imm = static_cast<i64>(uimm)};
            return r;
        }
        if (f3 == 3) {
            mi = {.op = MOp::St, .ra = static_cast<u8>(rs1),
                  .rb = static_cast<u8>(rlo), .size = 8,
                  .imm = static_cast<i64>(uimm)};
            return r;
        }
        r.illegal = true;
        return r;
    }
    if (q == 1) {
        const u32 rd = (half >> 7) & 0x1f;
        const i64 imm6 = sext((bit12 << 5) | ((half >> 2) & 0x1f), 6);
        if (f3 == 0) {
            if (rd == 0) {
                if (imm6 == 0) {
                    mi = {.op = MOp::Nop};
                    return r;
                }
                r.illegal = true;
                return r;
            }
            mi = {.op = MOp::AddI, .rd = static_cast<u8>(rd),
                  .ra = static_cast<u8>(rd), .imm = imm6};
            return r;
        }
        if (f3 == 2) {
            if (rd == 0) {
                r.illegal = true;
                return r;
            }
            mi = {.op = MOp::AddI, .rd = static_cast<u8>(rd), .ra = 0,
                  .imm = imm6};
            return r;
        }
        if (f3 == 5) {
            const i64 disp =
                sext((bit12 << 10) | ((half >> 2) & 0x3ff), 11) << 1;
            mi = {.op = MOp::Jmp, .imm = disp};
            return r;
        }
        if (f3 == 6 || f3 == 7) {
            const u32 rs1 = 8 + ((half >> 7) & 7);
            const i64 disp = sext((bit12 << 7) |
                                  (((half >> 10) & 3) << 5) |
                                  ((half >> 2) & 0x1f), 8) << 1;
            mi = {.op = MOp::Br, .ra = static_cast<u8>(rs1), .rb = 0,
                  .cond = f3 == 6 ? Cond::Eq : Cond::Ne, .imm = disp};
            return r;
        }
        r.illegal = true;
        return r;
    }
    // q == 2
    if (f3 == 4) {
        const u32 rd = (half >> 7) & 0x1f;
        const u32 rs2 = (half >> 2) & 0x1f;
        if (bit12 == 0) {
            if (rd == 0) {
                r.illegal = true;
                return r;
            }
            if (rs2 != 0) {
                mi = {.op = MOp::Mov, .rd = static_cast<u8>(rd),
                      .ra = static_cast<u8>(rs2)};
                return r;
            }
            if (rd == 1) {
                mi = {.op = MOp::Ret};
                return r;
            }
            mi = {.op = MOp::JmpR, .ra = static_cast<u8>(rd)};
            return r;
        }
        if (rd != 0 && rs2 != 0) {
            mi = {.op = MOp::Add, .rd = static_cast<u8>(rd),
                  .ra = static_cast<u8>(rd),
                  .rb = static_cast<u8>(rs2)};
            return r;
        }
    }
    r.illegal = true;
    return r;
}

DecodeResult
decodeRiscv(const u8 *p, std::size_t avail)
{
    DecodeResult r;
    if (avail < 2) {
        r.illegal = true;
        r.length = 1;
        return r;
    }
    const u32 half = p[0] | (p[1] << 8);
    if ((half & 3) != 3)
        return decodeRiscvCompressed(half);
    if (avail < 4) {
        r.illegal = true;
        r.length = static_cast<u8>(avail);
        return r;
    }
    const u32 w =
        p[0] | (p[1] << 8) | (p[2] << 16) | (u32(p[3]) << 24);
    r.length = 4;
    MInst &mi = r.mi;
    const u32 opc = (w >> 2) & 0x1f;
    const u8 rd = (w >> 7) & 0x1f;
    const u32 f3 = (w >> 12) & 7;
    const u8 rs1 = (w >> 15) & 0x1f;
    const u8 rs2 = (w >> 20) & 0x1f;
    const u32 f7 = (w >> 25) & 0x7f;
    const i64 iImm = sext(w >> 20, 12);
    const i64 sImm = sext((f7 << 5) | rd, 12);

    switch (opc) {
      case kRvOp: {
        mi.rd = rd;
        mi.ra = rs1;
        mi.rb = rs2;
        const bool mext = f7 & 1;        // bit 25
        const bool alt = (f7 >> 5) & 1;  // bit 30
        // Remaining f7 bits intentionally ignored (decode masking).
        if (mext) {
            switch (f3) {
              case 0: mi.op = MOp::Mul; return r;
              case 4: mi.op = MOp::Div; return r;
              case 5: mi.op = MOp::DivU; return r;
              case 6: mi.op = MOp::Rem; return r;
              case 7: mi.op = MOp::RemU; return r;
              default: r.illegal = true; return r;
            }
        }
        switch (f3) {
          case 0: mi.op = alt ? MOp::Sub : MOp::Add; return r;
          case 1: mi.op = MOp::Shl; return r;
          case 2: mi.op = MOp::Slt; return r;
          case 3: mi.op = MOp::SltU; return r;
          case 4: mi.op = MOp::Xor; return r;
          case 5: mi.op = alt ? MOp::Sra : MOp::Shr; return r;
          case 6: mi.op = MOp::Or; return r;
          case 7: mi.op = MOp::And; return r;
        }
        r.illegal = true;
        return r;
      }
      case kRvOpImm: {
        mi.rd = rd;
        mi.ra = rs1;
        mi.imm = iImm;
        switch (f3) {
          case 0: mi.op = MOp::AddI; return r;
          case 1:
            mi.op = MOp::ShlI;
            mi.imm = (w >> 20) & 0x3f; // upper imm bits ignored
            return r;
          case 2: mi.op = MOp::SltI; return r;
          case 3: mi.op = MOp::SltIU; return r;
          case 4: mi.op = MOp::XorI; return r;
          case 5:
            mi.op = ((w >> 30) & 1) ? MOp::SraI : MOp::ShrI;
            mi.imm = (w >> 20) & 0x3f;
            return r;
          case 6: mi.op = MOp::OrI; return r;
          case 7: mi.op = MOp::AndI; return r;
        }
        r.illegal = true;
        return r;
      }
      case kRvLoad: {
        mi.rd = rd;
        mi.ra = rs1;
        mi.imm = iImm;
        mi.op = MOp::Ld;
        switch (f3) {
          case 0: mi.size = 1; mi.sign = true; return r;
          case 1: mi.size = 2; mi.sign = true; return r;
          case 2: mi.size = 4; mi.sign = true; return r;
          case 3: mi.size = 8; return r;
          case 4: mi.size = 1; return r;
          case 5: mi.size = 2; return r;
          case 6: mi.size = 4; return r;
          default: r.illegal = true; return r;
        }
      }
      case kRvStore: {
        mi.ra = rs1;
        mi.rb = rs2;
        mi.imm = sImm;
        mi.op = MOp::St;
        switch (f3) {
          case 0: mi.size = 1; return r;
          case 1: mi.size = 2; return r;
          case 2: mi.size = 4; return r;
          case 3: mi.size = 8; return r;
          default: r.illegal = true; return r;
        }
      }
      case kRvLoadFp:
        if (f3 != 3) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::LdF, .rd = rd, .ra = rs1, .imm = iImm};
        return r;
      case kRvStoreFp:
        if (f3 != 3) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::StF, .ra = rs1, .rb = rs2, .imm = sImm};
        return r;
      case kRvLui:
        mi = {.op = MOp::Lui, .rd = rd,
              .imm = sext(w & 0xfffff000u, 32)};
        return r;
      case kRvBranch: {
        Cond cond;
        switch (f3) {
          case 0: cond = Cond::Eq; break;
          case 1: cond = Cond::Ne; break;
          case 4: cond = Cond::Lt; break;
          case 5: cond = Cond::Ge; break;
          case 6: cond = Cond::LtU; break;
          case 7: cond = Cond::GeU; break;
          default: r.illegal = true; return r;
        }
        mi = {.op = MOp::Br, .ra = rs1, .rb = rs2, .cond = cond,
              .imm = sext((f7 << 5) | rd, 12) << 1};
        return r;
      }
      case kRvJal: {
        const i64 disp = sext(w >> 12, 20) << 1;
        if (rd == 0) {
            mi = {.op = MOp::Jmp, .imm = disp};
        } else if (rd == 1) {
            mi = {.op = MOp::Call, .imm = disp};
        } else {
            r.illegal = true;
            return r;
        }
        return r;
      }
      case kRvJalr:
        if (f3 != 0 || rd != 0 || iImm != 0) {
            r.illegal = true;
            return r;
        }
        if (rs1 == 1)
            mi = {.op = MOp::Ret};
        else
            mi = {.op = MOp::JmpR, .ra = rs1};
        return r;
      case kRvOpFp: {
        mi.rd = rd;
        mi.ra = rs1;
        mi.rb = rs2;
        // f3 intentionally ignored for arithmetic (rounding mode).
        switch (f7) {
          case 0x00: mi.op = MOp::FAdd; return r;
          case 0x04: mi.op = MOp::FSub; return r;
          case 0x08: mi.op = MOp::FMul; return r;
          case 0x0c: mi.op = MOp::FDiv; return r;
          case 0x2c: mi.op = MOp::FSqrt; mi.rb = 0; return r;
          case 0x10: mi.op = MOp::Mov; mi.fp = true; mi.rb = 0; return r;
          case 0x50:
            mi.op = MOp::FSet;
            if (f3 == 0)
                mi.cond = Cond::Le;
            else if (f3 == 1)
                mi.cond = Cond::Lt;
            else if (f3 == 2)
                mi.cond = Cond::Eq;
            else {
                r.illegal = true;
                return r;
            }
            return r;
          case 0x68: mi.op = MOp::ItoF; mi.rb = 0; return r;
          case 0x60: mi.op = MOp::FtoI; mi.rb = 0; return r;
          default: r.illegal = true; return r;
        }
      }
      case kRvSystem: {
        const u32 imm12 = w >> 20;
        if (f3 == 0 && (imm12 & 0xf00) == 0x700 && (imm12 & 0xff) < 4) {
            mi = {.op = MOp::Magic,
                  .subop = static_cast<u8>(imm12 & 0xff)};
            return r;
        }
        r.illegal = true;
        return r;
      }
      default:
        r.illegal = true;
        return r;
    }
}

// ===================================================================
// ARM flavor
// ===================================================================
//
// Fixed 32-bit words, major opcode in [31:26]. Every unused field is
// validated as zero: bit flips almost never decode to the same or a
// compatible instruction.

constexpr u32 kArmAluRR = 0x01;
constexpr u32 kArmAluImm = 0x02;
constexpr u32 kArmCSel = 0x03;
constexpr u32 kArmMovZ = 0x04;
constexpr u32 kArmMovK = 0x05;
constexpr u32 kArmSetCC = 0x06;
constexpr u32 kArmLd = 0x08;
constexpr u32 kArmSt = 0x09;
constexpr u32 kArmLdF = 0x0a;
constexpr u32 kArmStF = 0x0b;
constexpr u32 kArmB = 0x10;
constexpr u32 kArmBl = 0x11;
constexpr u32 kArmBCond = 0x12;
constexpr u32 kArmBr = 0x13;
constexpr u32 kArmFp = 0x20;
constexpr u32 kArmMagic = 0x3f;

/// ALU register-register subops.
int
armAluSubop(MOp op)
{
    switch (op) {
      case MOp::Add: return 0;
      case MOp::Sub: return 1;
      case MOp::Mul: return 2;
      case MOp::Div: return 3;
      case MOp::DivU: return 4;
      case MOp::Rem: return 5;
      case MOp::RemU: return 6;
      case MOp::And: return 7;
      case MOp::Or: return 8;
      case MOp::Xor: return 9;
      case MOp::Shl: return 10;
      case MOp::Shr: return 11;
      case MOp::Sra: return 12;
      case MOp::Mov: return 13;
      case MOp::Cmp: return 14;
      default: return -1;
    }
}

MOp
armAluFromSubop(u32 subop)
{
    static const MOp table[] = {
        MOp::Add, MOp::Sub, MOp::Mul, MOp::Div, MOp::DivU, MOp::Rem,
        MOp::RemU, MOp::And, MOp::Or, MOp::Xor, MOp::Shl, MOp::Shr,
        MOp::Sra, MOp::Mov, MOp::Cmp,
    };
    return subop < 15 ? table[subop] : MOp::Illegal;
}

int
armAluImmSubop(MOp op)
{
    switch (op) {
      case MOp::AddI: return 0;
      case MOp::AndI: return 1;
      case MOp::OrI: return 2;
      case MOp::XorI: return 3;
      case MOp::ShlI: return 4;
      case MOp::ShrI: return 5;
      case MOp::SraI: return 6;
      case MOp::CmpI: return 7;
      default: return -1;
    }
}

void
encodeArm(const MInst &mi, std::vector<u8> &out)
{
    auto emit = [&](u32 major, u32 body) {
        put32(out, (major << 26) | body);
    };
    switch (mi.op) {
      case MOp::Nop:
        // MOV x0, x0 is the canonical NOP in this flavor.
        emit(kArmAluRR, (13u << 15) | (0u << 5) | 0u);
        break;
      case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
      case MOp::DivU: case MOp::Rem: case MOp::RemU: case MOp::And:
      case MOp::Or: case MOp::Xor: case MOp::Shl: case MOp::Shr:
      case MOp::Sra:
        emit(kArmAluRR, (u32(armAluSubop(mi.op)) << 15) |
                            (u32(mi.rb) << 10) | (u32(mi.ra) << 5) |
                            mi.rd);
        break;
      case MOp::Mov:
        if (mi.fp)
            emit(kArmFp, (8u << 21) | (u32(mi.ra) << 5) | mi.rd);
        else
            emit(kArmAluRR, (13u << 15) | (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::Cmp:
        emit(kArmAluRR, (14u << 15) | (u32(mi.rb) << 10) |
                            (u32(mi.ra) << 5));
        break;
      case MOp::AddI: case MOp::AndI: case MOp::OrI: case MOp::XorI:
      case MOp::CmpI: {
        if (!fitsSigned(mi.imm, 12))
            fatal("arm encode: imm %lld does not fit",
                  static_cast<long long>(mi.imm));
        emit(kArmAluImm, (u32(armAluImmSubop(mi.op)) << 22) |
                             (u32(mi.imm & 0xfff) << 10) |
                             (u32(mi.ra) << 5) | mi.rd);
        break;
      }
      case MOp::ShlI: case MOp::ShrI: case MOp::SraI:
        emit(kArmAluImm, (u32(armAluImmSubop(mi.op)) << 22) |
                             (u32(mi.imm & 0x3f) << 10) |
                             (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::CSel:
        emit(kArmCSel, (u32(mi.cond) << 21) | (u32(mi.rb) << 10) |
                           (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::MovZ:
      case MOp::MovK:
        emit(mi.op == MOp::MovZ ? kArmMovZ : kArmMovK,
             (u32(mi.subop & 3) << 21) |
                 (u32(mi.imm & 0xffff) << 5) | mi.rd);
        break;
      case MOp::SetCC:
        emit(kArmSetCC, (u32(mi.cond) << 21) | mi.rd);
        break;
      case MOp::Ld: {
        const u32 szLog = log2i(mi.size);
        const i64 scaled = mi.imm >> szLog;
        if (mi.imm < 0 || (mi.imm & (mi.size - 1)) || scaled > 0xfff)
            fatal("arm encode: load offset %lld not encodable",
                  static_cast<long long>(mi.imm));
        emit(kArmLd, (u32(mi.sign) << 25) | (szLog << 23) |
                         (u32(scaled) << 10) | (u32(mi.ra) << 5) |
                         mi.rd);
        break;
      }
      case MOp::St: {
        const u32 szLog = log2i(mi.size);
        const i64 scaled = mi.imm >> szLog;
        if (mi.imm < 0 || (mi.imm & (mi.size - 1)) || scaled > 0xfff)
            fatal("arm encode: store offset %lld not encodable",
                  static_cast<long long>(mi.imm));
        emit(kArmSt, (szLog << 23) | (u32(scaled) << 10) |
                         (u32(mi.ra) << 5) | mi.rb);
        break;
      }
      case MOp::LdF: case MOp::StF: {
        const i64 scaled = mi.imm >> 3;
        if (mi.imm < 0 || (mi.imm & 7) || scaled > 0xfff)
            fatal("arm encode: fp offset %lld not encodable",
                  static_cast<long long>(mi.imm));
        const u32 rt = mi.op == MOp::LdF ? mi.rd : mi.rb;
        emit(mi.op == MOp::LdF ? kArmLdF : kArmStF,
             (u32(scaled) << 10) | (u32(mi.ra) << 5) | rt);
        break;
      }
      case MOp::Jmp:
      case MOp::Call:
        if (!fitsSigned(mi.imm, 28) || (mi.imm & 3))
            fatal("arm encode: branch displacement out of range");
        emit(mi.op == MOp::Jmp ? kArmB : kArmBl,
             (mi.imm >> 2) & 0x3ffffff);
        break;
      case MOp::Br:
        if (!fitsSigned(mi.imm, 24) || (mi.imm & 3))
            fatal("arm encode: cond branch displacement out of range");
        emit(kArmBCond,
             (u32(mi.cond) << 22) | ((mi.imm >> 2) & 0x3fffff));
        break;
      case MOp::JmpR:
        emit(kArmBr, u32(mi.ra) << 5);
        break;
      case MOp::Ret:
        emit(kArmBr, 30u << 5);
        break;
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv: {
        const u32 sub = mi.op == MOp::FAdd ? 0 : mi.op == MOp::FSub ? 1
                        : mi.op == MOp::FMul ? 2 : 3;
        emit(kArmFp, (sub << 21) | (u32(mi.rb) << 10) |
                         (u32(mi.ra) << 5) | mi.rd);
        break;
      }
      case MOp::FSqrt:
        emit(kArmFp, (4u << 21) | (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::FCmp:
        emit(kArmFp, (5u << 21) | (u32(mi.rb) << 10) |
                         (u32(mi.ra) << 5));
        break;
      case MOp::ItoF:
        emit(kArmFp, (6u << 21) | (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::FtoI:
        emit(kArmFp, (7u << 21) | (u32(mi.ra) << 5) | mi.rd);
        break;
      case MOp::Magic:
        emit(kArmMagic, mi.subop);
        break;
      default:
        fatal("arm encode: MOp %d not encodable",
              static_cast<int>(mi.op));
    }
}

DecodeResult
decodeArm(const u8 *p, std::size_t avail)
{
    DecodeResult r;
    if (avail < 4) {
        r.illegal = true;
        r.length = static_cast<u8>(avail ? avail : 1);
        return r;
    }
    const u32 w =
        p[0] | (p[1] << 8) | (p[2] << 16) | (u32(p[3]) << 24);
    r.length = 4;
    MInst &mi = r.mi;
    const u32 major = w >> 26;
    const u8 rd = w & 0x1f;
    const u8 rn = (w >> 5) & 0x1f;
    const u8 rm = (w >> 10) & 0x1f;

    auto requireZero = [&](u32 mask) {
        if (w & mask)
            r.illegal = true;
    };

    switch (major) {
      case kArmAluRR: {
        const u32 subop = (w >> 15) & 0x3f;
        requireZero(0x03e0'0000); // bits [25:21]
        const MOp op = armAluFromSubop(subop);
        if (op == MOp::Illegal || r.illegal) {
            r.illegal = true;
            return r;
        }
        mi.op = op;
        mi.rd = rd;
        mi.ra = rn;
        mi.rb = rm;
        if (op == MOp::Mov) {
            if (rm != 0) {
                r.illegal = true;
                return r;
            }
            mi.rb = 0;
        }
        if (op == MOp::Cmp && rd != 0) {
            r.illegal = true;
            return r;
        }
        return r;
      }
      case kArmAluImm: {
        const u32 subop = (w >> 22) & 0xf;
        const i64 imm = sext((w >> 10) & 0xfff, 12);
        mi.rd = rd;
        mi.ra = rn;
        mi.imm = imm;
        switch (subop) {
          case 0: mi.op = MOp::AddI; return r;
          case 1: mi.op = MOp::AndI; return r;
          case 2: mi.op = MOp::OrI; return r;
          case 3: mi.op = MOp::XorI; return r;
          case 4: case 5: case 6:
            // shifts: shamt in [15:10], bits [21:16] must be zero
            if ((w >> 16) & 0x3f) {
                r.illegal = true;
                return r;
            }
            mi.op = subop == 4 ? MOp::ShlI
                    : subop == 5 ? MOp::ShrI : MOp::SraI;
            mi.imm = (w >> 10) & 0x3f;
            return r;
          case 7:
            if (rd != 0) {
                r.illegal = true;
                return r;
            }
            mi.op = MOp::CmpI;
            return r;
          default:
            r.illegal = true;
            return r;
        }
      }
      case kArmCSel: {
        const u32 cond = (w >> 21) & 0xf;
        requireZero(0x0200'0000 | (0x3fu << 15));
        if (cond >= kNumConds || r.illegal) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::CSel, .rd = rd, .ra = rn, .rb = rm,
              .cond = static_cast<Cond>(cond)};
        return r;
      }
      case kArmMovZ:
      case kArmMovK: {
        requireZero(0x0380'0000); // bits [25:23]
        if (r.illegal)
            return r;
        mi = {.op = major == kArmMovZ ? MOp::MovZ : MOp::MovK,
              .rd = rd, .subop = static_cast<u8>((w >> 21) & 3),
              .imm = static_cast<i64>((w >> 5) & 0xffff)};
        return r;
      }
      case kArmSetCC: {
        const u32 cond = (w >> 21) & 0xf;
        requireZero(0x0200'0000 | (0xffffu << 5));
        if (cond >= kNumConds || r.illegal) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::SetCC, .rd = rd,
              .cond = static_cast<Cond>(cond)};
        return r;
      }
      case kArmLd: {
        const u32 szLog = (w >> 23) & 3;
        const bool sign = (w >> 25) & 1;
        if (sign && szLog == 3) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::Ld, .rd = rd, .ra = rn,
              .size = static_cast<u8>(1u << szLog), .sign = sign,
              .imm = static_cast<i64>(((w >> 10) & 0xfff) << szLog)};
        return r;
      }
      case kArmSt: {
        const u32 szLog = (w >> 23) & 3;
        requireZero(0x0200'0000);
        if (r.illegal)
            return r;
        mi = {.op = MOp::St, .ra = rn, .rb = rd,
              .size = static_cast<u8>(1u << szLog),
              .imm = static_cast<i64>(((w >> 10) & 0xfff) << szLog)};
        return r;
      }
      case kArmLdF:
      case kArmStF: {
        requireZero(0x03c0'0000); // bits [25:22]
        if (r.illegal)
            return r;
        const i64 imm = static_cast<i64>(((w >> 10) & 0xfff) << 3);
        if (major == kArmLdF)
            mi = {.op = MOp::LdF, .rd = rd, .ra = rn, .imm = imm};
        else
            mi = {.op = MOp::StF, .ra = rn, .rb = rd, .imm = imm};
        return r;
      }
      case kArmB:
      case kArmBl:
        mi = {.op = major == kArmB ? MOp::Jmp : MOp::Call,
              .imm = sext(w & 0x3ffffff, 26) << 2};
        return r;
      case kArmBCond: {
        const u32 cond = (w >> 22) & 0xf;
        if (cond >= kNumConds) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::Br, .cond = static_cast<Cond>(cond),
              .imm = sext(w & 0x3fffff, 22) << 2};
        return r;
      }
      case kArmBr:
        requireZero(0x03ff'fc00 | 0x1f);
        if (r.illegal)
            return r;
        if (rn == 30)
            mi = {.op = MOp::Ret};
        else
            mi = {.op = MOp::JmpR, .ra = rn};
        return r;
      case kArmFp: {
        const u32 subop = (w >> 21) & 0x1f;
        switch (subop) {
          case 0: mi.op = MOp::FAdd; break;
          case 1: mi.op = MOp::FSub; break;
          case 2: mi.op = MOp::FMul; break;
          case 3: mi.op = MOp::FDiv; break;
          case 4: mi.op = MOp::FSqrt; break;
          case 5: mi.op = MOp::FCmp; break;
          case 6: mi.op = MOp::ItoF; break;
          case 7: mi.op = MOp::FtoI; break;
          case 8: mi.op = MOp::Mov; mi.fp = true; break;
          default: r.illegal = true; return r;
        }
        requireZero(0x3fu << 15);
        const bool unary = subop >= 4 && subop != 5;
        if (unary)
            requireZero(0x1fu << 10);
        if (subop == 5 && rd != 0)
            r.illegal = true;
        if (r.illegal)
            return r;
        mi.rd = rd;
        mi.ra = rn;
        mi.rb = rm;
        if (unary)
            mi.rb = 0;
        return r;
      }
      case kArmMagic:
        if ((w & 0x3ffffff) >= 4) {
            r.illegal = true;
            return r;
        }
        mi = {.op = MOp::Magic, .subop = static_cast<u8>(w & 3)};
        return r;
      default:
        r.illegal = true;
        return r;
    }
}

// ===================================================================
// X86 flavor
// ===================================================================
//
// Variable length: [REX?] opcode [opcode2] [modrm] [disp8/32] [imm].

constexpr unsigned kX86AluCount = 13; // Add..Sra

int
x86AluIndex(MOp op)
{
    switch (op) {
      case MOp::Add: return 0;
      case MOp::Sub: return 1;
      case MOp::Mul: return 2;
      case MOp::Div: return 3;
      case MOp::DivU: return 4;
      case MOp::Rem: return 5;
      case MOp::RemU: return 6;
      case MOp::And: return 7;
      case MOp::Or: return 8;
      case MOp::Xor: return 9;
      case MOp::Shl: return 10;
      case MOp::Shr: return 11;
      case MOp::Sra: return 12;
      default: return -1;
    }
}

MOp
x86AluFromIndex(unsigned k)
{
    static const MOp table[kX86AluCount] = {
        MOp::Add, MOp::Sub, MOp::Mul, MOp::Div, MOp::DivU, MOp::Rem,
        MOp::RemU, MOp::And, MOp::Or, MOp::Xor, MOp::Shl, MOp::Shr,
        MOp::Sra,
    };
    return table[k];
}

int
x86AluImmIndex(MOp op)
{
    switch (op) {
      case MOp::AddI: return 0;
      case MOp::AndI: return 7;
      case MOp::OrI: return 8;
      case MOp::XorI: return 9;
      case MOp::ShlI: return 10;
      case MOp::ShrI: return 11;
      case MOp::SraI: return 12;
      default: return -1;
    }
}

MOp
x86AluImmFromIndex(unsigned k)
{
    switch (k) {
      case 0: return MOp::AddI;
      case 7: return MOp::AndI;
      case 8: return MOp::OrI;
      case 9: return MOp::XorI;
      case 10: return MOp::ShlI;
      case 11: return MOp::ShrI;
      case 12: return MOp::SraI;
      default: return MOp::Illegal;
    }
}

int
x86LoadIndex(unsigned size, bool sign)
{
    switch (size) {
      case 1: return sign ? 1 : 0;
      case 2: return sign ? 3 : 2;
      case 4: return sign ? 5 : 4;
      case 8: return 6;
      default: return -1;
    }
}

void
putI32(std::vector<u8> &out, i64 v)
{
    const u32 u = static_cast<u32>(v);
    out.push_back(u & 0xff);
    out.push_back((u >> 8) & 0xff);
    out.push_back((u >> 16) & 0xff);
    out.push_back((u >> 24) & 0xff);
}

void
putI64(std::vector<u8> &out, i64 v)
{
    const u64 u = static_cast<u64>(v);
    for (unsigned i = 0; i < 8; ++i)
        out.push_back((u >> (8 * i)) & 0xff);
}

/// Emit prefix (if needed) + opcode bytes + modrm for a reg/reg form.
void
x86EmitRR(std::vector<u8> &out, std::initializer_list<u8> opcode,
          unsigned reg, unsigned rm)
{
    if (reg > 7 || rm > 7)
        out.push_back(0x40 | ((reg > 7 ? 1u : 0u) << 2) |
                      (rm > 7 ? 1u : 0u));
    for (u8 b : opcode)
        out.push_back(b);
    out.push_back(0xc0 | ((reg & 7) << 3) | (rm & 7));
}

/// Emit prefix + opcode + modrm + disp for a reg, [base+disp] form.
void
x86EmitRM(std::vector<u8> &out, std::initializer_list<u8> opcode,
          unsigned reg, unsigned base, i64 disp)
{
    if (reg > 7 || base > 7)
        out.push_back(0x40 | ((reg > 7 ? 1u : 0u) << 2) |
                      (base > 7 ? 1u : 0u));
    for (u8 b : opcode)
        out.push_back(b);
    u8 mod;
    if (disp == 0)
        mod = 0;
    else if (fitsSigned(disp, 8))
        mod = 1;
    else
        mod = 2;
    out.push_back((mod << 6) | ((reg & 7) << 3) | (base & 7));
    if (mod == 1)
        out.push_back(static_cast<u8>(disp));
    else if (mod == 2)
        putI32(out, disp);
}

void
encodeX86(const MInst &mi, std::vector<u8> &out)
{
    switch (mi.op) {
      case MOp::Nop:
        out.push_back(0x90);
        break;
      case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
      case MOp::DivU: case MOp::Rem: case MOp::RemU: case MOp::And:
      case MOp::Or: case MOp::Xor: case MOp::Shl: case MOp::Shr:
      case MOp::Sra:
        if (mi.rd != mi.ra)
            fatal("x86 encode: ALU rr requires rd == ra");
        x86EmitRR(out, {static_cast<u8>(0x10 + x86AluIndex(mi.op))},
                  mi.rb, mi.rd);
        break;
      case MOp::AluM:
        x86EmitRM(out, {static_cast<u8>(0x20 + mi.subop)}, mi.rd,
                  mi.ra, mi.imm);
        break;
      case MOp::AddI: case MOp::AndI: case MOp::OrI: case MOp::XorI:
      case MOp::ShlI: case MOp::ShrI: case MOp::SraI:
        if (mi.rd != mi.ra)
            fatal("x86 encode: ALU imm requires rd == ra");
        if (!fitsSigned(mi.imm, 32))
            fatal("x86 encode: imm32 overflow");
        if (fitsSigned(mi.imm, 8)) {
            // Sign-extended imm8 form (real x86's 83 /r group).
            x86EmitRR(out,
                      {static_cast<u8>(0xa0 + x86AluImmIndex(mi.op))},
                      0, mi.rd);
            out.push_back(static_cast<u8>(mi.imm));
        } else {
            x86EmitRR(out,
                      {static_cast<u8>(0x30 + x86AluImmIndex(mi.op))},
                      0, mi.rd);
            putI32(out, mi.imm);
        }
        break;
      case MOp::Mov:
        x86EmitRR(out, {static_cast<u8>(mi.fp ? 0x87 : 0x50)}, mi.ra,
                  mi.rd);
        break;
      case MOp::MovImm64:
        x86EmitRR(out, {0x51}, 0, mi.rd);
        putI64(out, mi.imm);
        break;
      case MOp::MovImm32:
        if (!fitsSigned(mi.imm, 32))
            fatal("x86 encode: MovImm32 overflow");
        x86EmitRR(out, {0x52}, 0, mi.rd);
        putI32(out, mi.imm);
        break;
      case MOp::Ld:
        x86EmitRM(out,
                  {static_cast<u8>(
                      0x54 + x86LoadIndex(mi.size, mi.sign))},
                  mi.rd, mi.ra, mi.imm);
        break;
      case MOp::St: {
        const unsigned j = mi.size == 1 ? 0 : mi.size == 2 ? 1
                            : mi.size == 4 ? 2 : 3;
        x86EmitRM(out, {static_cast<u8>(0x5b + j)}, mi.rb, mi.ra,
                  mi.imm);
        break;
      }
      case MOp::LdF:
        x86EmitRM(out, {0x88}, mi.rd, mi.ra, mi.imm);
        break;
      case MOp::StF:
        x86EmitRM(out, {0x89}, mi.rb, mi.ra, mi.imm);
        break;
      case MOp::Cmp:
        x86EmitRR(out, {0x60}, mi.rb, mi.ra);
        break;
      case MOp::CmpI:
        if (!fitsSigned(mi.imm, 32))
            fatal("x86 encode: cmp imm32 overflow");
        x86EmitRR(out, {0x61}, 0, mi.ra);
        putI32(out, mi.imm);
        break;
      case MOp::FCmp:
        x86EmitRR(out, {0x62}, mi.rb, mi.ra);
        break;
      case MOp::Jmp:
        out.push_back(0x70);
        putI32(out, mi.imm);
        break;
      case MOp::Call:
        out.push_back(0x71);
        putI32(out, mi.imm);
        break;
      case MOp::Ret:
        out.push_back(0x72);
        break;
      case MOp::JmpR:
        x86EmitRR(out, {0x73}, 0, mi.ra);
        break;
      case MOp::Br:
        out.push_back(0x0f);
        out.push_back(static_cast<u8>(0x80 + u8(mi.cond)));
        putI32(out, mi.imm);
        break;
      case MOp::SetCC:
        if (mi.rd > 7)
            out.push_back(0x41);
        out.push_back(0x0f);
        out.push_back(static_cast<u8>(0x90 + u8(mi.cond)));
        out.push_back(0xc0 | (mi.rd & 7));
        break;
      case MOp::CSel: {
        if (mi.rd != mi.ra)
            fatal("x86 encode: cmov requires rd == ra");
        if (mi.rb > 7 || mi.rd > 7)
            out.push_back(0x40 | ((mi.rb > 7 ? 1u : 0u) << 2) |
                          (mi.rd > 7 ? 1u : 0u));
        out.push_back(0x0f);
        out.push_back(static_cast<u8>(0x40 + u8(mi.cond)));
        out.push_back(0xc0 | ((mi.rb & 7) << 3) | (mi.rd & 7));
        break;
      }
      case MOp::FAdd: case MOp::FSub: case MOp::FMul: case MOp::FDiv: {
        if (mi.rd != mi.ra)
            fatal("x86 encode: FP rr requires rd == ra");
        const unsigned k = mi.op == MOp::FAdd ? 0
                           : mi.op == MOp::FSub ? 1
                           : mi.op == MOp::FMul ? 2 : 3;
        x86EmitRR(out, {static_cast<u8>(0x80 + k)}, mi.rb, mi.rd);
        break;
      }
      case MOp::FSqrt:
        x86EmitRR(out, {0x84}, mi.ra, mi.rd);
        break;
      case MOp::ItoF:
        x86EmitRR(out, {0x85}, mi.ra, mi.rd);
        break;
      case MOp::FtoI:
        x86EmitRR(out, {0x86}, mi.ra, mi.rd);
        break;
      case MOp::Magic:
        out.push_back(0xf1);
        out.push_back(mi.subop);
        break;
      default:
        fatal("x86 encode: MOp %d not encodable",
              static_cast<int>(mi.op));
    }
}

DecodeResult
decodeX86(const u8 *p, std::size_t avail)
{
    DecodeResult r;
    r.length = 1;
    MInst &mi = r.mi;
    if (avail == 0) {
        r.illegal = true;
        return r;
    }

    std::size_t pos = 0;
    unsigned regHi = 0;
    unsigned rmHi = 0;
    // Optional REX-like prefix: 0x40-0x4f; bits 1 and 3 are ignored.
    if ((p[pos] & 0xf0) == 0x40) {
        regHi = (p[pos] >> 2) & 1;
        rmHi = p[pos] & 1;
        ++pos;
    }

    auto fail = [&]() {
        r.illegal = true;
        r.mi = MInst{};
        r.mi.op = MOp::Illegal;
        r.length = static_cast<u8>(pos ? pos : 1);
        return r;
    };
    if (pos >= avail)
        return fail();
    const u8 opc = p[pos++];

    auto needBytes = [&](std::size_t n) { return pos + n <= avail; };
    struct ModRm
    {
        u8 mod, reg, rm;
        i64 disp;
    };
    auto readModRm = [&](ModRm &m) -> bool {
        if (!needBytes(1))
            return false;
        const u8 b = p[pos++];
        m.mod = b >> 6;
        m.reg = ((b >> 3) & 7) | (regHi << 3);
        m.rm = (b & 7) | (rmHi << 3);
        m.disp = 0;
        if (m.mod == 1) {
            if (!needBytes(1))
                return false;
            m.disp = static_cast<i8>(p[pos++]);
        } else if (m.mod == 2) {
            if (!needBytes(4))
                return false;
            u32 v = p[pos] | (p[pos + 1] << 8) | (p[pos + 2] << 16) |
                    (u32(p[pos + 3]) << 24);
            pos += 4;
            m.disp = static_cast<i32>(v);
        }
        return true;
    };
    auto readI32 = [&](i64 &v) -> bool {
        if (!needBytes(4))
            return false;
        u32 u = p[pos] | (p[pos + 1] << 8) | (p[pos + 2] << 16) |
                (u32(p[pos + 3]) << 24);
        pos += 4;
        v = static_cast<i32>(u);
        return true;
    };

    auto finish = [&]() {
        r.length = static_cast<u8>(pos);
        return r;
    };

    // ALU rr: 0x10..0x1c
    if (opc >= 0x10 && opc < 0x10 + kX86AluCount) {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        mi.op = x86AluFromIndex(opc - 0x10);
        mi.rd = m.rm;
        mi.ra = m.rm;
        mi.rb = m.reg;
        return finish();
    }
    // ALU r, [m]: 0x20..0x2c
    if (opc >= 0x20 && opc < 0x20 + kX86AluCount) {
        ModRm m;
        if (!readModRm(m) || m.mod == 3)
            return fail();
        mi.op = MOp::AluM;
        mi.subop = opc - 0x20;
        mi.rd = m.reg;
        mi.ra = m.rm;
        mi.imm = m.disp;
        return finish();
    }
    // ALU r, imm32: 0x30..0x3c  (reg field ignored: decode masking)
    if (opc >= 0x30 && opc < 0x30 + kX86AluCount) {
        ModRm m;
        i64 imm;
        if (!readModRm(m) || m.mod != 3 || !readI32(imm))
            return fail();
        mi.op = x86AluImmFromIndex(opc - 0x30);
        if (mi.op == MOp::Illegal)
            return fail();
        mi.rd = m.rm;
        mi.ra = m.rm;
        mi.imm = imm;
        return finish();
    }
    // ALU r, imm8 (sign-extended): 0xa0..0xac
    if (opc >= 0xa0 && opc < 0xa0 + kX86AluCount) {
        ModRm m;
        if (!readModRm(m) || m.mod != 3 || !needBytes(1))
            return fail();
        mi.op = x86AluImmFromIndex(opc - 0xa0);
        if (mi.op == MOp::Illegal)
            return fail();
        mi.rd = m.rm;
        mi.ra = m.rm;
        mi.imm = static_cast<i8>(p[pos++]);
        return finish();
    }
    switch (opc) {
      case 0x50: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        mi = {.op = MOp::Mov, .rd = m.rm, .ra = m.reg};
        return finish();
      }
      case 0x51: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3 || !needBytes(8))
            return fail();
        u64 v = 0;
        for (unsigned i = 0; i < 8; ++i)
            v |= static_cast<u64>(p[pos + i]) << (8 * i);
        pos += 8;
        mi = {.op = MOp::MovImm64, .rd = m.rm,
              .imm = static_cast<i64>(v)};
        return finish();
      }
      case 0x52: {
        ModRm m;
        i64 imm;
        if (!readModRm(m) || m.mod != 3 || !readI32(imm))
            return fail();
        mi = {.op = MOp::MovImm32, .rd = m.rm, .imm = imm};
        return finish();
      }
      case 0x54: case 0x55: case 0x56: case 0x57:
      case 0x58: case 0x59: case 0x5a: {
        ModRm m;
        if (!readModRm(m) || m.mod == 3)
            return fail();
        static const u8 sizes[7] = {1, 1, 2, 2, 4, 4, 8};
        static const bool signs[7] = {false, true, false, true,
                                      false, true, false};
        const unsigned j = opc - 0x54;
        mi = {.op = MOp::Ld, .rd = m.reg, .ra = m.rm,
              .size = sizes[j], .sign = signs[j], .imm = m.disp};
        return finish();
      }
      case 0x5b: case 0x5c: case 0x5d: case 0x5e: {
        ModRm m;
        if (!readModRm(m) || m.mod == 3)
            return fail();
        static const u8 sizes[4] = {1, 2, 4, 8};
        mi = {.op = MOp::St, .ra = m.rm, .rb = m.reg,
              .size = sizes[opc - 0x5b], .imm = m.disp};
        return finish();
      }
      case 0x60: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        mi = {.op = MOp::Cmp, .ra = m.rm, .rb = m.reg};
        return finish();
      }
      case 0x61: {
        ModRm m;
        i64 imm;
        if (!readModRm(m) || m.mod != 3 || !readI32(imm))
            return fail();
        mi = {.op = MOp::CmpI, .ra = m.rm, .imm = imm};
        return finish();
      }
      case 0xae: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3 || !needBytes(1))
            return fail();
        mi = {.op = MOp::CmpI, .ra = m.rm,
              .imm = static_cast<i8>(p[pos++])};
        return finish();
      }
      case 0x62: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        mi = {.op = MOp::FCmp, .ra = m.rm, .rb = m.reg};
        return finish();
      }
      case 0x70: {
        i64 imm;
        if (!readI32(imm))
            return fail();
        mi = {.op = MOp::Jmp, .imm = imm};
        return finish();
      }
      case 0x71: {
        i64 imm;
        if (!readI32(imm))
            return fail();
        mi = {.op = MOp::Call, .imm = imm};
        return finish();
      }
      case 0x72:
        mi = {.op = MOp::Ret};
        return finish();
      case 0x73: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        mi = {.op = MOp::JmpR, .ra = m.rm};
        return finish();
      }
      case 0x80: case 0x81: case 0x82: case 0x83: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        static const MOp ops[4] = {MOp::FAdd, MOp::FSub, MOp::FMul,
                                   MOp::FDiv};
        mi.op = ops[opc - 0x80];
        mi.rd = m.rm;
        mi.ra = m.rm;
        mi.rb = m.reg;
        return finish();
      }
      case 0x84: case 0x85: case 0x86: case 0x87: {
        ModRm m;
        if (!readModRm(m) || m.mod != 3)
            return fail();
        static const MOp ops[4] = {MOp::FSqrt, MOp::ItoF, MOp::FtoI,
                                   MOp::Mov};
        mi.op = ops[opc - 0x84];
        mi.rd = m.rm;
        mi.ra = m.reg;
        if (mi.op == MOp::Mov)
            mi.fp = true;
        return finish();
      }
      case 0x88: case 0x89: {
        ModRm m;
        if (!readModRm(m) || m.mod == 3)
            return fail();
        if (opc == 0x88)
            mi = {.op = MOp::LdF, .rd = m.reg, .ra = m.rm,
                  .imm = m.disp};
        else
            mi = {.op = MOp::StF, .ra = m.rm, .rb = m.reg,
                  .imm = m.disp};
        return finish();
      }
      case 0x90:
        mi = {.op = MOp::Nop};
        return finish();
      case 0x0f: {
        if (!needBytes(1))
            return fail();
        const u8 opc2 = p[pos++];
        if (opc2 >= 0x80 && opc2 < 0x80 + kNumConds) {
            i64 imm;
            if (!readI32(imm))
                return fail();
            mi = {.op = MOp::Br,
                  .cond = static_cast<Cond>(opc2 - 0x80), .imm = imm};
            return finish();
        }
        if (opc2 >= 0x90 && opc2 < 0x90 + kNumConds) {
            ModRm m;
            if (!readModRm(m) || m.mod != 3)
                return fail();
            mi = {.op = MOp::SetCC, .rd = m.rm,
                  .cond = static_cast<Cond>(opc2 - 0x90)};
            return finish();
        }
        if (opc2 >= 0x40 && opc2 < 0x40 + kNumConds) {
            ModRm m;
            if (!readModRm(m) || m.mod != 3)
                return fail();
            mi = {.op = MOp::CSel, .rd = m.rm, .ra = m.rm,
                  .rb = m.reg,
                  .cond = static_cast<Cond>(opc2 - 0x40)};
            return finish();
        }
        return fail();
      }
      case 0xf1: {
        if (!needBytes(1))
            return fail();
        const u8 sub = p[pos++];
        if (sub >= 4)
            return fail();
        mi = {.op = MOp::Magic, .subop = sub};
        return finish();
      }
      default:
        return fail();
    }
}

} // namespace

void
encodeTo(IsaKind kind, const MInst &mi, std::vector<u8> &out,
         bool allowCompressed)
{
    switch (kind) {
      case IsaKind::RISCV:
        encodeRiscv(mi, out, allowCompressed);
        break;
      case IsaKind::ARM:
        encodeArm(mi, out);
        break;
      case IsaKind::X86:
        encodeX86(mi, out);
        break;
    }
}

std::vector<u8>
encode(IsaKind kind, const MInst &mi, bool allowCompressed)
{
    std::vector<u8> out;
    encodeTo(kind, mi, out, allowCompressed);
    return out;
}

DecodeResult
decodeBytes(IsaKind kind, const u8 *bytes, std::size_t avail)
{
    switch (kind) {
      case IsaKind::RISCV:
        return decodeRiscv(bytes, avail);
      case IsaKind::ARM:
        return decodeArm(bytes, avail);
      case IsaKind::X86:
        return decodeX86(bytes, avail);
    }
    panic("decodeBytes: bad IsaKind");
}

} // namespace marvel::isa
