#include "isa/codegen.hh"

#include <cstring>
#include <sstream>
#include <tuple>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "isa/encoding.hh"
#include "isa/lowering.hh"
#include "isa/regalloc.hh"

namespace marvel::isa
{

namespace
{

/** An instruction awaiting final displacement resolution. */
struct EmitInst
{
    MInst mi;
    i32 blockTarget = -1; ///< branch target (lowered block id)
    i32 callTarget = -1;  ///< callee function id
};

/** Encoded function with pending cross-function call patches. */
struct FuncImage
{
    std::vector<u8> bytes;
    /** (byte offset of call inst, callee id, encoded length). */
    std::vector<std::tuple<u32, i32, u32>> callPatches;
    u64 numInsts = 0;
    u64 numCompressed = 0;
};

bool
mopCommutative(MOp op)
{
    switch (op) {
      case MOp::Add: case MOp::Mul: case MOp::And: case MOp::Or:
      case MOp::Xor: case MOp::FAdd: case MOp::FMul:
        return true;
      default:
        return false;
    }
}




/** Rewrites one function after register allocation into EmitInsts. */
class FuncEmitter
{
  public:
    FuncEmitter(const IsaSpec &isa, const LFunc &fn,
                const Allocation &alloc)
        : spec(isa), lf(fn), ra(alloc)
    {
    }

    std::vector<EmitInst> out;
    std::vector<u32> blockFirst; ///< block id -> index into out

    void
    run()
    {
        computeFrame();
        emitPrologue();
        blockFirst.assign(lf.blocks.size(), 0);
        for (std::size_t b = 0; b < lf.blocks.size(); ++b) {
            blockFirst[b] = static_cast<u32>(out.size());
            emitBlock(lf.blocks[b]);
        }
        // Guard against fallthrough off the end of a function.
        if (lf.blocks.empty() ||
            lf.blocks.back().insts.empty() ||
            lf.blocks.back().insts.back().op != MOp::Ret) {
            // Blocks always end in terminators (verified MIR), so the
            // last lowered block ends in Ret/Jmp; nothing to do for Jmp.
        }
    }

    unsigned frameSize = 0;

  private:
    // --- frame --------------------------------------------------------
    bool
    needsRaSave() const
    {
        return !lf.isLeaf && !spec.linkViaStack;
    }

    void
    computeFrame()
    {
        savedInt = ra.usedCalleeInt;
        savedFp = ra.usedCalleeFp;
        const unsigned slots = ra.numSlots + savedInt.size() +
                               savedFp.size() + (needsRaSave() ? 1 : 0);
        frameSize = alignUp(8ull * slots, 16);
    }

    i64
    slotOffset(i32 slot) const
    {
        return 8ll * slot;
    }

    i64
    saveOffset(unsigned idx) const
    {
        return 8ll * (ra.numSlots + idx);
    }

    void
    emitPrologue()
    {
        const u8 sp = static_cast<u8>(spec.spReg);
        if (frameSize == 0 && savedInt.empty() && savedFp.empty() &&
            !needsRaSave())
            return;
        push({.op = MOp::AddI, .rd = sp, .ra = sp,
              .imm = -static_cast<i64>(frameSize)});
        unsigned idx = 0;
        for (unsigned r : savedInt)
            push({.op = MOp::St, .ra = sp, .rb = static_cast<u8>(r),
                  .size = 8, .imm = saveOffset(idx++)});
        for (unsigned r : savedFp)
            push({.op = MOp::StF, .ra = sp, .rb = static_cast<u8>(r),
                  .imm = saveOffset(idx++)});
        if (needsRaSave())
            push({.op = MOp::St, .ra = sp,
                  .rb = static_cast<u8>(spec.raReg), .size = 8,
                  .imm = saveOffset(idx++)});
    }

    void
    emitEpilogue()
    {
        const u8 sp = static_cast<u8>(spec.spReg);
        if (frameSize == 0 && savedInt.empty() && savedFp.empty() &&
            !needsRaSave())
            return;
        unsigned idx = 0;
        for (unsigned r : savedInt)
            push({.op = MOp::Ld, .rd = static_cast<u8>(r), .ra = sp,
                  .size = 8, .imm = saveOffset(idx++)});
        for (unsigned r : savedFp)
            push({.op = MOp::LdF, .rd = static_cast<u8>(r), .ra = sp,
                  .imm = saveOffset(idx++)});
        if (needsRaSave())
            push({.op = MOp::Ld, .rd = static_cast<u8>(spec.raReg),
                  .ra = sp, .size = 8, .imm = saveOffset(idx++)});
        push({.op = MOp::AddI, .rd = sp, .ra = sp,
              .imm = static_cast<i64>(frameSize)});
    }

    // --- operand mapping -------------------------------------------------
    void
    push(MInst mi, i32 blockTarget = -1, i32 callTarget = -1)
    {
        out.push_back({mi, blockTarget, callTarget});
    }

    u8
    scratchFor(RegClass cls, unsigned which) const
    {
        if (cls == RegClass::Fp)
            return static_cast<u8>(spec.scratchFp[which > 1 ? 0 : which]);
        return static_cast<u8>(spec.scratchInt[which]);
    }

    /** Map a source operand, reloading spills into a scratch register. */
    u8
    mapUse(u32 r, RegClass cls, unsigned which)
    {
        if (r == kNoReg)
            return 0;
        if (lIsPhys(r))
            return static_cast<u8>(lPhysIdx(r));
        if (ra.reg[r] >= 0)
            return static_cast<u8>(ra.reg[r]);
        const u8 s = scratchFor(cls, which);
        const u8 sp = static_cast<u8>(spec.spReg);
        if (cls == RegClass::Fp)
            push({.op = MOp::LdF, .rd = s, .ra = sp,
                  .imm = slotOffset(ra.slot[r])});
        else
            push({.op = MOp::Ld, .rd = s, .ra = sp, .size = 8,
                  .imm = slotOffset(ra.slot[r])});
        return s;
    }

    struct DefMap
    {
        u8 reg = 0;
        bool spillStore = false;
        i64 off = 0;
        RegClass cls = RegClass::Int;
    };

    /**
     * Map a destination operand. `alsoUse` reloads the old value first
     * (AluM / MovK read their destination).
     */
    DefMap
    mapDef(u32 r, RegClass cls, bool alsoUse)
    {
        DefMap d;
        d.cls = cls;
        if (r == kNoReg)
            return d;
        if (lIsPhys(r)) {
            d.reg = static_cast<u8>(lPhysIdx(r));
            return d;
        }
        if (ra.reg[r] >= 0) {
            d.reg = static_cast<u8>(ra.reg[r]);
            return d;
        }
        d.reg = scratchFor(cls, alsoUse ? 2 : 0);
        d.spillStore = true;
        d.off = slotOffset(ra.slot[r]);
        if (alsoUse) {
            const u8 sp = static_cast<u8>(spec.spReg);
            if (cls == RegClass::Fp)
                push({.op = MOp::LdF, .rd = d.reg, .ra = sp,
                      .imm = d.off});
            else
                push({.op = MOp::Ld, .rd = d.reg, .ra = sp, .size = 8,
                      .imm = d.off});
        }
        return d;
    }

    void
    finishDef(const DefMap &d)
    {
        if (!d.spillStore)
            return;
        const u8 sp = static_cast<u8>(spec.spReg);
        if (d.cls == RegClass::Fp)
            push({.op = MOp::StF, .ra = sp, .rb = d.reg, .imm = d.off});
        else
            push({.op = MOp::St, .ra = sp, .rb = d.reg, .size = 8,
                  .imm = d.off});
    }

    // --- two-address fixups ------------------------------------------------
    void
    emitAlu3(MOp op, u8 rd, u8 raReg, u8 rbReg, bool fp)
    {
        if (spec.kind != IsaKind::X86) {
            push({.op = op, .rd = rd, .ra = raReg, .rb = rbReg});
            return;
        }
        if (rd == raReg) {
            push({.op = op, .rd = rd, .ra = rd, .rb = rbReg});
        } else if (rd == rbReg) {
            if (mopCommutative(op)) {
                push({.op = op, .rd = rd, .ra = rd, .rb = raReg});
            } else {
                const u8 s = fp ? static_cast<u8>(spec.scratchFp[1])
                                : static_cast<u8>(spec.scratchInt[1]);
                push({.op = MOp::Mov, .rd = s, .ra = rbReg, .fp = fp});
                push({.op = MOp::Mov, .rd = rd, .ra = raReg, .fp = fp});
                push({.op = op, .rd = rd, .ra = rd, .rb = s});
            }
        } else {
            push({.op = MOp::Mov, .rd = rd, .ra = raReg, .fp = fp});
            push({.op = op, .rd = rd, .ra = rd, .rb = rbReg});
        }
    }

    void
    emitAluI(MOp op, u8 rd, u8 raReg, i64 imm)
    {
        if (spec.kind == IsaKind::X86 && rd != raReg) {
            push({.op = MOp::Mov, .rd = rd, .ra = raReg});
            push({.op = op, .rd = rd, .ra = rd, .imm = imm});
        } else {
            push({.op = op, .rd = rd, .ra = raReg, .imm = imm});
        }
    }

    // --- call argument parallel moves ---------------------------------------
    struct PMove
    {
        int dstReg;  ///< -1 when the destination is a spill slot
        i64 dstOff;
        RegClass cls;
        int srcReg;  ///< -1 when sourced from a spill slot
        i64 srcOff;
    };

    void
    emitParallelMoves(std::vector<PMove> moves)
    {
        const u8 sp = static_cast<u8>(spec.spReg);
        auto emitOne = [&](const PMove &m) {
            if (m.dstReg < 0) {
                // Destination is a spill slot.
                u8 src = static_cast<u8>(m.srcReg);
                if (m.srcReg < 0) {
                    src = m.cls == RegClass::Fp
                              ? static_cast<u8>(spec.scratchFp[0])
                              : static_cast<u8>(spec.scratchInt[0]);
                    if (m.cls == RegClass::Fp)
                        push({.op = MOp::LdF, .rd = src, .ra = sp,
                              .imm = m.srcOff});
                    else
                        push({.op = MOp::Ld, .rd = src, .ra = sp,
                              .size = 8, .imm = m.srcOff});
                }
                if (m.cls == RegClass::Fp)
                    push({.op = MOp::StF, .ra = sp, .rb = src,
                          .imm = m.dstOff});
                else
                    push({.op = MOp::St, .ra = sp, .rb = src,
                          .size = 8, .imm = m.dstOff});
                return;
            }
            const u8 dst = static_cast<u8>(m.dstReg);
            if (m.srcReg < 0) {
                if (m.cls == RegClass::Fp)
                    push({.op = MOp::LdF, .rd = dst, .ra = sp,
                          .imm = m.srcOff});
                else
                    push({.op = MOp::Ld, .rd = dst, .ra = sp,
                          .size = 8, .imm = m.srcOff});
            } else if (m.srcReg != m.dstReg) {
                push({.op = MOp::Mov, .rd = dst,
                      .ra = static_cast<u8>(m.srcReg),
                      .fp = m.cls == RegClass::Fp});
            }
        };
        while (!moves.empty()) {
            bool progressed = false;
            for (std::size_t i = 0; i < moves.size(); ++i) {
                const PMove &m = moves[i];
                bool dstIsRead = false;
                for (std::size_t j = 0; j < moves.size(); ++j) {
                    if (j == i)
                        continue;
                    if (m.dstReg >= 0 && moves[j].cls == m.cls &&
                        moves[j].srcReg == m.dstReg) {
                        dstIsRead = true;
                        break;
                    }
                }
                if (!dstIsRead) {
                    emitOne(m);
                    moves.erase(moves.begin() + i);
                    progressed = true;
                    break;
                }
            }
            if (progressed)
                continue;
            // Cycle: rotate through a scratch register.
            PMove &m = moves.front();
            const u8 s = m.cls == RegClass::Fp
                             ? static_cast<u8>(spec.scratchFp[0])
                             : static_cast<u8>(spec.scratchInt[0]);
            push({.op = MOp::Mov, .rd = s,
                  .ra = static_cast<u8>(m.srcReg),
                  .fp = m.cls == RegClass::Fp});
            for (PMove &other : moves)
                if (other.cls == m.cls && other.srcReg == m.srcReg)
                    other.srcReg = s;
        }
    }

    // --- instruction rewrite -------------------------------------------------
    void
    emitBlock(const LBlock &blk)
    {
        for (std::size_t i = 0; i < blk.insts.size(); ++i) {
            const LInst &inst = blk.insts[i];
            if (inst.callGroup != 0) {
                // Gather the whole group.
                std::vector<PMove> moves;
                std::size_t j = i;
                for (; j < blk.insts.size() &&
                       blk.insts[j].callGroup == inst.callGroup;
                     ++j) {
                    const LInst &mv = blk.insts[j];
                    PMove pm;
                    pm.cls = mv.fp ? RegClass::Fp : RegClass::Int;
                    if (lIsPhys(mv.rd)) {
                        pm.dstReg =
                            static_cast<int>(lPhysIdx(mv.rd));
                        pm.dstOff = 0;
                    } else if (ra.reg[mv.rd] >= 0) {
                        pm.dstReg = ra.reg[mv.rd];
                        pm.dstOff = 0;
                    } else {
                        pm.dstReg = -1;
                        pm.dstOff = slotOffset(ra.slot[mv.rd]);
                    }
                    if (lIsPhys(mv.ra)) {
                        pm.srcReg =
                            static_cast<int>(lPhysIdx(mv.ra));
                        pm.srcOff = 0;
                    } else if (ra.reg[mv.ra] >= 0) {
                        pm.srcReg = ra.reg[mv.ra];
                        pm.srcOff = 0;
                    } else {
                        pm.srcReg = -1;
                        pm.srcOff = slotOffset(ra.slot[mv.ra]);
                    }
                    moves.push_back(pm);
                }
                emitParallelMoves(std::move(moves));
                i = j - 1;
                continue;
            }
            emitInst(inst);
        }
    }

    void
    emitInst(const LInst &inst)
    {
        const OperandRoles roles = operandRoles(inst);

        if (inst.op == MOp::Ret) {
            emitEpilogue();
            push({.op = MOp::Ret});
            return;
        }
        if (inst.op == MOp::Call) {
            push({.op = MOp::Call}, -1, inst.target);
            return;
        }
        if (inst.op == MOp::Jmp) {
            push({.op = MOp::Jmp}, inst.target);
            return;
        }

        u8 raReg = 0;
        u8 rbReg = 0;
        if (roles.raIsUse)
            raReg = mapUse(inst.ra, roles.raClass, 0);
        if (roles.rbIsUse)
            rbReg = mapUse(inst.rb, roles.rbClass, 1);

        if (inst.op == MOp::Br) {
            MInst mi;
            mi.op = MOp::Br;
            mi.cond = inst.cond;
            mi.ra = raReg;
            mi.rb = rbReg;
            push(mi, inst.target);
            return;
        }

        DefMap def;
        if (roles.rdIsDef)
            def = mapDef(inst.rd, roles.rdClass, roles.rdIsUse);

        switch (inst.op) {
          case MOp::Nop:
            push({.op = MOp::Nop});
            break;
          case MOp::Add: case MOp::Sub: case MOp::Mul: case MOp::Div:
          case MOp::DivU: case MOp::Rem: case MOp::RemU: case MOp::And:
          case MOp::Or: case MOp::Xor: case MOp::Shl: case MOp::Shr:
          case MOp::Sra:
            emitAlu3(inst.op, def.reg, raReg, rbReg, false);
            break;
          case MOp::AddI: case MOp::AndI: case MOp::OrI:
          case MOp::XorI: case MOp::ShlI: case MOp::ShrI:
          case MOp::SraI:
            emitAluI(inst.op, def.reg, raReg, inst.imm);
            break;
          case MOp::Slt: case MOp::SltU:
            push({.op = inst.op, .rd = def.reg, .ra = raReg,
                  .rb = rbReg});
            break;
          case MOp::SltI: case MOp::SltIU:
            push({.op = inst.op, .rd = def.reg, .ra = raReg,
                  .imm = inst.imm});
            break;
          case MOp::Lui: case MOp::MovImm32: case MOp::MovImm64:
            push({.op = inst.op, .rd = def.reg, .imm = inst.imm});
            break;
          case MOp::MovZ: case MOp::MovK:
            push({.op = inst.op, .rd = def.reg, .subop = inst.subop,
                  .imm = inst.imm});
            break;
          case MOp::Mov:
            if (def.reg != raReg || def.spillStore)
                push({.op = MOp::Mov, .rd = def.reg, .ra = raReg,
                      .fp = inst.fp});
            break;
          case MOp::Cmp:
            push({.op = MOp::Cmp, .ra = raReg, .rb = rbReg});
            break;
          case MOp::CmpI:
            push({.op = MOp::CmpI, .ra = raReg, .imm = inst.imm});
            break;
          case MOp::FCmp:
            push({.op = MOp::FCmp, .ra = raReg, .rb = rbReg});
            break;
          case MOp::SetCC:
            push({.op = MOp::SetCC, .rd = def.reg, .cond = inst.cond});
            break;
          case MOp::CSel:
            if (spec.kind == IsaKind::X86) {
                // Lowering guarantees rd == ra (same vreg).
                push({.op = MOp::CSel, .rd = def.reg, .ra = def.reg,
                      .rb = rbReg, .cond = inst.cond});
            } else {
                push({.op = MOp::CSel, .rd = def.reg, .ra = raReg,
                      .rb = rbReg, .cond = inst.cond});
            }
            break;
          case MOp::FSet:
            push({.op = MOp::FSet, .rd = def.reg, .ra = raReg,
                  .rb = rbReg, .cond = inst.cond});
            break;
          case MOp::Ld:
            push({.op = MOp::Ld, .rd = def.reg, .ra = raReg,
                  .size = inst.size, .sign = inst.sign,
                  .imm = inst.imm});
            break;
          case MOp::LdF:
            push({.op = MOp::LdF, .rd = def.reg, .ra = raReg,
                  .imm = inst.imm});
            break;
          case MOp::St:
            push({.op = MOp::St, .ra = raReg, .rb = rbReg,
                  .size = inst.size, .imm = inst.imm});
            break;
          case MOp::StF:
            push({.op = MOp::StF, .ra = raReg, .rb = rbReg,
                  .imm = inst.imm});
            break;
          case MOp::AluM:
            push({.op = MOp::AluM, .rd = def.reg, .ra = raReg,
                  .subop = inst.subop, .imm = inst.imm});
            break;
          case MOp::JmpR:
            push({.op = MOp::JmpR, .ra = raReg});
            break;
          case MOp::FAdd: case MOp::FSub: case MOp::FMul:
          case MOp::FDiv:
            if (spec.kind == IsaKind::X86) {
                if (def.reg == raReg) {
                    push({.op = inst.op, .rd = def.reg, .ra = def.reg,
                          .rb = rbReg});
                } else if (def.reg == rbReg) {
                    if (mopCommutative(inst.op)) {
                        push({.op = inst.op, .rd = def.reg,
                              .ra = def.reg, .rb = raReg});
                    } else {
                        const u8 s =
                            static_cast<u8>(spec.scratchFp[1]);
                        push({.op = MOp::Mov, .rd = s, .ra = rbReg,
                              .fp = true});
                        push({.op = MOp::Mov, .rd = def.reg,
                              .ra = raReg, .fp = true});
                        push({.op = inst.op, .rd = def.reg,
                              .ra = def.reg, .rb = s});
                    }
                } else {
                    push({.op = MOp::Mov, .rd = def.reg, .ra = raReg,
                          .fp = true});
                    push({.op = inst.op, .rd = def.reg, .ra = def.reg,
                          .rb = rbReg});
                }
            } else {
                push({.op = inst.op, .rd = def.reg, .ra = raReg,
                      .rb = rbReg});
            }
            break;
          case MOp::FSqrt: case MOp::ItoF: case MOp::FtoI:
            push({.op = inst.op, .rd = def.reg, .ra = raReg});
            break;
          case MOp::Magic:
            push({.op = MOp::Magic, .subop = inst.subop});
            break;
          default:
            fatal("emitInst: unexpected MOp %d",
                  static_cast<int>(inst.op));
        }

        if (roles.rdIsDef)
            finishDef(def);
    }

    const IsaSpec &spec;
    const LFunc &lf;
    const Allocation &ra;
    std::vector<unsigned> savedInt;
    std::vector<unsigned> savedFp;
};

/** Encode an EmitInst stream with branch relaxation. */
FuncImage
encodeFunction(const IsaSpec &spec, const std::vector<EmitInst> &insts,
               const std::vector<u32> &blockFirst)
{
    const std::size_t n = insts.size();
    std::vector<u32> sizes(n, 0);
    std::vector<bool> wide(n, false);
    std::vector<u32> offsets(n + 1, 0);
    std::vector<u8> tmp;

    for (unsigned iter = 0; iter < 64; ++iter) {
        offsets[0] = 0;
        for (std::size_t i = 0; i < n; ++i)
            offsets[i + 1] = offsets[i] + sizes[i];
        bool changed = false;
        for (std::size_t i = 0; i < n; ++i) {
            MInst mi = insts[i].mi;
            if (insts[i].blockTarget >= 0)
                mi.imm = static_cast<i64>(
                             offsets[blockFirst[insts[i].blockTarget]]) -
                         static_cast<i64>(offsets[i]);
            if (insts[i].callTarget >= 0)
                mi.imm = 0;
            tmp.clear();
            encodeTo(spec.kind, mi, tmp, !wide[i]);
            u32 len = static_cast<u32>(tmp.size());
            if (sizes[i] != 0 && len < sizes[i]) {
                // Never shrink: pin this instruction wide.
                wide[i] = true;
                tmp.clear();
                encodeTo(spec.kind, mi, tmp, false);
                len = static_cast<u32>(tmp.size());
            }
            if (len != sizes[i]) {
                sizes[i] = len;
                changed = true;
            }
        }
        if (!changed)
            break;
        if (iter == 63)
            fatal("codegen: branch relaxation did not converge");
    }

    offsets[0] = 0;
    for (std::size_t i = 0; i < n; ++i)
        offsets[i + 1] = offsets[i] + sizes[i];

    FuncImage img;
    img.bytes.reserve(offsets[n]);
    for (std::size_t i = 0; i < n; ++i) {
        MInst mi = insts[i].mi;
        if (insts[i].blockTarget >= 0)
            mi.imm = static_cast<i64>(
                         offsets[blockFirst[insts[i].blockTarget]]) -
                     static_cast<i64>(offsets[i]);
        if (insts[i].callTarget >= 0) {
            mi.imm = 0;
            img.callPatches.emplace_back(offsets[i],
                                         insts[i].callTarget,
                                         sizes[i]);
        }
        tmp.clear();
        encodeTo(spec.kind, mi, tmp, !wide[i]);
        if (tmp.size() != sizes[i])
            panic("codegen: size instability at inst %zu", i);
        img.bytes.insert(img.bytes.end(), tmp.begin(), tmp.end());
        ++img.numInsts;
        if (tmp.size() == 2)
            ++img.numCompressed;
    }
    return img;
}

/** Build the bare-metal startup stub (crt0). */
std::vector<EmitInst>
buildCrt0(const IsaSpec &spec, i32 entryFunc)
{
    std::vector<EmitInst> insts;
    auto push = [&](MInst mi, i32 call = -1) {
        insts.push_back({mi, -1, call});
    };
    const u8 sp = static_cast<u8>(spec.spReg);
    switch (spec.kind) {
      case IsaKind::RISCV:
        push({.op = MOp::Lui, .rd = sp,
              .imm = static_cast<i64>(kStackTop)});
        push({.op = MOp::Call}, entryFunc);
        push({.op = MOp::Lui, .rd = 5,
              .imm = static_cast<i64>(kMmioBase)});
        push({.op = MOp::AddI, .rd = 5, .ra = 5, .imm = 8});
        push({.op = MOp::St, .ra = 5, .rb = 10, .size = 8, .imm = 0});
        break;
      case IsaKind::ARM:
        push({.op = MOp::MovZ, .rd = sp, .subop = 1,
              .imm = static_cast<i64>(kStackTop >> 16)});
        push({.op = MOp::Call}, entryFunc);
        push({.op = MOp::MovZ, .rd = 9, .subop = 1,
              .imm = static_cast<i64>(kMmioBase >> 16)});
        push({.op = MOp::AddI, .rd = 9, .ra = 9, .imm = 8});
        push({.op = MOp::St, .ra = 9, .rb = 0, .size = 8, .imm = 0});
        break;
      case IsaKind::X86:
        push({.op = MOp::MovImm32, .rd = sp,
              .imm = static_cast<i64>(kStackTop)});
        push({.op = MOp::Call}, entryFunc);
        push({.op = MOp::MovImm32, .rd = 10,
              .imm = static_cast<i64>(kMmioExit)});
        push({.op = MOp::St, .ra = 10, .rb = 0, .size = 8, .imm = 0});
        break;
    }
    // Halt loop in case the exit store does not stop simulation.
    push({.op = MOp::Jmp, .imm = 0});
    return insts;
}

} // namespace

Program
compile(const mir::Module &module, IsaKind kind)
{
    const IsaSpec &spec = isaSpec(kind);
    LoweredModule lm = lowerModule(module, kind);

    Program prog;
    prog.kind = kind;
    prog.layout = lm.layout;
    prog.entry = kCodeBase;

    // --- encode every function ------------------------------------------
    std::vector<FuncImage> images;
    images.reserve(lm.funcs.size() + 1);

    // crt0 first.
    {
        std::vector<u32> noBlocks;
        images.push_back(encodeFunction(
            spec, buildCrt0(spec, static_cast<i32>(module.entry)),
            noBlocks));
    }
    u64 spillSlots = 0;
    for (LFunc &lf : lm.funcs) {
        const Allocation alloc = allocateRegisters(spec, lf);
        spillSlots += alloc.numSlots;
        FuncEmitter emitter(spec, lf, alloc);
        emitter.run();
        images.push_back(
            encodeFunction(spec, emitter.out, emitter.blockFirst));
    }

    // --- lay out functions ------------------------------------------------
    std::vector<Addr> funcBase(images.size(), 0);
    Addr cursor = kCodeBase;
    for (std::size_t i = 0; i < images.size(); ++i) {
        cursor = alignUp(cursor, spec.funcAlign);
        funcBase[i] = cursor;
        cursor += images[i].bytes.size();
    }

    prog.code.assign(cursor - kCodeBase, 0);
    for (std::size_t i = 0; i < images.size(); ++i)
        std::memcpy(prog.code.data() + (funcBase[i] - kCodeBase),
                    images[i].bytes.data(), images[i].bytes.size());

    for (std::size_t f = 0; f < lm.funcs.size(); ++f)
        prog.funcAddrs.emplace_back(lm.funcs[f].name, funcBase[f + 1]);

    // --- patch call displacements -------------------------------------------
    std::vector<u8> tmp;
    for (std::size_t i = 0; i < images.size(); ++i) {
        for (const auto &[off, callee, len] : images[i].callPatches) {
            const Addr site = funcBase[i] + off;
            const Addr target = funcBase[callee + 1];
            MInst call;
            call.op = MOp::Call;
            call.imm = static_cast<i64>(target) -
                       static_cast<i64>(site);
            tmp.clear();
            encodeTo(kind, call, tmp, false);
            if (tmp.size() != len)
                panic("codegen: call patch length mismatch");
            std::memcpy(prog.code.data() + (site - kCodeBase),
                        tmp.data(), tmp.size());
        }
    }

    // --- data image -----------------------------------------------------------
    const Addr dataEnd = lm.poolBase + lm.poolBytes.size();
    prog.dataEnd = dataEnd;
    prog.dataImage.assign(dataEnd - kDataBase, 0);
    for (std::size_t g = 0; g < module.globals.size(); ++g) {
        const mir::Global &gl = module.globals[g];
        const Addr base = lm.layout.globalAddr[g] - kDataBase;
        if (!gl.init.empty())
            std::memcpy(prog.dataImage.data() + base, gl.init.data(),
                        std::min<std::size_t>(gl.init.size(), gl.size));
    }
    if (!lm.poolBytes.empty())
        std::memcpy(prog.dataImage.data() + (lm.poolBase - kDataBase),
                    lm.poolBytes.data(), lm.poolBytes.size());

    // --- stats ------------------------------------------------------------------
    for (const FuncImage &img : images) {
        prog.stats.numInsts += img.numInsts;
        prog.stats.numCompressed += img.numCompressed;
    }
    prog.stats.codeBytes = prog.code.size();
    prog.stats.spillSlots = spillSlots;
    return prog;
}

std::string
disassemble(const Program &program)
{
    std::ostringstream out;
    const IsaSpec &spec = isaSpec(program.kind);
    Addr pc = kCodeBase;
    const Addr end = kCodeBase + program.code.size();
    while (pc < end) {
        for (const auto &[name, addr] : program.funcAddrs)
            if (addr == pc)
                out << name << ":\n";
        const u8 *p = program.code.data() + (pc - kCodeBase);
        const DecodeResult dr =
            decodeBytes(spec.kind, p, end - pc);
        out << strfmt("  %06llx: ", static_cast<unsigned long long>(pc));
        if (dr.illegal) {
            out << "(illegal)\n";
        } else {
            const MInst &mi = dr.mi;
            out << mopName(mi.op)
                << strfmt(" rd=%u ra=%u rb=%u imm=%lld", mi.rd, mi.ra,
                          mi.rb, static_cast<long long>(mi.imm))
                << "\n";
        }
        pc += dr.length;
    }
    return out.str();
}

u64
programDigest(const Program &program)
{
    u64 hash = kFnvOffset;
    hash = fnv1aWord(static_cast<u64>(program.kind), hash);
    hash = fnv1aWord(program.entry, hash);
    hash = fnv1a(program.code.data(), program.code.size(), hash);
    hash = fnv1aWord(program.dataEnd, hash);
    hash = fnv1a(program.dataImage.data(), program.dataImage.size(),
                 hash);
    for (const Addr addr : program.layout.globalAddr)
        hash = fnv1aWord(addr, hash);
    hash = fnv1aWord(program.layout.end, hash);
    for (const auto &[name, addr] : program.funcAddrs) {
        hash = fnv1a(reinterpret_cast<const u8 *>(name.data()),
                     name.size(), hash);
        hash = fnv1aWord(addr, hash);
    }
    return hash;
}

} // namespace marvel::isa
