/**
 * @file
 * The assembly-level machine instruction repertoire.
 *
 * Each ISA flavor encodes a (per-flavor legal) subset of this repertoire
 * into its own byte format. The code generators emit MInst sequences; the
 * encoders turn them into bytes; the decoders recover MInsts from bytes
 * and crack them into micro-ops (see uop.hh).
 */

#ifndef MARVEL_ISA_MINST_HH
#define MARVEL_ISA_MINST_HH

#include "common/types.hh"
#include "isa/isa.hh"

namespace marvel::isa
{

/** Assembly-level opcode. Not every op is legal in every flavor. */
enum class MOp : u8
{
    Nop,

    // Integer ALU, register-register. Three-address for RISCV/ARM;
    // the X86 encoder requires rd == ra (two-address form).
    Add, Sub, Mul, Div, DivU, Rem, RemU, And, Or, Xor, Shl, Shr, Sra,

    // Integer ALU, register-immediate (rd = ra op imm).
    AddI, AndI, OrI, XorI, ShlI, ShrI, SraI,

    // RISCV set-less-than (rd = ra < rb / imm).
    Slt, SltU, SltI, SltIU,

    // Constant materialization (per-flavor):
    Lui,       ///< RISCV: rd = sext(imm20 << 12)
    MovZ,      ///< ARM: rd = imm16 << (16*hw);  hw in subop
    MovK,      ///< ARM: rd |= imm16 << (16*hw)
    MovImm32,  ///< X86: rd = sext(imm32)
    MovImm64,  ///< X86: rd = imm64

    Mov,       ///< rd = ra (int or fp per `fp` flag)

    // Flag-based compares (ARM/X86).
    Cmp,       ///< flags = compare(ra, rb)
    CmpI,      ///< flags = compare(ra, imm)
    FCmp,      ///< flags = compare(fa, fb)
    SetCC,     ///< rd = cond(flags) ? 1 : 0
    CSel,      ///< ARM: rd = cond ? ra : rb; X86 CMOV: rd = cond ? rb : rd

    // RISCV float compares writing an integer register.
    FSet,      ///< rd = cond(fa, fb); cond in {Eq, Lt, Le}

    // Memory. Effective address = ra + imm. size in {1,2,4,8}.
    Ld,        ///< rd = mem[ra+imm], zero- or sign-extended per `sign`
    St,        ///< mem[ra+imm] = rb
    LdF,       ///< fp load (8 bytes)
    StF,       ///< fp store

    // X86 load-op: rd = rd aluop mem[ra+imm]; aluop in subop (MOp::Add..).
    AluM,

    // Control flow. Branch displacements are relative to the
    // *instruction start* address.
    Br,        ///< RISCV: if cond(ra, rb) pc += imm.
               ///< ARM/X86: if cond(flags) pc += imm.
    Jmp,       ///< pc += imm
    JmpR,      ///< pc = ra (indirect; RISCV jalr x0 / ARM br / X86 jmp r)
    Call,      ///< direct call, pc += imm; links per flavor
    Ret,       ///< return per flavor

    // Floating point (F64).
    FAdd, FSub, FMul, FDiv, FSqrt, ItoF, FtoI,

    // Simulation magic (m5-style). subop = MagicOp.
    Magic,

    // Decoder-only: an undecodable byte pattern. Raises an
    // illegal-instruction fault at commit.
    Illegal,
};

/** Magic pseudo-instruction subcodes. */
enum class MagicOp : u8
{
    Checkpoint = 0, ///< begin fault-injection window (m5_checkpoint)
    SwitchCpu = 1,  ///< end fault-injection window (m5_switch_cpu)
    WaitIrq = 2,    ///< stall until an external interrupt is pending
    Nop = 3,
};

/** One assembly-level instruction. */
struct MInst
{
    MOp op = MOp::Nop;
    u8 rd = 0;
    u8 ra = 0;
    u8 rb = 0;
    Cond cond = Cond::Eq;
    u8 size = 8;     ///< load/store access size
    bool sign = false;
    bool fp = false; ///< Mov between FP registers
    u8 subop = 0;    ///< AluM alu op / MovZ-MovK halfword / MagicOp
    i64 imm = 0;
};

/** Mnemonic for debugging output. */
const char *mopName(MOp op);

} // namespace marvel::isa

#endif // MARVEL_ISA_MINST_HH
