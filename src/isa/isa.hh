/**
 * @file
 * ISA flavor definitions.
 *
 * MARVEL models three 64-bit ISA flavors patterned on the three ISAs the
 * paper evaluates. They are deliberately *mechanically* different in the
 * dimensions that drive the paper's observations:
 *
 *  - RISCV: load/store ISA, 32 integer registers, fixed 4-byte encodings
 *    plus 2-byte compressed forms (small code footprint), several encoding
 *    fields ignored by the decoder (decode masking), weak memory ordering.
 *  - ARM: load/store ISA, 31 integer registers + SP, fixed 4-byte
 *    encodings where every field is validated (flips rarely masked),
 *    flag-based compares, eager store drain (weak ordering).
 *  - X86: two-address CISC flavor, 16 integer registers, variable-length
 *    encodings (2-11 bytes), memory operands (load-op fusion in the
 *    decoder), flag-based compares, TSO-style slow store drain.
 */

#ifndef MARVEL_ISA_ISA_HH
#define MARVEL_ISA_ISA_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel::isa
{

/** The three ISA flavors. */
enum class IsaKind : u8 { RISCV = 0, ARM = 1, X86 = 2 };

/** Number of ISA kinds (for iteration). */
constexpr unsigned kNumIsas = 3;

/** All ISA kinds, handy for sweeps. */
constexpr IsaKind kAllIsas[kNumIsas] = {
    IsaKind::RISCV, IsaKind::ARM, IsaKind::X86,
};

/** Short name: "riscv", "arm", "x86". */
const char *isaName(IsaKind kind);

/** Parse an ISA name; fatal() on unknown. */
IsaKind isaFromName(const std::string &name);

/**
 * Static description of one ISA flavor: register files, calling
 * convention, and microarchitecturally relevant behavioural knobs.
 *
 * Rename-visible integer register indices are laid out as:
 *   [0, numIntArchRegs)                      architectural registers
 *   numIntArchRegs .. +numIntTemps-1         decoder micro-temporaries
 *   flagsReg (when hasFlags)                 condition flags register
 */
struct IsaSpec
{
    IsaKind kind;
    const char *name;

    // --- register files -------------------------------------------------
    unsigned numIntArchRegs;  ///< programmer-visible integer registers
    unsigned numFpArchRegs;   ///< programmer-visible FP registers
    unsigned numIntTemps;     ///< decoder micro-temporaries (x86 cracking)
    bool hasFlags;            ///< condition-flags pseudo register
    bool hasZeroReg;          ///< register 0 reads as zero (RISCV)
    unsigned spReg;           ///< stack pointer index
    unsigned raReg;           ///< link register index (unused for X86)
    bool linkViaStack;        ///< calls push the return address (X86)

    // --- calling convention ----------------------------------------------
    std::vector<unsigned> intArgRegs;
    unsigned intRetReg;
    std::vector<unsigned> fpArgRegs;
    unsigned fpRetReg;
    std::vector<unsigned> calleeSavedInt;
    std::vector<unsigned> callerSavedInt; ///< allocatable caller-saved
    std::vector<unsigned> calleeSavedFp;
    std::vector<unsigned> callerSavedFp;
    unsigned scratchInt[3];   ///< reserved for spill reload / materialization
    unsigned scratchFp[2];

    // --- behavioural knobs -----------------------------------------------
    /**
     * Cycles between draining consecutive retired stores from the store
     * queue to the cache. Models the memory-ordering cost: TSO (X86)
     * drains slowly and in order; ARM drains eagerly.
     */
    unsigned storeDrainInterval;

    /** Unaligned accesses allowed (X86) or architectural fault. */
    bool allowsUnaligned;

    /** Emit 2-byte compressed encodings where possible (RISCV). */
    bool compressedCode;

    /** Function entry alignment in bytes (ARM pads more). */
    unsigned funcAlign;

    // --- derived ----------------------------------------------------------
    /** Total rename-visible integer registers (arch + temps + flags). */
    unsigned
    numIntRenameRegs() const
    {
        return numIntArchRegs + numIntTemps + (hasFlags ? 1 : 0);
    }

    /** Total rename-visible FP registers. */
    unsigned numFpRenameRegs() const { return numFpArchRegs; }

    /** Index of the flags pseudo register. */
    unsigned flagsReg() const { return numIntArchRegs + numIntTemps; }

    /** Index of decoder micro-temp t (t < numIntTemps). */
    unsigned tempReg(unsigned t) const { return numIntArchRegs + t; }
};

/** Immutable spec for a flavor. */
const IsaSpec &isaSpec(IsaKind kind);

/** Condition codes shared by all flavors. */
enum class Cond : u8
{
    Eq, Ne, Lt, Le, Gt, Ge, LtU, LeU, GtU, GeU,
};

/** Number of condition codes. */
constexpr unsigned kNumConds = 10;

/** Negate a condition. */
Cond invertCond(Cond cond);

/** Evaluate cond over two signed/unsigned operands. */
bool evalCond(Cond cond, u64 a, u64 b);

/**
 * FLAGS register value: bit i set iff condition i holds for the compared
 * operands. Computed by Cmp/FCmp micro-ops; tested by Bcc/SetCC/CSel.
 */
u64 packFlags(u64 a, u64 b);

/** FLAGS for a floating-point compare. */
u64 packFlagsF(double a, double b);

/** Test a condition against a packed FLAGS value. */
bool testFlags(u64 flags, Cond cond);

} // namespace marvel::isa

#endif // MARVEL_ISA_ISA_HH
