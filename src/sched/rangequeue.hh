/**
 * @file
 * Contiguous fault-index ranges for lease-based dispatch.
 *
 * The in-process WorkQueue deals single indices from an atomic
 * counter — perfect when every worker shares an address space, wrong
 * for network dispatch where each unit of work costs a round trip and
 * must survive the worker dying mid-unit. RangeQueue is its coarse
 * sibling: the pending index set is held as sorted, disjoint,
 * contiguous [begin, end) ranges; a grant splits off up to maxSize
 * indices from the front, and a failed lease pushes its range back
 * (re-coalescing with neighbours) to be granted again.
 *
 * Header-only and single-threaded by design: the daemon's poll loop
 * is the only caller, so there is no locking to get wrong. The
 * in-process scheduler keeps its lock-free WorkQueue; this type
 * exists beside it, not instead of it.
 */

#ifndef MARVEL_SCHED_RANGEQUEUE_HH
#define MARVEL_SCHED_RANGEQUEUE_HH

#include <deque>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace marvel::sched
{

/** Fault indices [begin, end). */
struct IndexRange
{
    u64 begin = 0;
    u64 end = 0;

    u64 size() const { return end - begin; }
    bool contains(u64 i) const { return i >= begin && i < end; }
    bool operator==(const IndexRange &other) const = default;
};

/**
 * The pending indices of a campaign as maximal contiguous ranges:
 * every index i < numFaults with done[i] == 0, coalesced. This is how
 * a daemon rebuilds its queue from a resumed journal's done bitmap.
 */
inline std::vector<IndexRange>
pendingRanges(u64 numFaults, const std::vector<u8> &done)
{
    std::vector<IndexRange> ranges;
    u64 i = 0;
    while (i < numFaults) {
        if (i < done.size() && done[i]) {
            ++i;
            continue;
        }
        u64 j = i + 1;
        while (j < numFaults && !(j < done.size() && done[j]))
            ++j;
        ranges.push_back({i, j});
        i = j;
    }
    return ranges;
}

/** Sorted, disjoint pool of pending index ranges. */
class RangeQueue
{
  public:
    RangeQueue() = default;

    explicit RangeQueue(std::vector<IndexRange> ranges)
        : ranges_(ranges.begin(), ranges.end())
    {
    }

    /**
     * Split off up to `maxSize` indices from the front range.
     * nullopt when the queue is empty; maxSize == 0 takes the whole
     * front range.
     */
    std::optional<IndexRange>
    acquire(u64 maxSize)
    {
        if (ranges_.empty())
            return std::nullopt;
        IndexRange &front = ranges_.front();
        IndexRange granted = front;
        if (maxSize > 0 && front.size() > maxSize) {
            granted.end = granted.begin + maxSize;
            front.begin = granted.end;
        } else {
            ranges_.pop_front();
        }
        return granted;
    }

    /**
     * Return a range to the pool (lease expiry, worker death),
     * keeping the pool sorted and coalescing with abutting
     * neighbours so re-leases stay as coarse as first leases.
     */
    void
    requeue(IndexRange range)
    {
        if (range.size() == 0)
            return;
        auto it = ranges_.begin();
        while (it != ranges_.end() && it->begin < range.begin)
            ++it;
        it = ranges_.insert(it, range);
        // Coalesce with the neighbour on each side when contiguous.
        if (it != ranges_.begin()) {
            auto prev = it - 1;
            if (prev->end == it->begin) {
                prev->end = it->end;
                it = ranges_.erase(it) - 1;
            }
        }
        if (it + 1 != ranges_.end() && it->end == (it + 1)->begin) {
            it->end = (it + 1)->end;
            ranges_.erase(it + 1);
        }
    }

    bool empty() const { return ranges_.empty(); }

    /** Indices currently waiting to be granted. */
    u64
    pendingCount() const
    {
        u64 n = 0;
        for (const IndexRange &r : ranges_)
            n += r.size();
        return n;
    }

    std::size_t rangeCount() const { return ranges_.size(); }

  private:
    std::deque<IndexRange> ranges_;
};

} // namespace marvel::sched

#endif // MARVEL_SCHED_RANGEQUEUE_HH
