/**
 * @file
 * Lock-free work distribution for campaign workers.
 *
 * The original campaign loop dealt fault indices by fixed stride
 * (`for (i = tid; i < n; i += threads)`), which strands threads when
 * expensive runs cluster on one stride — early-terminated runs finish
 * in a few thousand cycles while crash-timeout runs cost 8x the
 * golden runtime, so static partitions routinely leave workers idle.
 * WorkQueue replaces that with an atomic-counter pool: every worker
 * claims the next unclaimed slot, so imbalance is bounded by one run.
 *
 * Header-only and dependency-free so both the legacy in-memory
 * campaign path (fi/campaign.cc) and the persistent scheduler
 * (sched/scheduler.cc) share the same distribution mechanism.
 */

#ifndef MARVEL_SCHED_WORKQUEUE_HH
#define MARVEL_SCHED_WORKQUEUE_HH

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace marvel::sched
{

/** Atomic dispenser of slot indices [0, size). */
class WorkQueue
{
  public:
    explicit WorkQueue(u64 size) : size_(size) {}

    /** Claim the next slot, or nullopt when the queue is drained. */
    std::optional<u64>
    next()
    {
        const u64 slot =
            cursor_.fetch_add(1, std::memory_order_relaxed);
        if (slot >= size_)
            return std::nullopt;
        return slot;
    }

    u64 size() const { return size_; }

    /** Slots handed out so far (may exceed size once drained). */
    u64
    claimed() const
    {
        const u64 c = cursor_.load(std::memory_order_relaxed);
        return c < size_ ? c : size_;
    }

  private:
    const u64 size_;
    std::atomic<u64> cursor_{0};
};

/**
 * Run `fn(tid)` on `threads` workers and join them all. `threads`
 * <= 1 runs inline on the calling thread (no spawn overhead, and
 * keeps single-threaded campaigns trivially debuggable).
 */
template <typename Fn>
void
runWorkers(unsigned threads, Fn &&fn)
{
    if (threads <= 1) {
        fn(0u);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(fn, t);
    for (std::thread &t : pool)
        t.join();
}

} // namespace marvel::sched

#endif // MARVEL_SCHED_WORKQUEUE_HH
