/**
 * @file
 * Deterministic replay of one journaled fault run.
 *
 * Every campaign fault index derives its fault from an RNG stream
 * keyed only by (seed, index), and the journal meta records every
 * option that shapes a verdict (fault model, target, geometry, window
 * length, early-termination / HVF / timeout settings). Replaying
 * index i therefore needs nothing beyond the journal and the workload
 * that produced the golden run: rebuild the golden run, check its
 * architectural digest against the journal, re-derive fault i, and
 * run it again — bit-identically, regardless of how many threads the
 * original campaign used.
 *
 * This is the engine behind the marvel-trace tool: a first replay
 * verifies the journaled verdict reproduces exactly, a second replay
 * runs instrumented (event tracing + propagation lineage) to explain
 * it.
 */

#ifndef MARVEL_SCHED_REPLAY_HH
#define MARVEL_SCHED_REPLAY_HH

#include <optional>

#include "fi/campaign.hh"
#include "store/journal.hh"

namespace marvel::sched
{

/** Everything needed to re-run one journaled fault index. */
struct ReplaySetup
{
    fi::TargetRef target;
    fi::FaultMask mask;           ///< re-derived from (seed, index)
                                  ///< under the journaled fault model
    fi::FaultSpec fault;          ///< first fault of `mask` (the whole
                                  ///< mask under the legacy model)
    fi::InjectionOptions options; ///< mirrors the journaled run
};

/**
 * Build the replay setup for fault `index` of the journaled campaign.
 * Validates that the golden run matches the journal (architectural
 * digest, window length, ladder geometry, target geometry) and that
 * the index is in range; fatal() on any mismatch — a replay against
 * the wrong workload or build would silently produce garbage
 * verdicts. Pass `journalPath` when known so every mismatch message
 * names the offending file alongside the expected and found values
 * (a distributed campaign diagnoses these from worker logs).
 */
ReplaySetup replaySetup(const fi::GoldenRun &golden,
                        const store::JournalMeta &meta, u64 index,
                        const std::string &journalPath = "");

/**
 * The journaled verdict for `index`, if any. When a journal holds
 * several records for one index (a resumed run re-appending), the
 * last one wins, matching the merge semantics.
 */
std::optional<fi::RunVerdict> findVerdict(const store::Journal &journal,
                                          u64 index);

/** Field-by-field verdict equality (outcome, detail, HVF, cycles). */
bool verdictsIdentical(const fi::RunVerdict &a, const fi::RunVerdict &b);

} // namespace marvel::sched

#endif // MARVEL_SCHED_REPLAY_HH
