#include "sched/heartbeat.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/log.hh"

namespace marvel::sched
{

namespace
{

/**
 * Parse one flat JSON object with numeric values into key -> double.
 * Tolerant by design: any syntax surprise returns false. Strings are
 * not needed here (the heartbeat is all numbers and a 0/1 flag).
 */
bool
parseNumberObject(const std::string &text,
                  std::map<std::string, double> &out)
{
    std::size_t i = 0;
    auto skipWs = [&]() {
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\t' ||
                text[i] == '\n' || text[i] == '\r'))
            ++i;
    };
    skipWs();
    if (i >= text.size() || text[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < text.size() && text[i] == '}') {
        ++i;
    } else {
        for (;;) {
            skipWs();
            if (i >= text.size() || text[i] != '"')
                return false;
            const std::size_t keyStart = ++i;
            while (i < text.size() && text[i] != '"')
                ++i;
            if (i >= text.size())
                return false;
            const std::string key =
                text.substr(keyStart, i - keyStart);
            ++i;
            skipWs();
            if (i >= text.size() || text[i] != ':')
                return false;
            ++i;
            skipWs();
            errno = 0;
            char *end = nullptr;
            const double value =
                std::strtod(text.c_str() + i, &end);
            if (end == text.c_str() + i || errno != 0)
                return false;
            i = static_cast<std::size_t>(end - text.c_str());
            out[key] = value;
            skipWs();
            if (i < text.size() && text[i] == ',') {
                ++i;
                continue;
            }
            if (i < text.size() && text[i] == '}') {
                ++i;
                break;
            }
            return false;
        }
    }
    skipWs();
    return i == text.size();
}

double
fieldOr(const std::map<std::string, double> &fields, const char *key,
        double fallback)
{
    const auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
}

/**
 * Clamp a rate/ETA figure to something JSON can carry. A zero-elapsed
 * shard (first beat races the clock) divides runs by 0.0 and an
 * instantly-complete shard can produce 0/0: printf would emit "inf" /
 * "nan", which is not JSON — strtod on the read side happily parses
 * it back, so the guard has to live at emission.
 */
double
finiteOrZero(double value)
{
    return std::isfinite(value) ? value : 0.0;
}

} // namespace

std::string
heartbeatPath(const std::string &journalPath)
{
    return journalPath + ".progress";
}

std::string
heartbeatJson(const Heartbeat &beat)
{
    return strfmt(
        "{\"v\":1,\"done\":%llu,\"expected\":%llu,"
        "\"masked\":%llu,\"sdc\":%llu,\"crash\":%llu,"
        "\"pruned\":%llu,\"masked_in_accel\":%llu,"
        "\"early_stops\":%llu,"
        "\"runs_per_sec\":%.3f,\"avf\":%.6f,\"margin\":%.6f,"
        "\"eta_seconds\":%.1f,\"wall_millis\":%llu,"
        "\"complete\":%d}\n",
        static_cast<unsigned long long>(beat.done),
        static_cast<unsigned long long>(beat.expected),
        static_cast<unsigned long long>(beat.masked),
        static_cast<unsigned long long>(beat.sdc),
        static_cast<unsigned long long>(beat.crash),
        static_cast<unsigned long long>(beat.pruned),
        static_cast<unsigned long long>(beat.maskedInAccel),
        static_cast<unsigned long long>(beat.earlyStops),
        finiteOrZero(beat.runsPerSec), finiteOrZero(beat.avf),
        finiteOrZero(beat.margin), finiteOrZero(beat.etaSeconds),
        static_cast<unsigned long long>(beat.wallMillis),
        beat.complete ? 1 : 0);
}

void
writeHeartbeat(const std::string &path, const Heartbeat &beat)
{
    const std::string body = heartbeatJson(beat);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("heartbeat: cannot write '%s': %s", tmp.c_str(),
              std::strerror(errno));
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        fatal("heartbeat: short write to '%s'", tmp.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("heartbeat: rename '%s' -> '%s' failed: %s",
              tmp.c_str(), path.c_str(), std::strerror(errno));
}

bool
parseHeartbeatJson(const std::string &text, Heartbeat &out)
{
    std::map<std::string, double> fields;
    if (!parseNumberObject(text, fields))
        return false;
    if (fields.find("done") == fields.end() ||
        fields.find("expected") == fields.end())
        return false;

    Heartbeat beat;
    beat.done = static_cast<u64>(fieldOr(fields, "done", 0));
    beat.expected = static_cast<u64>(fieldOr(fields, "expected", 0));
    beat.masked = static_cast<u64>(fieldOr(fields, "masked", 0));
    beat.sdc = static_cast<u64>(fieldOr(fields, "sdc", 0));
    beat.crash = static_cast<u64>(fieldOr(fields, "crash", 0));
    beat.pruned = static_cast<u64>(fieldOr(fields, "pruned", 0));
    beat.maskedInAccel =
        static_cast<u64>(fieldOr(fields, "masked_in_accel", 0));
    beat.earlyStops =
        static_cast<u64>(fieldOr(fields, "early_stops", 0));
    beat.runsPerSec = fieldOr(fields, "runs_per_sec", 0.0);
    beat.avf = fieldOr(fields, "avf", 0.0);
    beat.margin = fieldOr(fields, "margin", 1.0);
    beat.etaSeconds = fieldOr(fields, "eta_seconds", 0.0);
    beat.wallMillis =
        static_cast<u64>(fieldOr(fields, "wall_millis", 0));
    beat.complete = fieldOr(fields, "complete", 0.0) != 0.0;
    out = beat;
    return true;
}

bool
readHeartbeat(const std::string &path, Heartbeat &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[512];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parseHeartbeatJson(text, out);
}

Heartbeat
aggregateHeartbeats(const std::vector<Heartbeat> &beats)
{
    Heartbeat agg;
    if (beats.empty())
        return agg;
    agg.complete = true;
    for (const Heartbeat &b : beats) {
        agg.done += b.done;
        agg.expected += b.expected;
        agg.masked += b.masked;
        agg.sdc += b.sdc;
        agg.crash += b.crash;
        agg.pruned += b.pruned;
        agg.maskedInAccel += b.maskedInAccel;
        agg.earlyStops += b.earlyStops;
        // Shards run concurrently, so rates add; a shard carrying a
        // non-finite rate (hand-edited file, historic writer) must
        // not poison the whole campaign line.
        agg.runsPerSec += finiteOrZero(b.runsPerSec);
        agg.wallMillis = std::max(agg.wallMillis, b.wallMillis);
        agg.complete = agg.complete && b.complete;
    }
    const u64 vulnerable = agg.sdc + agg.crash;
    agg.avf = agg.done ? static_cast<double>(vulnerable) /
                             static_cast<double>(agg.done)
                       : 0.0;
    // Binomial 95% half-width over the combined sample; the finite-
    // population correction the per-shard margins carry is < 1e-3
    // for any realistic fault population, so dropping it here keeps
    // the aggregate honest without re-reading every journal.
    agg.margin = agg.done
                     ? 1.96 * std::sqrt(agg.avf * (1.0 - agg.avf) /
                                        static_cast<double>(agg.done))
                     : 1.0;
    if (!agg.complete && agg.runsPerSec > 0 &&
        agg.expected > agg.done)
        agg.etaSeconds =
            static_cast<double>(agg.expected - agg.done) /
            agg.runsPerSec;
    return agg;
}

std::string
formatHeartbeat(const Heartbeat &beat)
{
    std::string eta;
    if (beat.complete)
        eta = "done";
    else if (beat.etaSeconds <= 0)
        eta = "eta ?";
    else if (beat.etaSeconds >= 3600)
        eta = strfmt("eta %.1fh", beat.etaSeconds / 3600.0);
    else if (beat.etaSeconds >= 60)
        eta = strfmt("eta %.1fm", beat.etaSeconds / 60.0);
    else
        eta = strfmt("eta %.0fs", beat.etaSeconds);
    std::string prunedNote;
    if (beat.pruned)
        prunedNote = strfmt(
            "  pruned %llu",
            static_cast<unsigned long long>(beat.pruned));
    if (beat.maskedInAccel)
        prunedNote += strfmt(
            "  in-accel %llu",
            static_cast<unsigned long long>(beat.maskedInAccel));
    if (beat.earlyStops)
        prunedNote += strfmt(
            "  stops %llu",
            static_cast<unsigned long long>(beat.earlyStops));
    return strfmt(
        "%llu/%llu (%5.1f%%)  m/s/c %llu/%llu/%llu%s  "
        "AVF %.2f%% +/-%.2f%%  %.1f runs/s  %s",
        static_cast<unsigned long long>(beat.done),
        static_cast<unsigned long long>(beat.expected),
        beat.fractionDone() * 100.0,
        static_cast<unsigned long long>(beat.masked),
        static_cast<unsigned long long>(beat.sdc),
        static_cast<unsigned long long>(beat.crash),
        prunedNote.c_str(), beat.avf * 100.0,
        beat.margin * 100.0, beat.runsPerSec, eta.c_str());
}

} // namespace marvel::sched
