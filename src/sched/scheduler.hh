/**
 * @file
 * Resumable, sharded campaign scheduler.
 *
 * sched::runCampaign is the persistent superset of
 * fi::runCampaignOnGolden: the same per-index RNG streams and verdict
 * classification, dispatched from an atomic work queue, but with the
 * campaign's progress durably journaled (store/journal.hh) so a
 * killed process picks up where the journal ends.
 *
 * Orchestration model:
 *  - A campaign of N faults is the index set {0..N-1}. Shard s of S
 *    owns the indices congruent to s mod S, so any number of
 *    processes (or hosts sharing a filesystem namespace per shard
 *    journal) can split one campaign without coordination.
 *  - Every completed verdict is appended to the shard's journal and
 *    fsync'd in chunks; the journal IS the scheduler's checkpoint.
 *  - On resume, the journal's meta record is validated against the
 *    recomputed golden run (seed, sample size, model, target,
 *    arch-state digest) — a mismatched journal fatal()s rather than
 *    silently mixing incompatible samples — then only the fault
 *    indices with no journaled verdict are enqueued. Because fault
 *    i's RNG stream depends only on (seed, i), a resumed campaign is
 *    bit-identical to an uninterrupted one.
 *  - sched::mergeJournals folds the shard journals back into one
 *    CampaignResult, verifying the shards belong to the same
 *    campaign and partition the index set exactly.
 */

#ifndef MARVEL_SCHED_SCHEDULER_HH
#define MARVEL_SCHED_SCHEDULER_HH

#include <string>
#include <vector>

#include "fi/campaign.hh"
#include "store/journal.hh"

namespace marvel::sched
{

/**
 * Run (or resume) one shard of a campaign against a precomputed
 * golden run, honouring the persistence fields of CampaignOptions.
 * With an empty journalPath this is a pure in-memory run of the
 * shard. The returned result covers only this shard's indices when
 * shardCount > 1 (merge the shard journals for campaign totals).
 */
fi::CampaignResult runCampaign(const fi::GoldenRun &golden,
                               const fi::TargetRef &target,
                               const fi::CampaignOptions &options);

/** The journal meta sched::runCampaign would write for a campaign. */
store::JournalMeta journalMetaFor(const fi::GoldenRun &golden,
                                  const fi::TargetInfo &info,
                                  const fi::CampaignOptions &options);

/**
 * Run (or prune) ONE campaign fault index, exactly as the campaign
 * worker loop does: derive the fault from the (seed, index) RNG
 * stream, consult the prune profile when one is supplied, and
 * otherwise simulate through fi::runWithFault. This is the unit of
 * work the distributed dispatch path (src/net) executes per leased
 * index — sharing this function with the in-process scheduler is what
 * makes a distributed campaign verdict-identical by construction.
 */
fi::RunVerdict runFaultIndex(const fi::GoldenRun &golden,
                             const fi::TargetRef &target,
                             const fi::TargetGeometry &geometry,
                             u64 seed, u64 index,
                             const fi::FaultSampler &sampler,
                             const fi::InjectionOptions &runOpts,
                             const fi::TargetProfile &profile);

/** Legacy-model convenience: a Single-kind sampler over `model`. */
fi::RunVerdict runFaultIndex(const fi::GoldenRun &golden,
                             const fi::TargetRef &target,
                             const fi::TargetGeometry &geometry,
                             u64 seed, u64 index,
                             fi::FaultModel model,
                             const fi::InjectionOptions &runOpts,
                             const fi::TargetProfile &profile);

/**
 * Build the execution provenance for one completed run: maps the
 * verdict's fast-forward cycle back to the golden ladder rung that was
 * restored (0 = window start, 1 + i = rung i — the same slot scheme
 * the telemetry rung histogram uses) and flags pruned verdicts. The
 * scheduler worker loop and the distributed worker both record
 * provenance through this one function so live journals agree on the
 * field semantics regardless of which path produced them.
 */
store::VerdictProvenance runProvenance(const fi::GoldenRun &golden,
                                       const fi::RunVerdict &verdict,
                                       u64 wallMicros);

/**
 * fatal() unless `journal` (read from `path`) records the same
 * campaign identity as `expected`: target, model, fault-model spec
 * (absent = legacy single-bit), seed, sample size, shard, golden
 * digest/window, and every verdict-shaping run option
 * (early termination, HVF, timeout, ladder geometry, pruning). Every
 * mismatch message names the field, the journal's value, the expected
 * value, and the offending file — a distributed campaign surfaces
 * these from worker logs, where "wrong campaign" alone is useless.
 */
void checkJournalMatches(const store::JournalMeta &journal,
                         const store::JournalMeta &expected,
                         const std::string &path);

/** Progress of one shard journal, for status displays. */
struct ShardProgress
{
    store::JournalMeta meta;
    fi::CampaignResult partial; ///< counts of the journaled verdicts
    u64 done = 0;               ///< distinct fault indices completed
    u64 expected = 0;           ///< indices this shard owns
    u64 chunksCommitted = 0;
    bool tornTail = false;

    bool complete() const { return done == expected; }
};

/** Read a shard journal and aggregate its progress. */
ShardProgress shardProgress(const std::string &journalPath);

/**
 * Merge shard journals into one campaign-wide CampaignResult.
 * Verifies every journal shares the campaign identity (seed, faults,
 * model, target, golden digest, shard count) and that together the
 * shards cover every fault index exactly once; fatal() on overlap,
 * holes, or identity mismatch.
 */
fi::CampaignResult mergeJournals(
    const std::vector<std::string> &journalPaths);

/** Number of fault indices owned by shard `index` of `count`. */
constexpr u64
shardShare(u64 numFaults, u32 index, u32 count)
{
    return numFaults / count + (numFaults % count > index ? 1 : 0);
}

} // namespace marvel::sched

#endif // MARVEL_SCHED_SCHEDULER_HH
