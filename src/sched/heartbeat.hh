/**
 * @file
 * Live campaign progress heartbeat.
 *
 * A long campaign is opaque from the outside: the journal grows, but
 * summing its verdict mix means re-parsing the whole JSONL file. The
 * scheduler instead drops a tiny single-object JSON heartbeat next to
 * the journal (<journal>.progress) at a fixed cadence, replacing it
 * atomically (write-to-temp + rename) so a concurrent reader never
 * observes a torn file. `marvel-campaign status --follow` tails it.
 *
 * The record is intentionally self-contained — done/expected, the
 * verdict mix, the throughput of this process, the achieved Leveugle
 * margin, and an ETA — so a dashboard can render progress without
 * touching the journal at all.
 */

#ifndef MARVEL_SCHED_HEARTBEAT_HH
#define MARVEL_SCHED_HEARTBEAT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel::sched
{

/** One progress sample of a running (or finished) campaign shard. */
struct Heartbeat
{
    u64 done = 0;     ///< verdicts journaled (incl. resumed ones)
    u64 expected = 0; ///< fault indices this shard owns
    u64 masked = 0;
    u64 sdc = 0;
    u64 crash = 0;
    u64 pruned = 0;          ///< subset of masked, never simulated
    u64 maskedInAccel = 0;   ///< subset of masked, accel-contained
    u64 earlyStops = 0;      ///< runs ended by rung convergence
                             ///< (this process only, not resumed)
    double runsPerSec = 0.0; ///< throughput of this process
    double avf = 0.0;        ///< partial AVF over the done runs
    double margin = 1.0;     ///< achieved Leveugle ±margin (95% CI)
    double etaSeconds = 0.0; ///< 0 when unknown or complete
    u64 wallMillis = 0;      ///< campaign wall time so far
    bool complete = false;   ///< shard has every owned verdict

    double
    fractionDone() const
    {
        return expected ? static_cast<double>(done) /
                              static_cast<double>(expected)
                        : 0.0;
    }
};

/** Where the heartbeat for a journal lives: `<journal>.progress`. */
std::string heartbeatPath(const std::string &journalPath);

/**
 * Atomically replace `path` with one JSON object describing `beat`.
 * Writes `path + ".tmp"` then rename()s it into place; fatal() only
 * on filesystem errors.
 */
void writeHeartbeat(const std::string &path, const Heartbeat &beat);

/**
 * Read a heartbeat back. Returns false (leaving `out` untouched) when
 * the file is missing or malformed — a torn or stale file is a normal
 * race with the writer, not an error.
 */
bool readHeartbeat(const std::string &path, Heartbeat &out);

/**
 * The heartbeat rendered as its one-line JSON object (newline
 * terminated) — the exact bytes writeHeartbeat puts in the file, also
 * streamed verbatim to status watchers over the dispatch socket.
 */
std::string heartbeatJson(const Heartbeat &beat);

/** Parse heartbeatJson() output; false on malformed text. */
bool parseHeartbeatJson(const std::string &text, Heartbeat &out);

/**
 * Fold per-worker/per-shard heartbeats into one campaign-wide view:
 * done/expected and the verdict mix sum; throughput sums (the shards
 * run concurrently); the AVF is recomputed from the summed counts;
 * the ETA is the remaining work over the combined rate — i.e. when
 * the campaign as a whole finishes, not when the slowest file says
 * its own shard does. The margin is re-derived from the summed
 * sample with the binomial half of the Leveugle formula (the
 * population-size correction needs the journal, which a heartbeat
 * deliberately avoids reading; for campaign-sized populations the
 * correction is negligible).
 */
Heartbeat aggregateHeartbeats(const std::vector<Heartbeat> &beats);

/** One human-readable progress line (no trailing newline). */
std::string formatHeartbeat(const Heartbeat &beat);

} // namespace marvel::sched

#endif // MARVEL_SCHED_HEARTBEAT_HH
