#include "sched/replay.hh"

#include "common/log.hh"
#include "soc/checkpoint.hh"

namespace marvel::sched
{

namespace
{

fi::FaultModel
modelFromName(const std::string &name)
{
    using fi::FaultModel;
    for (int i = 0; i <= static_cast<int>(FaultModel::StuckAt1); ++i) {
        const FaultModel m = static_cast<FaultModel>(i);
        if (name == fi::faultModelName(m))
            return m;
    }
    fatal("replay: journal names unknown fault model '%s'",
          name.c_str());
}

} // namespace

ReplaySetup
replaySetup(const fi::GoldenRun &golden,
            const store::JournalMeta &meta, u64 index,
            const std::string &journalPath)
{
    // Mismatch messages must be actionable from a remote worker's
    // log alone: name the journal file when the caller knows it, and
    // always print both the found and the expected value.
    const std::string journalDesc =
        journalPath.empty() ? std::string("the journal")
                            : "journal '" + journalPath + "'";
    const char *journalName = journalDesc.c_str();
    if (index >= meta.numFaults)
        fatal("replay: fault index %llu out of range (%s records a "
              "campaign of %llu faults)",
              static_cast<unsigned long long>(index), journalName,
              static_cast<unsigned long long>(meta.numFaults));

    const u64 digest = soc::archStateDigest(golden.checkpoint.view());
    if (digest != meta.goldenDigest)
        fatal("replay: golden-run digest is %016llx, but %s expects "
              "%016llx — wrong workload, system config, or simulator "
              "build",
              static_cast<unsigned long long>(digest), journalName,
              static_cast<unsigned long long>(meta.goldenDigest));
    if (golden.windowCycles != meta.windowCycles)
        fatal("replay: golden injection window is %llu cycles, but "
              "%s expects %llu",
              static_cast<unsigned long long>(golden.windowCycles),
              journalName,
              static_cast<unsigned long long>(meta.windowCycles));
    // Same pattern as the digest/window checks above: the journal
    // names the ladder geometry its campaign ran with, and a golden
    // rebuilt with a different rung count means the caller's run
    // options disagree with the journal (pruning decisions and rung
    // telemetry would silently diverge).
    if (golden.ladder.size() != meta.ladderRungs)
        fatal("replay: golden checkpoint ladder has %zu rung(s), but "
              "%s was recorded with %u — rebuild the golden with the "
              "journal's ladder geometry (--ladder %u)",
              golden.ladder.size(), journalName, meta.ladderRungs,
              meta.ladderRungs);

    ReplaySetup setup;
    setup.target =
        fi::targetByName(golden.checkpoint.view(), meta.target);
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), setup.target);
    if (info.geometry.entries != meta.entries ||
        info.geometry.bitsPerEntry != meta.bitsPerEntry)
        fatal("replay: target '%s' geometry is %ux%u, but %s expects "
              "%ux%u",
              meta.target.c_str(), info.geometry.entries,
              info.geometry.bitsPerEntry, journalName, meta.entries,
              meta.bitsPerEntry);

    // Identical derivation to the campaign worker: the fault mask for
    // index i is a pure function of (seed, i) plus the geometry and
    // fault-model spec the journal just vouched for. An absent spec
    // is the legacy single-bit draw.
    const fi::FaultSampler sampler =
        fi::makeSampler(golden, modelFromName(meta.model),
                        fi::FaultModelSpec::parse(meta.faultModel));
    Rng rng = Rng::forStream(meta.seed, index);
    setup.mask = sampler.sample(rng, setup.target, info.geometry,
                                meta.windowCycles);
    setup.fault = setup.mask.faults.front();

    setup.options.earlyTermination = meta.optEarlyTerm != 0;
    setup.options.computeHvf = meta.optHvf != 0;
    setup.options.timeoutFactor =
        static_cast<double>(meta.timeoutFactorMilli) / 1000.0;
    // The journal records the RESOLVED early-stop mode; replay runs
    // the same configuration so provenance fields reproduce too.
    setup.options.earlyStop = meta.optEarlyStop
                                  ? fi::EarlyStopMode::On
                                  : fi::EarlyStopMode::Off;
    return setup;
}

std::optional<fi::RunVerdict>
findVerdict(const store::Journal &journal, u64 index)
{
    std::optional<fi::RunVerdict> found;
    for (const store::JournalVerdict &record : journal.verdicts)
        if (record.idx == index)
            found = record.verdict;
    return found;
}

bool
verdictsIdentical(const fi::RunVerdict &a, const fi::RunVerdict &b)
{
    return a.outcome == b.outcome && a.detail == b.detail &&
           a.hvfCorruption == b.hvfCorruption &&
           a.hvfCorruptCycle == b.hvfCorruptCycle &&
           a.terminatedEarly == b.terminatedEarly &&
           a.cyclesRun == b.cyclesRun;
}

} // namespace marvel::sched
