#include "sched/scheduler.hh"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "common/version.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "sched/heartbeat.hh"
#include "sched/workqueue.hh"
#include "soc/checkpoint.hh"

namespace marvel::sched
{

namespace
{

/** Fault indices owned by this shard, in ascending order. */
std::vector<u64>
ownedIndices(u64 numFaults, u32 shardIndex, u32 shardCount)
{
    std::vector<u64> owned;
    owned.reserve(static_cast<std::size_t>(
        shardShare(numFaults, shardIndex, shardCount)));
    for (u64 i = shardIndex; i < numFaults; i += shardCount)
        owned.push_back(i);
    return owned;
}

/** Build a result shell (identity fields, no counts) from a meta. */
fi::CampaignResult
resultShellFromMeta(const store::JournalMeta &meta)
{
    fi::CampaignResult result;
    result.target.name = meta.target;
    result.target.geometry.entries = meta.entries;
    result.target.geometry.bitsPerEntry = meta.bitsPerEntry;
    result.goldenCycles = meta.goldenCycles;
    result.windowCycles = meta.windowCycles;
    result.workload = meta.workload;
    return result;
}

} // namespace

/**
 * A journal is only a valid continuation of a campaign when its
 * identity matches what we would start today; anything else means
 * the caller pointed resume at the wrong file (or changed the
 * campaign parameters underneath it).
 */
void
checkJournalMatches(const store::JournalMeta &journal,
                    const store::JournalMeta &expected,
                    const std::string &path)
{
    auto mismatch = [&](const char *field, const std::string &have,
                        const std::string &want) {
        fatal("sched: journal '%s' was recorded for a different "
              "campaign: %s is %s, expected %s",
              path.c_str(), field, have.c_str(), want.c_str());
    };
    auto checkU64 = [&](const char *field, u64 have, u64 want) {
        if (have != want)
            mismatch(field, strfmt("%llu", (unsigned long long)have),
                     strfmt("%llu", (unsigned long long)want));
    };
    // Digests print in hex everywhere else (golden-run banner, blob
    // errors) — keep this message correlatable with those.
    auto checkHex = [&](const char *field, u64 have, u64 want) {
        if (have != want)
            mismatch(field, strfmt("%016llx", (unsigned long long)have),
                     strfmt("%016llx", (unsigned long long)want));
    };
    if (journal.target != expected.target)
        mismatch("target", journal.target, expected.target);
    // Geometry is part of the fault-sampling function — index i maps
    // to (entry, bit) through entries x bitsPerEntry — so a mismatch
    // silently re-maps every fault the journal records. Spell out
    // both shapes and the file so a mis-launched worker's log line
    // alone is enough to diagnose which side is wrong.
    if (journal.entries != expected.entries ||
        journal.bitsPerEntry != expected.bitsPerEntry)
        fatal("sched: journal '%s' was recorded against a %ux%u "
              "'%s', but this run's target is %ux%u — its fault "
              "indices would map to different bits (rebuild the "
              "system the journal was captured on, or start a fresh "
              "journal)",
              path.c_str(), journal.entries, journal.bitsPerEntry,
              journal.target.c_str(), expected.entries,
              expected.bitsPerEntry);
    if (journal.model != expected.model)
        mismatch("model", journal.model, expected.model);
    // The fault-model spec decides how each fault index expands into a
    // fault mask, so mixing specs silently re-maps every recorded
    // verdict. An empty spec is the legacy uniform single-bit draw —
    // render it as such so "journal written by an old build" reads
    // clearly from the message.
    if (journal.faultModel != expected.faultModel) {
        auto render = [](const std::string &s) {
            return s.empty() ? std::string("single (legacy)") : s;
        };
        fatal("sched: journal '%s' was recorded under fault model "
              "'%s', but this run uses '%s' — the same fault indices "
              "would expand to different fault masks (pass "
              "--fault-model to match the journal, or start a fresh "
              "one)",
              path.c_str(), render(journal.faultModel).c_str(),
              render(expected.faultModel).c_str());
    }
    checkU64("seed", journal.seed, expected.seed);
    checkU64("faults", journal.numFaults, expected.numFaults);
    checkU64("shard", journal.shardIndex, expected.shardIndex);
    checkU64("shards", journal.shardCount, expected.shardCount);
    checkHex("goldenDigest", journal.goldenDigest,
             expected.goldenDigest);
    checkU64("windowCycles", journal.windowCycles,
             expected.windowCycles);
    // The workload name is informational; only flag it when both
    // sides actually recorded one.
    if (!journal.workload.empty() && !expected.workload.empty() &&
        journal.workload != expected.workload)
        mismatch("workload", journal.workload, expected.workload);
    // Run options change verdicts (cycles run, HVF fields), so a
    // resume must not silently mix them. Journals written before
    // these fields existed read back as the historical defaults.
    checkU64("earlyTerm", journal.optEarlyTerm,
             expected.optEarlyTerm);
    checkU64("hvf", journal.optHvf, expected.optHvf);
    checkU64("timeoutFactorMilli", journal.timeoutFactorMilli,
             expected.timeoutFactorMilli);
    // Ladder geometry is campaign identity (resume/replay rebuild the
    // golden with the same rung count), and pruning changes verdict
    // details; whether runs fast-forward from the rungs is neither
    // recorded nor checked — it cannot change a verdict. Both get
    // dedicated messages: in a distributed campaign these are the
    // mismatches a mis-launched worker actually hits, and the log
    // line must carry everything needed to fix the launch — both
    // values and the offending file.
    if (journal.ladderRungs != expected.ladderRungs)
        fatal("sched: journal '%s' was recorded with a checkpoint "
              "ladder of %u rung(s), but this run would use %u — "
              "rebuild the golden with the journal's ladder geometry "
              "(--ladder %u)",
              path.c_str(), journal.ladderRungs,
              expected.ladderRungs, journal.ladderRungs);
    if (journal.optPrune != expected.optPrune)
        fatal("sched: journal '%s' was recorded with dead-fault "
              "pre-pruning %s, but this run has it %s — pass %s to "
              "match the journal",
              path.c_str(), journal.optPrune ? "on" : "off",
              expected.optPrune ? "on" : "off",
              journal.optPrune ? "--prune" : "no --prune");
    // Early-stop cannot change a verdict by construction (the
    // equivalence battery pins that), but mixing modes inside one
    // journal would make its provenance and metrics unreadable — and
    // if the invariant ever breaks, silently mixing would smear the
    // breakage across the file. Journals from before the field read
    // back as off.
    if (journal.optEarlyStop != expected.optEarlyStop)
        fatal("sched: journal '%s' was recorded with convergence "
              "early-stop %s, but this run resolves it %s — pass "
              "--early-stop %s to match the journal",
              path.c_str(), journal.optEarlyStop ? "on" : "off",
              expected.optEarlyStop ? "on" : "off",
              journal.optEarlyStop ? "on" : "off");
}

store::VerdictProvenance
runProvenance(const fi::GoldenRun &golden,
              const fi::RunVerdict &verdict, u64 wallMicros)
{
    store::VerdictProvenance prov;
    prov.present = true;
    prov.wallMicros = wallMicros;
    prov.fastForwarded = verdict.fastForwarded;
    prov.pruned = (verdict.detail == fi::OutcomeDetail::MaskedPruned &&
                   verdict.cyclesRun == 0)
                      ? 1
                      : 0;
    // fastForwarded carries the restored rung's cycle; recover the
    // rung index from the golden ladder (0 stays "window start").
    if (verdict.fastForwarded != 0) {
        for (std::size_t i = 0; i < golden.ladder.size(); ++i) {
            if (golden.ladder[i].cycle == verdict.fastForwarded) {
                prov.rung = static_cast<u32>(i + 1);
                break;
            }
        }
    }
    // stoppedAt carries the converged rung's cycle; same recovery,
    // same encoding (0 stays "ran the full window").
    if (verdict.stoppedAt != 0) {
        for (std::size_t i = 0; i < golden.ladder.size(); ++i) {
            if (golden.ladder[i].cycle == verdict.stoppedAt) {
                prov.stoppedRung = static_cast<u32>(i + 1);
                break;
            }
        }
    }
    prov.divergedAt = verdict.divergedAt;
    return prov;
}

fi::RunVerdict
runFaultIndex(const fi::GoldenRun &golden,
              const fi::TargetRef &target,
              const fi::TargetGeometry &geometry, u64 seed,
              u64 index, const fi::FaultSampler &sampler,
              const fi::InjectionOptions &runOpts,
              const fi::TargetProfile &profile)
{
    Rng rng = Rng::forStream(seed, index);
    const fi::FaultMask mask =
        sampler.sample(rng, target, geometry, golden.windowCycles);
    if (profile.valid() && profile.prunable(mask))
        return fi::prunedVerdict();
    return fi::runWithFault(golden, mask, runOpts);
}

fi::RunVerdict
runFaultIndex(const fi::GoldenRun &golden,
              const fi::TargetRef &target,
              const fi::TargetGeometry &geometry, u64 seed,
              u64 index, fi::FaultModel model,
              const fi::InjectionOptions &runOpts,
              const fi::TargetProfile &profile)
{
    fi::FaultSampler sampler;
    sampler.base = model;
    return runFaultIndex(golden, target, geometry, seed, index,
                         sampler, runOpts, profile);
}

store::JournalMeta
journalMetaFor(const fi::GoldenRun &golden,
               const fi::TargetInfo &info,
               const fi::CampaignOptions &options)
{
    store::JournalMeta meta;
    meta.workload = options.workloadName;
    meta.target = info.name;
    meta.model = fi::faultModelName(options.model);
    // Canonical spec string; empty for the legacy single-bit model,
    // which keeps legacy journals byte-identical (the meta line omits
    // the field entirely when empty).
    meta.faultModel = options.modelSpec.toString();
    meta.seed = options.seed;
    meta.numFaults = options.numFaults;
    meta.shardIndex = options.shardIndex;
    meta.shardCount = options.shardCount;
    meta.goldenDigest =
        soc::archStateDigest(golden.checkpoint.view());
    meta.goldenCycles = golden.totalCycles;
    meta.windowCycles = golden.windowCycles;
    meta.entries = info.geometry.entries;
    meta.bitsPerEntry = info.geometry.bitsPerEntry;
    meta.marvelVersion = kVersionString;
    meta.optEarlyTerm = options.earlyTermination ? 1 : 0;
    meta.optHvf = options.computeHvf ? 1 : 0;
    meta.timeoutFactorMilli =
        static_cast<u64>(options.timeoutFactor * 1000.0 + 0.5);
    // Record the ladder the golden actually carries, not the
    // requested rung count: kLadderAuto and degenerate windows both
    // resolve during capture, and resume must rebuild this geometry.
    meta.ladderRungs = static_cast<u32>(golden.ladder.size());
    meta.optPrune = options.prune ? 1 : 0;
    // Record the RESOLVED early-stop mode: `auto` settles against the
    // golden's ladder here, so resume/replay see a concrete on/off.
    meta.optEarlyStop =
        fi::resolveEarlyStop(options.earlyStop, golden) ==
                fi::EarlyStopMode::Off
            ? 0
            : 1;
    return meta;
}

fi::CampaignResult
runCampaign(const fi::GoldenRun &golden, const fi::TargetRef &target,
            const fi::CampaignOptions &options)
{
    if (options.shardCount == 0)
        fatal("sched: shardCount must be at least 1");
    if (options.shardIndex >= options.shardCount)
        fatal("sched: shard index %u out of range (0..%u)",
              options.shardIndex, options.shardCount - 1);
    if (options.resume && options.journalPath.empty())
        fatal("sched: resume requires a journal path");

    fi::CampaignResult result;
    result.target = fi::targetInfo(golden.checkpoint.view(), target);
    result.goldenCycles = golden.totalCycles;
    result.windowCycles = golden.windowCycles;
    result.workload = options.workloadName;
    if (options.keepVerdicts)
        result.verdicts.resize(options.numFaults);

    const store::JournalMeta meta =
        journalMetaFor(golden, result.target, options);
    const std::vector<u64> owned = ownedIndices(
        options.numFaults, options.shardIndex, options.shardCount);

    std::vector<u8> done(options.numFaults, 0);
    store::JournalWriter writer;
    if (!options.journalPath.empty()) {
        const unsigned chunkSize =
            options.chunkSize ? options.chunkSize : 1;
        if (options.resume &&
            store::journalExists(options.journalPath)) {
            const store::Journal journal =
                store::readJournal(options.journalPath);
            checkJournalMatches(journal.meta, meta,
                                options.journalPath);
            for (const store::JournalVerdict &jv :
                 journal.verdicts) {
                if (jv.idx >= options.numFaults ||
                    jv.idx % options.shardCount !=
                        options.shardIndex)
                    fatal("sched: journal '%s' holds verdict for "
                          "fault %llu, which shard %u/%u does not "
                          "own", options.journalPath.c_str(),
                          static_cast<unsigned long long>(jv.idx),
                          options.shardIndex, options.shardCount);
                if (done[jv.idx])
                    continue;
                done[jv.idx] = 1;
                result.tally(jv.verdict);
                if (options.keepVerdicts)
                    result.verdicts[jv.idx] = jv.verdict;
            }
            writer.resume(options.journalPath, journal.validBytes,
                          chunkSize);
        } else {
            writer.create(options.journalPath, meta, chunkSize);
        }
    }

    std::vector<u64> pending;
    pending.reserve(owned.size());
    for (u64 i : owned)
        if (!done[i])
            pending.push_back(i);

    fi::InjectionOptions runOpts;
    runOpts.earlyTermination = options.earlyTermination;
    runOpts.computeHvf = options.computeHvf;
    runOpts.timeoutFactor = options.timeoutFactor;
    runOpts.useLadder = options.useLadder;
    runOpts.earlyStop = fi::resolveEarlyStop(options.earlyStop, golden);

    // The sampler binds the fault-model spec once (resolving any pc
    // filter against a golden replay) so every leased index expands
    // through the same deterministic function.
    const fi::FaultSampler sampler =
        fi::makeSampler(golden, options.model, options.modelSpec);

    // One golden-window access profile amortized over every pruned
    // fault; only the transient model can prune.
    fi::TargetProfile profile;
    if (options.prune && !pending.empty() &&
        options.model == fi::FaultModel::Transient)
        profile = fi::profileTargetAccesses(golden, target);

    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(
        threads, pending.empty() ? 1 : pending.size());

    obs::CampaignTelemetry *telemetry = options.telemetry;
    if (telemetry) {
        *telemetry = obs::CampaignTelemetry{};
        telemetry->workers.resize(threads);
        if (!golden.ladder.empty())
            telemetry->rungHits.assign(golden.ladder.size() + 1, 0);
    }
    // verdict.fastForwarded is the restored rung's cycle; map it back
    // to a histogram slot (0 = window start, 1 + i = rung i).
    auto rungSlot = [&](Cycle fastForwarded) -> std::size_t {
        if (fastForwarded == 0)
            return 0;
        for (std::size_t i = 0; i < golden.ladder.size(); ++i)
            if (golden.ladder[i].cycle == fastForwarded)
                return i + 1;
        return 0;
    };
    using Clock = std::chrono::steady_clock;
    const auto campaignStart = Clock::now();
    auto secondsSince = [](Clock::time_point t0) {
        return std::chrono::duration<double>(Clock::now() - t0)
            .count();
    };
    // Profiler totals are process-wide; a start snapshot turns the
    // end-of-campaign reading into this campaign's own phase split.
    const obs::profiler::Totals profStart =
        obs::profiler::snapshot();

    // Live progress heartbeat: verdict counts accumulate in a light
    // shell (no kept verdicts) under mergeMutex, and a compact JSON
    // record is atomically rewritten next to the journal at the
    // configured cadence. Resumed verdicts count as done but are
    // excluded from the throughput/ETA estimate.
    const bool heartbeatOn = !options.journalPath.empty() &&
                             options.heartbeatSeconds > 0;
    const std::string beatPath =
        heartbeatPath(options.journalPath);
    fi::CampaignResult beatAgg;
    beatAgg.target = result.target;
    beatAgg.windowCycles = result.windowCycles;
    beatAgg.addCounts(result);
    const u64 beatExpected = owned.size();
    const u64 beatResumed = beatAgg.total();
    u64 beatStops = 0; // stops are this-process telemetry: resumed
                       // verdicts carry no stoppedAt
    auto lastBeat = campaignStart;
    auto writeBeat = [&]() {
        Heartbeat beat;
        beat.done = beatAgg.total();
        beat.expected = beatExpected;
        beat.masked = beatAgg.masked;
        beat.sdc = beatAgg.sdc;
        beat.crash = beatAgg.crash;
        beat.pruned = beatAgg.pruned;
        beat.maskedInAccel = beatAgg.maskedInAccel;
        beat.earlyStops = beatStops;
        const double wall = secondsSince(campaignStart);
        const u64 ranHere = beat.done - beatResumed;
        beat.runsPerSec =
            wall > 0 ? static_cast<double>(ranHere) / wall : 0.0;
        beat.avf = beatAgg.avf();
        beat.margin = beatAgg.errorMargin();
        beat.complete = beat.done >= beatExpected;
        if (!beat.complete && beat.runsPerSec > 0)
            beat.etaSeconds =
                static_cast<double>(beatExpected - beat.done) /
                beat.runsPerSec;
        beat.wallMillis = static_cast<u64>(wall * 1000.0);
        writeHeartbeat(beatPath, beat);
    };
    if (heartbeatOn)
        writeBeat(); // visible immediately, even before run #1

    WorkQueue queue(pending.size());
    std::mutex mergeMutex;
    auto worker = [&](unsigned workerIdx) {
        fi::CampaignResult local;
        obs::WorkerTelemetry localTelemetry;
        u64 localEarly = 0;
        u64 localSaved = 0;
        u64 localPruned = 0;
        u64 localFastForwarded = 0;
        u64 localStops = 0;
        std::vector<u64> localRungHits(
            telemetry ? telemetry->rungHits.size() : 0, 0);
        std::vector<std::pair<u64, fi::RunVerdict>> kept;
        while (const auto slot = queue.next()) {
            const u64 i = pending[*slot];
            const auto runStart = Clock::now();
            const fi::RunVerdict verdict = runFaultIndex(
                golden, target, result.target.geometry,
                options.seed, i, sampler, runOpts, profile);
            const u64 runWallMicros = static_cast<u64>(
                secondsSince(runStart) * 1e6);
            const bool wasPruned =
                verdict.detail == fi::OutcomeDetail::MaskedPruned &&
                verdict.cyclesRun == 0;
            local.tally(verdict);
            if (telemetry) {
                ++localTelemetry.runs;
                // A fast-forwarded run's cyclesRun starts counting at
                // the window start for verdict identity; only cycles
                // past the restored rung were actually simulated. An
                // early-stopped run simulated only up to its stop
                // cycle — the fabricated tail (stop -> cyclesRun) was
                // never ticked.
                localTelemetry.simCycles +=
                    (verdict.stoppedAt ? verdict.stoppedAt
                                       : verdict.cyclesRun) -
                    verdict.fastForwarded;
                localTelemetry.busySeconds += secondsSince(runStart);
                if (verdict.terminatedEarly) {
                    ++localEarly;
                    if (golden.totalCycles > verdict.cyclesRun)
                        localSaved += golden.totalCycles -
                                      verdict.cyclesRun;
                }
                if (verdict.stoppedAt) {
                    ++localStops;
                    // The early-termination branch above already
                    // credits cyclesRun -> totalCycles; the stop
                    // itself saved the fabricated tail.
                    localSaved +=
                        verdict.cyclesRun - verdict.stoppedAt;
                }
                if (wasPruned) {
                    ++localPruned;
                } else {
                    localFastForwarded += verdict.fastForwarded;
                    if (!localRungHits.empty())
                        ++localRungHits[rungSlot(
                            verdict.fastForwarded)];
                }
            }
            if (options.keepVerdicts)
                kept.emplace_back(i, verdict);
            if (writer.open()) {
                // One lock covers the journal append (which may
                // fsync a chunk) and the heartbeat tally; counter
                // merging stays batched per worker.
                std::lock_guard<std::mutex> lock(mergeMutex);
                writer.append(
                    i, verdict,
                    runProvenance(golden, verdict, runWallMicros));
                if (heartbeatOn) {
                    beatAgg.tally(verdict);
                    if (verdict.stoppedAt)
                        ++beatStops;
                    const auto now = Clock::now();
                    if (std::chrono::duration<double>(now - lastBeat)
                            .count() >= options.heartbeatSeconds) {
                        lastBeat = now;
                        writeBeat();
                    }
                }
            }
        }
        std::lock_guard<std::mutex> lock(mergeMutex);
        result.addCounts(local);
        for (auto &[idx, verdict] : kept)
            result.verdicts[idx] = verdict;
        if (telemetry) {
            // Everything after this worker's last run is tail wait
            // for the stragglers: the shared queue is already empty.
            localTelemetry.idleSeconds =
                secondsSince(campaignStart) -
                localTelemetry.busySeconds;
            if (localTelemetry.idleSeconds < 0)
                localTelemetry.idleSeconds = 0;
            telemetry->workers[workerIdx] = localTelemetry;
            telemetry->runs += localTelemetry.runs;
            telemetry->masked += local.masked;
            telemetry->sdc += local.sdc;
            telemetry->crash += local.crash;
            telemetry->earlyTerminated += localEarly;
            telemetry->cyclesSimulated += localTelemetry.simCycles;
            telemetry->cyclesSaved += localSaved;
            telemetry->pruned += localPruned;
            telemetry->earlyStops += localStops;
            telemetry->cyclesFastForwarded += localFastForwarded;
            for (std::size_t r = 0; r < localRungHits.size(); ++r)
                telemetry->rungHits[r] += localRungHits[r];
        }
    };
    if (!pending.empty())
        runWorkers(threads, worker);

    if (telemetry)
        telemetry->wallSeconds = secondsSince(campaignStart);

    if (writer.open()) {
        if (telemetry && telemetry->runs > 0) {
            store::JournalMetrics metrics;
            metrics.runs = telemetry->runs;
            metrics.masked = telemetry->masked;
            metrics.sdc = telemetry->sdc;
            metrics.crash = telemetry->crash;
            metrics.earlyTerminated = telemetry->earlyTerminated;
            metrics.pruned = telemetry->pruned;
            metrics.earlyStops = telemetry->earlyStops;
            metrics.cyclesSimulated = telemetry->cyclesSimulated;
            metrics.cyclesSaved = telemetry->cyclesSaved;
            metrics.cyclesFastForwarded =
                telemetry->cyclesFastForwarded;
            metrics.wallMillis = static_cast<u64>(
                telemetry->wallSeconds * 1000.0);
            metrics.idleMillis = static_cast<u64>(
                telemetry->totalIdleSeconds() * 1000.0);
            metrics.workers = threads;
            // This campaign's share of the process-wide profiler
            // accumulators (delta against the start snapshot). The
            // golden build happens before runCampaign, so the split
            // here covers exactly the work this journal records.
            const obs::profiler::Totals profDelta =
                obs::profiler::snapshot().since(profStart);
            for (std::size_t p = 0;
                 p < obs::profiler::kNumPhases; ++p)
                metrics.phaseMicros[p] =
                    profDelta.nanos[p] / 1000;
            writer.appendMetrics(metrics);
        }
        writer.close(); // commits the final partial chunk
    }
    if (heartbeatOn)
        writeBeat(); // final beat: complete flag + settled counts
    return result;
}

ShardProgress
shardProgress(const std::string &journalPath)
{
    const store::Journal journal = store::readJournal(journalPath);
    ShardProgress progress;
    progress.meta = journal.meta;
    progress.partial = resultShellFromMeta(journal.meta);
    progress.expected =
        shardShare(journal.meta.numFaults, journal.meta.shardIndex,
                   journal.meta.shardCount);
    progress.chunksCommitted = journal.chunksCommitted;
    progress.tornTail = journal.droppedTornLine;

    std::vector<u8> seen(journal.meta.numFaults, 0);
    for (const store::JournalVerdict &jv : journal.verdicts) {
        if (jv.idx >= journal.meta.numFaults || seen[jv.idx])
            continue;
        seen[jv.idx] = 1;
        ++progress.done;
        progress.partial.tally(jv.verdict);
    }
    return progress;
}

fi::CampaignResult
mergeJournals(const std::vector<std::string> &journalPaths)
{
    if (journalPaths.empty())
        fatal("sched: merge needs at least one journal");

    fi::CampaignResult result;
    store::JournalMeta first;
    std::vector<u8> seen;
    for (std::size_t p = 0; p < journalPaths.size(); ++p) {
        const store::Journal journal =
            store::readJournal(journalPaths[p]);
        const store::JournalMeta &meta = journal.meta;
        if (p == 0) {
            first = meta;
            result = resultShellFromMeta(meta);
            seen.assign(meta.numFaults, 0);
        } else {
            if (meta.target != first.target ||
                meta.model != first.model ||
                meta.seed != first.seed ||
                meta.numFaults != first.numFaults ||
                meta.shardCount != first.shardCount ||
                meta.goldenDigest != first.goldenDigest)
                fatal("sched: journal '%s' belongs to a different "
                      "campaign than '%s'",
                      journalPaths[p].c_str(),
                      journalPaths[0].c_str());
            // Spec mismatch gets its own message naming both models:
            // the verdict counts would merge cleanly but describe two
            // different fault populations.
            if (meta.faultModel != first.faultModel)
                fatal("sched: journal '%s' was recorded under fault "
                      "model '%s', but '%s' uses '%s' — shards of one "
                      "campaign must share the fault-model spec",
                      journalPaths[p].c_str(),
                      meta.faultModel.empty()
                          ? "single (legacy)"
                          : meta.faultModel.c_str(),
                      journalPaths[0].c_str(),
                      first.faultModel.empty()
                          ? "single (legacy)"
                          : first.faultModel.c_str());
        }
        for (const store::JournalVerdict &jv : journal.verdicts) {
            if (jv.idx >= meta.numFaults)
                fatal("sched: journal '%s' holds out-of-range "
                      "fault index %llu",
                      journalPaths[p].c_str(),
                      static_cast<unsigned long long>(jv.idx));
            if (jv.idx % meta.shardCount != meta.shardIndex)
                fatal("sched: journal '%s' holds fault %llu, "
                      "which shard %u/%u does not own",
                      journalPaths[p].c_str(),
                      static_cast<unsigned long long>(jv.idx),
                      meta.shardIndex, meta.shardCount);
            if (seen[jv.idx])
                continue; // re-journaled after a crash window
            seen[jv.idx] = 1;
            result.tally(jv.verdict);
        }
    }

    const u64 covered = result.total();
    if (covered != first.numFaults)
        fatal("sched: merged journals cover %llu of %llu faults "
              "(incomplete or missing shards)",
              static_cast<unsigned long long>(covered),
              static_cast<unsigned long long>(first.numFaults));
    return result;
}

} // namespace marvel::sched
