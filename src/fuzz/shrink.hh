/**
 * @file
 * Greedy test-case minimization for failing MIR modules.
 *
 * Given a module and a predicate "still fails", the shrinker applies
 * rounds of structure-preserving mutations — delete dead-destination
 * instructions, rewrite defs to constant zero, fold conditional
 * branches, drop unreachable blocks / uncalled functions / unused
 * globals, narrow immediates toward zero — accepting a candidate only
 * when it is still verifier-clean AND the predicate still holds.
 *
 * The predicate is treated as a black box; a candidate that makes it
 * throw FatalError (e.g. the shrink removed the Checkpoint op an
 * fi-based predicate needs) is simply rejected.
 */

#ifndef MARVEL_FUZZ_SHRINK_HH
#define MARVEL_FUZZ_SHRINK_HH

#include <functional>

#include "common/types.hh"
#include "mir/mir.hh"

namespace marvel::fuzz
{

/** Returns true while the candidate still exhibits the failure. */
using FailPredicate = std::function<bool(const mir::Module &)>;

struct ShrinkOptions
{
    /** Full mutation rounds before giving up on a fixpoint. */
    unsigned maxRounds = 10;
};

struct ShrinkResult
{
    mir::Module module;   ///< the minimized, still-failing module
    unsigned rounds = 0;  ///< rounds actually executed
    u64 attempts = 0;     ///< candidates probed
    u64 accepted = 0;     ///< candidates that kept the failure
};

/** Total instruction count across all functions. */
std::size_t countInsts(const mir::Module &module);

/**
 * Minimize `failing` while `stillFails` holds. The input module must
 * itself satisfy the predicate.
 */
ShrinkResult shrink(const mir::Module &failing,
                    const FailPredicate &stillFails,
                    const ShrinkOptions &options = {});

} // namespace marvel::fuzz

#endif // MARVEL_FUZZ_SHRINK_HH
