#include "fuzz/gen.hh"

#include <string>
#include <vector>

#include "common/memmap.hh"
#include "common/rng.hh"
#include "mir/builder.hh"

namespace marvel::fuzz
{

namespace
{

/** Slots in the "arr" global (u64-sized). */
constexpr u64 kArrSlots = 256;
constexpr u64 kArrBytes = kArrSlots * 8;

/**
 * One generation session: a builder plus the value pool / accumulator
 * bookkeeping that keeps every emitted instruction well-defined.
 */
struct Gen
{
    Rng rng;
    const GenOptions &opt;
    mir::ModuleBuilder mb;
    std::vector<mir::FuncId> callees;

    explicit Gen(u64 seed, const GenOptions &options)
        : rng(Rng::forStream(seed, 0xf022)), opt(options)
    {
    }

    u64 pick(u64 bound) { return rng.below(bound); }
    bool chance(u64 percent) { return pick(100) < percent; }

    /** Small signed constant with occasional large outliers. */
    i64
    randImm()
    {
        switch (pick(4)) {
          case 0:
            return static_cast<i64>(pick(16));
          case 1:
            return static_cast<i64>(pick(256)) - 128;
          case 2:
            return static_cast<i64>(pick(1u << 20));
          default:
            return static_cast<i64>(rng());
        }
    }

    // ---- per-function expression machinery ------------------------------

    /**
     * Pool of I64 vregs defined on the always-executed spine of the
     * function under construction. Statements read operands from here
     * and (at top level) push their results back.
     */
    std::vector<mir::VReg> pool;
    std::vector<mir::VReg> accs;

    mir::VReg poolPick() { return pool[pick(pool.size())]; }

    void
    poolPush(mir::VReg reg)
    {
        if (pool.size() < 32)
            pool.push_back(reg);
        else
            pool[pick(pool.size())] = reg;
    }

    mir::VReg accPick() { return accs[pick(accs.size())]; }

    /** value | 1: never zero, safe divisor. */
    mir::VReg
    oddOf(mir::FunctionBuilder &fb, mir::VReg value)
    {
        return fb.bor(value, fb.constI(1));
    }

    /** Random integer binop over two pool values (always defined). */
    mir::VReg
    intExpr(mir::FunctionBuilder &fb)
    {
        const mir::VReg a = poolPick();
        const mir::VReg b = poolPick();
        switch (pick(10)) {
          case 0: return fb.add(a, b);
          case 1: return fb.sub(a, b);
          case 2: return fb.mul(a, b);
          case 3: return fb.band(a, b);
          case 4: return fb.bor(a, b);
          case 5: return fb.bxor(a, b);
          case 6: { // masked shift
            const mir::VReg amt = fb.band(b, fb.constI(63));
            switch (pick(3)) {
              case 0: return fb.shl(a, amt);
              case 1: return fb.shr(a, amt);
              default: return fb.sra(a, amt);
            }
          }
          case 7: { // guarded division
            const mir::VReg d = oddOf(fb, b);
            switch (pick(4)) {
              case 0: return fb.div(a, d);
              case 1: return fb.divu(a, d);
              case 2: return fb.rem(a, d);
              default: return fb.remu(a, d);
            }
          }
          case 8: { // comparison
            switch (pick(6)) {
              case 0: return fb.cmpEq(a, b);
              case 1: return fb.cmpNe(a, b);
              case 2: return fb.cmpLt(a, b);
              case 3: return fb.cmpLe(a, b);
              case 4: return fb.cmpLtU(a, b);
              default: return fb.cmpLeU(a, b);
            }
          }
          default: // select
            return fb.select(fb.cmpLt(a, b), a, poolPick());
        }
    }

    /**
     * FP chain: operands come from 16-bit non-negative domains so
     * every intermediate stays finite and the final FtoI truncation is
     * always in i64 range.
     */
    mir::VReg
    floatExpr(mir::FunctionBuilder &fb)
    {
        const mir::VReg mask = fb.constI(0xffff);
        const mir::VReg a = fb.itof(fb.band(poolPick(), mask));
        const mir::VReg b = fb.itof(fb.band(poolPick(), mask));
        mir::VReg f;
        switch (pick(5)) {
          case 0: f = fb.fadd(a, b); break;
          case 1: f = fb.fsub(a, b); break;
          case 2: f = fb.fmul(a, b); break;
          case 3: f = fb.fdiv(a, fb.fadd(b, fb.constF(1.0))); break;
          default: f = fb.fsqrt(fb.fmul(a, b)); break;
        }
        if (chance(40))
            return fb.fcmpLe(a, f); // 0/1 verdict
        return fb.ftoi(f);
    }

    /**
     * Address of a size-aligned slot inside "arr": index is masked so
     * offset + size never exceeds the global, and shifted so the
     * access is naturally aligned for every flavor.
     */
    mir::VReg
    arrAddr(mir::FunctionBuilder &fb, unsigned size)
    {
        const u64 slots = kArrBytes / size;
        const mir::VReg slot =
            fb.band(poolPick(), fb.constI(static_cast<i64>(slots - 1)));
        unsigned shift = 0;
        while ((1u << shift) < size)
            ++shift;
        const mir::VReg off = shift ? fb.shlI(slot, shift) : slot;
        return fb.add(fb.gaddr("arr"), off);
    }

    /** Store a pool value, then load (another) slot back. */
    mir::VReg
    memExpr(mir::FunctionBuilder &fb)
    {
        static const unsigned sizes[4] = {1, 2, 4, 8};
        const unsigned stSize = sizes[pick(4)];
        const mir::VReg stAddr = arrAddr(fb, stSize);
        switch (stSize) {
          case 1: fb.st1(stAddr, poolPick()); break;
          case 2: fb.st2(stAddr, poolPick()); break;
          case 4: fb.st4(stAddr, poolPick()); break;
          default: fb.st8(stAddr, poolPick()); break;
        }
        // Load back through the same address half the time: exercises
        // store-to-load forwarding; otherwise a fresh address, which
        // may partially overlap the store (the LSQ stall path).
        const unsigned ldSize = chance(50) ? stSize : sizes[pick(4)];
        const mir::VReg ldAddr = (ldSize == stSize && chance(50))
                                     ? stAddr
                                     : arrAddr(fb, ldSize);
        switch (ldSize) {
          case 1:
            return chance(50) ? fb.ld1u(ldAddr) : fb.ld1s(ldAddr);
          case 2:
            return chance(50) ? fb.ld2u(ldAddr) : fb.ld2s(ldAddr);
          case 4:
            return chance(50) ? fb.ld4u(ldAddr) : fb.ld4s(ldAddr);
          default:
            return fb.ld8(ldAddr);
        }
    }

    /** acc = acc <op> value, insertable on any path. */
    void
    accMix(mir::FunctionBuilder &fb, mir::VReg acc, mir::VReg value)
    {
        switch (pick(4)) {
          case 0: fb.assign(acc, fb.add(acc, value)); break;
          case 1: fb.assign(acc, fb.bxor(acc, value)); break;
          case 2: fb.assign(acc, fb.sub(acc, value)); break;
          default:
            fb.assign(acc, fb.add(fb.mul(acc, fb.constI(31)), value));
            break;
        }
    }

    /** if/else diamond mutating one accumulator. */
    void
    diamond(mir::FunctionBuilder &fb)
    {
        const mir::VReg cond = fb.cmpLt(poolPick(), poolPick());
        const mir::VReg acc = accPick();
        const mir::BlockId thenB = fb.newBlock();
        const mir::BlockId elseB = fb.newBlock();
        const mir::BlockId join = fb.newBlock();
        fb.br(cond, thenB, elseB);
        fb.setBlock(thenB);
        accMix(fb, acc, poolPick());
        fb.jmp(join);
        fb.setBlock(elseB);
        accMix(fb, acc, intExpr(fb));
        fb.jmp(join);
        fb.setBlock(join);
    }

    /** Bounded counted loop mutating accumulators (maybe memory too). */
    void
    loop(mir::FunctionBuilder &fb)
    {
        const u64 trip = 1 + pick(opt.maxLoopTrip);
        const mir::VReg init = fb.constI(0);
        const mir::VReg bound = fb.constI(static_cast<i64>(trip));
        auto l = fb.beginLoop(init, bound);
        accMix(fb, accPick(), l.idx);
        if (opt.memory && chance(50)) {
            const mir::VReg addr = fb.add(
                fb.gaddr("arr"),
                fb.shlI(fb.band(l.idx, fb.constI(kArrSlots - 1)), 3));
            fb.st8(addr, accPick());
            accMix(fb, accPick(), fb.ld8(addr));
        }
        if (opt.branches && chance(35)) {
            const mir::VReg c =
                fb.cmpEq(fb.band(l.idx, fb.constI(1)), fb.constI(0));
            const mir::VReg acc = accPick();
            const mir::BlockId thenB = fb.newBlock();
            const mir::BlockId join = fb.newBlock();
            fb.br(c, thenB, join);
            fb.setBlock(thenB);
            accMix(fb, acc, poolPick());
            fb.jmp(join);
            fb.setBlock(join);
        }
        fb.endLoop(l);
    }

    /** Build one callee: pure expression function of two I64 params. */
    void
    makeCallee(unsigned index)
    {
        auto fb = mb.func("f" + std::to_string(index),
                          {mir::Type::I64, mir::Type::I64}, true);
        pool.clear();
        accs.clear();
        pool.push_back(fb.fn().params[0]);
        pool.push_back(fb.fn().params[1]);
        pool.push_back(fb.constI(randImm()));
        const unsigned ops = 3 + static_cast<unsigned>(pick(6));
        for (unsigned i = 0; i < ops; ++i) {
            if (opt.floats && chance(20))
                poolPush(floatExpr(fb));
            else
                poolPush(intExpr(fb));
        }
        // Callees may call earlier callees: a DAG, never recursion.
        if (opt.calls && index > 0 && chance(50)) {
            const mir::FuncId target = callees[pick(index)];
            poolPush(fb.call(target, {poolPick(), poolPick()}));
        }
        fb.ret(fb.bxor(poolPick(), poolPick()));
        callees.push_back(fb.id());
    }

    /** One top-level statement in main. */
    void
    statement(mir::FunctionBuilder &fb)
    {
        switch (pick(12)) {
          case 0:
          case 1:
          case 2:
          case 3:
            poolPush(intExpr(fb));
            break;
          case 4:
          case 5:
            if (opt.floats) {
                poolPush(floatExpr(fb));
                break;
            }
            [[fallthrough]];
          case 6:
          case 7:
            if (opt.memory) {
                poolPush(memExpr(fb));
                break;
            }
            poolPush(intExpr(fb));
            break;
          case 8:
            if (opt.calls && !callees.empty()) {
                poolPush(fb.call(callees[pick(callees.size())],
                                 {poolPick(), poolPick()}));
                break;
            }
            [[fallthrough]];
          case 9:
            if (opt.branches) {
                diamond(fb);
                break;
            }
            poolPush(intExpr(fb));
            break;
          default:
            if (opt.loops) {
                loop(fb);
                break;
            }
            poolPush(intExpr(fb));
            break;
        }
    }

    mir::Module
    run()
    {
        // Globals: one working array with deterministic random init.
        std::vector<u8> init(kArrBytes);
        for (auto &byte : init)
            byte = static_cast<u8>(rng());
        mb.globalInit("arr", std::move(init), 64);

        const unsigned nCallees =
            opt.calls ? static_cast<unsigned>(pick(opt.maxCallees + 1))
                      : 0;
        for (unsigned i = 0; i < nCallees; ++i)
            makeCallee(i);

        auto fb = mb.func("main", {}, true);
        pool.clear();
        accs.clear();
        for (unsigned i = 0; i < 4; ++i)
            pool.push_back(fb.constI(randImm()));
        pool.push_back(fb.ld8(fb.gaddr("arr"), 8 * pick(kArrSlots)));
        pool.push_back(fb.ld8(fb.gaddr("arr"), 8 * pick(kArrSlots)));
        for (unsigned i = 0; i < 3; ++i)
            accs.push_back(fb.mov(poolPick()));

        if (opt.magicWindow)
            fb.checkpoint();

        for (unsigned i = 0; i < opt.statements; ++i)
            statement(fb);

        // Epilogue: fold the live values into one result, publish a
        // sample of them through the OUTPUT window, and exit.
        mir::VReg result = accs[0];
        for (unsigned i = 1; i < accs.size(); ++i)
            result = fb.bxor(result, accs[i]);
        for (unsigned i = 0; i < 4; ++i)
            result = fb.add(fb.mul(result, fb.constI(131)), poolPick());

        const mir::VReg outBase =
            fb.constI(static_cast<i64>(kOutputBase));
        fb.st8(outBase, result);
        for (unsigned i = 0; i < accs.size(); ++i)
            fb.st8(outBase, accs[i], 8 * (i + 1));
        for (unsigned i = 0; i < 4; ++i)
            fb.st8(outBase, poolPick(), 8 * (i + 4));

        if (opt.magicWindow)
            fb.switchCpu();
        fb.ret(result);

        mb.setEntry("main");
        return std::move(mb.module());
    }
};

} // namespace

mir::Module
generate(u64 seed, const GenOptions &options)
{
    Gen gen(seed, options);
    return gen.run();
}

} // namespace marvel::fuzz
