#include "fuzz/shrink.hh"

#include <algorithm>
#include <vector>

#include "common/log.hh"

namespace marvel::fuzz
{

namespace
{

/** True when `reg` is read as a source anywhere in the function. */
bool
vregUsed(const mir::Function &fn, mir::VReg reg)
{
    for (const mir::Block &block : fn.blocks) {
        for (const mir::Inst &inst : block.insts) {
            const unsigned n = mir::numSources(inst.op);
            if ((n >= 1 && inst.a == reg) ||
                (n >= 2 && inst.b == reg) ||
                (n >= 3 && inst.c == reg))
                return true;
            for (mir::VReg arg : inst.args)
                if (arg == reg)
                    return true;
        }
    }
    return false;
}

/** Probe one candidate: structurally sound AND still failing. */
struct Prober
{
    const FailPredicate &pred;
    ShrinkResult &res;

    bool
    operator()(const mir::Module &candidate) const
    {
        ++res.attempts;
        if (!mir::checkModule(candidate))
            return false;
        try {
            if (!pred(candidate))
                return false;
        } catch (const FatalError &) {
            // The mutation broke an assumption of the predicate's
            // harness (e.g. removed the Checkpoint op): reject it.
            return false;
        }
        ++res.accepted;
        return true;
    }
};

/** Delete instructions whose effects are provably unobservable. */
bool
passDeleteInsts(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        for (std::size_t b = 0; b < cur.functions[f].blocks.size();
             ++b) {
            std::size_t i = 0;
            while (i < cur.functions[f].blocks[b].insts.size()) {
                const mir::Inst &inst =
                    cur.functions[f].blocks[b].insts[i];
                if (mir::isTerminator(inst.op)) {
                    ++i;
                    continue;
                }
                // A def can only go once nothing reads it; stores and
                // magic ops have no def and may always be probed.
                if (mir::hasDest(inst.op) &&
                    vregUsed(cur.functions[f], inst.dst)) {
                    ++i;
                    continue;
                }
                mir::Module cand = cur;
                auto &insts = cand.functions[f].blocks[b].insts;
                insts.erase(insts.begin() +
                            static_cast<std::ptrdiff_t>(i));
                if (probe(cand)) {
                    cur = std::move(cand);
                    any = true;
                } else {
                    ++i;
                }
            }
        }
    }
    return any;
}

/** Replace defs with constant zero, severing their input cone. */
bool
passZeroDefs(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        for (std::size_t b = 0; b < cur.functions[f].blocks.size();
             ++b) {
            for (std::size_t i = 0;
                 i < cur.functions[f].blocks[b].insts.size(); ++i) {
                const mir::Inst &inst =
                    cur.functions[f].blocks[b].insts[i];
                if (!mir::hasDest(inst.op) ||
                    inst.op == mir::Op::ConstI ||
                    inst.op == mir::Op::ConstF)
                    continue;
                mir::Module cand = cur;
                mir::Inst &slot =
                    cand.functions[f].blocks[b].insts[i];
                const bool isFloat =
                    cand.functions[f].vregTypes[slot.dst] ==
                    mir::Type::F64;
                const mir::VReg dst = slot.dst;
                slot = mir::Inst{};
                slot.op = isFloat ? mir::Op::ConstF
                                  : mir::Op::ConstI;
                slot.dst = dst;
                if (probe(cand)) {
                    cur = std::move(cand);
                    any = true;
                }
            }
        }
    }
    return any;
}

/** Fold conditional branches to one side. */
bool
passFoldBranches(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        for (std::size_t b = 0; b < cur.functions[f].blocks.size();
             ++b) {
            auto &insts = cur.functions[f].blocks[b].insts;
            if (insts.empty() ||
                insts.back().op != mir::Op::Br)
                continue;
            for (int side = 0; side < 2; ++side) {
                mir::Module cand = cur;
                mir::Inst &term =
                    cand.functions[f].blocks[b].insts.back();
                const mir::BlockId target =
                    side == 0 ? term.target : term.target2;
                term = mir::Inst{};
                term.op = mir::Op::Jmp;
                term.target = target;
                if (probe(cand)) {
                    cur = std::move(cand);
                    any = true;
                    break;
                }
            }
        }
    }
    return any;
}

/**
 * Redirect branch targets through blocks that are bare jumps, so the
 * unreachable-block pass can delete the chain. Hop count is bounded
 * to survive bare-jump cycles.
 */
bool
passThreadJumps(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        const mir::Function &fn = cur.functions[f];
        const auto resolve = [&fn](mir::BlockId t) {
            for (std::size_t hop = 0; hop < fn.blocks.size();
                 ++hop) {
                const mir::Block &blk = fn.blocks[t];
                if (blk.insts.size() != 1 ||
                    blk.insts[0].op != mir::Op::Jmp ||
                    blk.insts[0].target == t)
                    break;
                t = blk.insts[0].target;
            }
            return t;
        };
        mir::Module cand = cur;
        bool changed = false;
        for (mir::Block &block : cand.functions[f].blocks) {
            for (mir::Inst &inst : block.insts) {
                if (inst.op != mir::Op::Jmp &&
                    inst.op != mir::Op::Br)
                    continue;
                const mir::BlockId nt = resolve(inst.target);
                changed |= nt != inst.target;
                inst.target = nt;
                if (inst.op == mir::Op::Br) {
                    const mir::BlockId nt2 = resolve(inst.target2);
                    changed |= nt2 != inst.target2;
                    inst.target2 = nt2;
                }
            }
        }
        if (changed && probe(cand)) {
            cur = std::move(cand);
            any = true;
        }
    }
    return any;
}

/** Remove blocks unreachable from the entry block. */
bool
passDropUnreachable(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        const mir::Function &fn = cur.functions[f];
        std::vector<bool> reached(fn.blocks.size(), false);
        std::vector<mir::BlockId> work{0};
        reached[0] = true;
        while (!work.empty()) {
            const mir::BlockId b = work.back();
            work.pop_back();
            for (const mir::Inst &inst : fn.blocks[b].insts) {
                if (inst.op != mir::Op::Jmp &&
                    inst.op != mir::Op::Br)
                    continue;
                for (mir::BlockId t : {inst.target, inst.target2}) {
                    if (inst.op == mir::Op::Jmp &&
                        t == inst.target2)
                        continue;
                    if (t < reached.size() && !reached[t]) {
                        reached[t] = true;
                        work.push_back(t);
                    }
                }
            }
        }
        if (std::find(reached.begin(), reached.end(), false) ==
            reached.end())
            continue;

        std::vector<mir::BlockId> remap(fn.blocks.size(), 0);
        mir::Module cand = cur;
        mir::Function &cf = cand.functions[f];
        std::vector<mir::Block> kept;
        for (std::size_t b = 0; b < cf.blocks.size(); ++b) {
            if (!reached[b])
                continue;
            remap[b] = static_cast<mir::BlockId>(kept.size());
            kept.push_back(std::move(cf.blocks[b]));
        }
        cf.blocks = std::move(kept);
        for (mir::Block &block : cf.blocks) {
            for (mir::Inst &inst : block.insts) {
                if (inst.op == mir::Op::Jmp ||
                    inst.op == mir::Op::Br)
                    inst.target = remap[inst.target];
                if (inst.op == mir::Op::Br)
                    inst.target2 = remap[inst.target2];
            }
        }
        if (probe(cand)) {
            cur = std::move(cand);
            any = true;
        }
    }
    return any;
}

/** Remove functions unreachable from the entry via calls. */
bool
passDropFunctions(mir::Module &cur, const Prober &probe)
{
    std::vector<bool> reached(cur.functions.size(), false);
    std::vector<mir::FuncId> work{cur.entry};
    reached[cur.entry] = true;
    while (!work.empty()) {
        const mir::FuncId f = work.back();
        work.pop_back();
        for (const mir::Block &block : cur.functions[f].blocks)
            for (const mir::Inst &inst : block.insts)
                if (inst.op == mir::Op::Call &&
                    !reached[inst.callee]) {
                    reached[inst.callee] = true;
                    work.push_back(inst.callee);
                }
    }
    if (std::find(reached.begin(), reached.end(), false) ==
        reached.end())
        return false;

    mir::Module cand = cur;
    std::vector<mir::FuncId> remap(cur.functions.size(), 0);
    std::vector<mir::Function> kept;
    for (std::size_t f = 0; f < cand.functions.size(); ++f) {
        if (!reached[f])
            continue;
        remap[f] = static_cast<mir::FuncId>(kept.size());
        kept.push_back(std::move(cand.functions[f]));
    }
    cand.functions = std::move(kept);
    cand.entry = remap[cur.entry];
    for (mir::Function &fn : cand.functions)
        for (mir::Block &block : fn.blocks)
            for (mir::Inst &inst : block.insts)
                if (inst.op == mir::Op::Call)
                    inst.callee = remap[inst.callee];
    if (probe(cand)) {
        cur = std::move(cand);
        return true;
    }
    return false;
}

/** Remove globals no GAddr references. */
bool
passDropGlobals(mir::Module &cur, const Prober &probe)
{
    std::vector<bool> used(cur.globals.size(), false);
    for (const mir::Function &fn : cur.functions)
        for (const mir::Block &block : fn.blocks)
            for (const mir::Inst &inst : block.insts)
                if (inst.op == mir::Op::GAddr &&
                    static_cast<std::size_t>(inst.imm) < used.size())
                    used[inst.imm] = true;
    if (std::find(used.begin(), used.end(), false) == used.end())
        return false;

    mir::Module cand = cur;
    std::vector<i64> remap(cur.globals.size(), 0);
    std::vector<mir::Global> kept;
    for (std::size_t g = 0; g < cand.globals.size(); ++g) {
        if (!used[g])
            continue;
        remap[g] = static_cast<i64>(kept.size());
        kept.push_back(std::move(cand.globals[g]));
    }
    cand.globals = std::move(kept);
    for (mir::Function &fn : cand.functions)
        for (mir::Block &block : fn.blocks)
            for (mir::Inst &inst : block.insts)
                if (inst.op == mir::Op::GAddr)
                    inst.imm = remap[inst.imm];
    if (probe(cand)) {
        cur = std::move(cand);
        return true;
    }
    return false;
}

/** Narrow immediates toward zero. */
bool
passNarrowConsts(mir::Module &cur, const Prober &probe)
{
    bool any = false;
    for (std::size_t f = 0; f < cur.functions.size(); ++f) {
        for (std::size_t b = 0; b < cur.functions[f].blocks.size();
             ++b) {
            for (std::size_t i = 0;
                 i < cur.functions[f].blocks[b].insts.size(); ++i) {
                const mir::Inst inst =
                    cur.functions[f].blocks[b].insts[i];
                std::vector<i64> tries;
                if (inst.op == mir::Op::ConstI && inst.imm != 0) {
                    tries = {0, 1, inst.imm / 2,
                             inst.imm & 0xff};
                } else if ((mir::isLoad(inst.op) ||
                            mir::isStore(inst.op)) &&
                           inst.imm != 0) {
                    tries = {0};
                } else if (inst.op == mir::Op::ConstF &&
                           inst.fimm != 0.0) {
                    mir::Module cand = cur;
                    cand.functions[f].blocks[b].insts[i].fimm = 0.0;
                    if (probe(cand)) {
                        cur = std::move(cand);
                        any = true;
                    }
                    continue;
                }
                for (i64 next : tries) {
                    if (next == inst.imm)
                        continue;
                    mir::Module cand = cur;
                    cand.functions[f].blocks[b].insts[i].imm = next;
                    if (probe(cand)) {
                        cur = std::move(cand);
                        any = true;
                        break;
                    }
                }
            }
        }
    }
    return any;
}

} // namespace

std::size_t
countInsts(const mir::Module &module)
{
    std::size_t n = 0;
    for (const mir::Function &fn : module.functions)
        for (const mir::Block &block : fn.blocks)
            n += block.insts.size();
    return n;
}

ShrinkResult
shrink(const mir::Module &failing, const FailPredicate &stillFails,
       const ShrinkOptions &options)
{
    ShrinkResult res;
    res.module = failing;
    const Prober probe{stillFails, res};

    for (unsigned round = 0; round < options.maxRounds; ++round) {
        ++res.rounds;
        bool any = false;
        any |= passFoldBranches(res.module, probe);
        any |= passThreadJumps(res.module, probe);
        any |= passDropUnreachable(res.module, probe);
        any |= passDeleteInsts(res.module, probe);
        any |= passZeroDefs(res.module, probe);
        any |= passDeleteInsts(res.module, probe);
        any |= passDropFunctions(res.module, probe);
        any |= passDropGlobals(res.module, probe);
        any |= passNarrowConsts(res.module, probe);
        if (!any)
            break;
    }
    return res;
}

} // namespace marvel::fuzz
