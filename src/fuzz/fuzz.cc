#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "sched/workqueue.hh"

namespace marvel::fuzz
{

std::string
FuzzFailure::summary() const
{
    std::string s = "seed " + std::to_string(seed) + ": ";
    bool first = true;
    for (const Divergence &d : divergences) {
        if (!first)
            s += "; ";
        s += d.toString();
        first = false;
    }
    for (const AuditFailure &f : auditFailures) {
        if (!first)
            s += "; ";
        s += "audit " + f.toString();
        first = false;
    }
    if (wasShrunk) {
        s += " (shrunk " + std::to_string(originalInsts) + " -> " +
             std::to_string(shrunkInsts) + " insts)";
    }
    return s;
}

std::string
writeReproducer(const std::string &outDir, const FuzzFailure &failure)
{
    std::filesystem::create_directories(outDir);
    const std::string path =
        outDir + "/seed-" + std::to_string(failure.seed) + ".mir";
    std::ofstream out(path);
    if (!out)
        fatal("fuzz: cannot write reproducer %s", path.c_str());

    char line[160];
    out << "; marvel-fuzz reproducer\n";
    out << "; seed: " << failure.seed << "\n";
    for (const Divergence &d : failure.divergences)
        out << "; divergence: " << d.toString() << "\n";
    for (const AuditFailure &f : failure.auditFailures)
        out << "; audit-failure: " << f.toString() << "\n";
    std::snprintf(line, sizeof(line),
                  "; original: %zu insts, digest %016llx",
                  failure.originalInsts,
                  (unsigned long long)mir::moduleDigest(
                      failure.original));
    out << line << "\n";
    if (failure.wasShrunk) {
        std::snprintf(line, sizeof(line),
                      "; shrunk: %zu insts, digest %016llx",
                      failure.shrunkInsts,
                      (unsigned long long)mir::moduleDigest(
                          failure.shrunk));
        out << line << "\n";
    }
    out << "; replay: marvel-fuzz --seeds " << failure.seed << ":"
        << failure.seed + 1 << "\n\n";
    out << mir::toString(failure.shrunk);
    return path;
}

namespace
{

/** Run one seed end to end; true when it produced a failure. */
bool
runSeed(u64 seed, bool auditThisSeed, const FuzzOptions &options,
        FuzzSummary &summary, FuzzFailure &failure,
        std::string &status)
{
    const mir::Module module = generate(seed, options.gen);
    const DiffResult diff = runDifferential(module, options.diff);
    if (diff.interpTimedOut) {
        ++summary.skipped;
        status = "skipped (interp timeout)";
        return false;
    }
    ++summary.ran;

    failure.seed = seed;
    failure.divergences = diff.divergences;

    // Audit only when the differential pass itself was clean (a
    // diverging module is already a reportable failure).
    if (failure.divergences.empty() && auditThisSeed) {
        ++summary.audited;
        const AuditResult audit =
            auditDeterminism(module, seed, options.audit);
        failure.auditFailures = audit.failures;
    }

    if (failure.divergences.empty() &&
        failure.auditFailures.empty()) {
        status = "ok";
        return false;
    }

    failure.original = module;
    failure.shrunk = module;
    failure.originalInsts = countInsts(module);
    failure.shrunkInsts = failure.originalInsts;

    if (options.shrinkFailures && !failure.divergences.empty()) {
        // Re-probe only the flavors that diverged; any divergence
        // (even of a different kind) keeps the candidate.
        DiffOptions probeOpts = options.diff;
        probeOpts.checkDeterminism = false;
        probeOpts.flavors.clear();
        for (const Divergence &d : failure.divergences)
            if (std::find(probeOpts.flavors.begin(),
                          probeOpts.flavors.end(), d.isa) ==
                probeOpts.flavors.end())
                probeOpts.flavors.push_back(d.isa);
        const ShrinkResult shrunk = shrink(
            module,
            [&](const mir::Module &cand) {
                return !runDifferential(cand, probeOpts)
                            .divergences.empty();
            },
            options.shrinkOpts);
        failure.shrunk = shrunk.module;
        failure.shrunkInsts = countInsts(shrunk.module);
        failure.wasShrunk =
            failure.shrunkInsts < failure.originalInsts;
    }

    if (!options.outDir.empty())
        failure.reproPath = writeReproducer(options.outDir, failure);
    status = "FAIL " + failure.summary();
    return true;
}

} // namespace

FuzzSummary
runFuzz(const FuzzOptions &options)
{
    FuzzSummary summary;
    const u64 nSeeds = options.seedEnd > options.seedBegin
                           ? options.seedEnd - options.seedBegin
                           : 0;
    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<u64>(threads, nSeeds ? nSeeds : 1);

    sched::WorkQueue queue(nSeeds);
    std::mutex mergeMutex;
    auto worker = [&](unsigned) {
        while (const auto slot = queue.next()) {
            const u64 seed = options.seedBegin + *slot;
            const bool auditThisSeed =
                options.auditEvery != 0 &&
                *slot % options.auditEvery == 0;
            FuzzSummary local;
            FuzzFailure failure;
            std::string status;
            const bool failed = runSeed(seed, auditThisSeed, options,
                                        local, failure, status);
            std::lock_guard<std::mutex> lock(mergeMutex);
            summary.ran += local.ran;
            summary.skipped += local.skipped;
            summary.audited += local.audited;
            if (failed)
                summary.failures.push_back(std::move(failure));
            if (options.progress)
                options.progress(seed, status);
        }
    };
    sched::runWorkers(threads, worker);

    std::sort(summary.failures.begin(), summary.failures.end(),
              [](const FuzzFailure &a, const FuzzFailure &b) {
                  return a.seed < b.seed;
              });
    return summary;
}

} // namespace marvel::fuzz
