/**
 * @file
 * Differential-fuzzing driver: ties the generator, differential
 * executor, shrinker and determinism auditor into one seed-range
 * sweep, writing a replayable reproducer for every failure.
 *
 * A reproducer is `<outDir>/seed-<seed>.mir`: metadata comments
 * (seed, divergences, module digests, the exact CLI replay command)
 * followed by the disassembly of the minimized module. Since
 * generate() is pure in the seed, re-running the named seed regrows
 * the original failing module bit-identically.
 */

#ifndef MARVEL_FUZZ_FUZZ_HH
#define MARVEL_FUZZ_FUZZ_HH

#include <functional>
#include <string>
#include <vector>

#include "fuzz/audit.hh"
#include "fuzz/diff.hh"
#include "fuzz/gen.hh"
#include "fuzz/shrink.hh"

namespace marvel::fuzz
{

struct FuzzOptions
{
    u64 seedBegin = 0;
    u64 seedEnd = 16; ///< exclusive

    GenOptions gen;
    DiffOptions diff;

    bool shrinkFailures = true;
    ShrinkOptions shrinkOpts;

    /** Audit determinism on every Nth seed; 0 disables. */
    unsigned auditEvery = 0;
    AuditOptions audit;

    /** Reproducer directory; empty disables writing. */
    std::string outDir = "results/fuzz";

    /**
     * Parallel seed workers; 0 = hardware concurrency. Seeds are
     * independent and every worker derives its own deterministic
     * state from the seed, so the summary is identical regardless of
     * thread count (failures are reported in seed order).
     */
    unsigned threads = 1;

    /** Optional per-seed progress sink (status line per seed). */
    std::function<void(u64 seed, const std::string &status)> progress;
};

/** One failing seed, with everything needed to act on it. */
struct FuzzFailure
{
    u64 seed = 0;
    std::vector<Divergence> divergences;
    std::vector<AuditFailure> auditFailures;

    mir::Module original;
    mir::Module shrunk;       ///< == original when not shrunk
    bool wasShrunk = false;
    std::size_t originalInsts = 0;
    std::size_t shrunkInsts = 0;

    std::string reproPath; ///< empty when writing was disabled

    /** One-line description. */
    std::string summary() const;
};

struct FuzzSummary
{
    u64 ran = 0;     ///< seeds fully executed
    u64 skipped = 0; ///< reference run timed out
    u64 audited = 0; ///< seeds that went through the auditor
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }
};

/** Sweep [seedBegin, seedEnd). */
FuzzSummary runFuzz(const FuzzOptions &options);

/**
 * Write the reproducer file for one failure; returns its path.
 * Creates outDir as needed.
 */
std::string writeReproducer(const std::string &outDir,
                            const FuzzFailure &failure);

} // namespace marvel::fuzz

#endif // MARVEL_FUZZ_FUZZ_HH
