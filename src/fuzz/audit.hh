/**
 * @file
 * Determinism audits for the fault-injection pipeline.
 *
 * The whole resilience methodology rests on exact replayability: the
 * same (program, fault mask, seed) must produce the same verdict,
 * stats snapshot, and architectural end state every time, including
 * when the run starts from a restored checkpoint. The auditor takes a
 * generated program and, per ISA flavor:
 *
 *  1. compiles twice and compares program digests;
 *  2. executes the golden run twice and compares cycles, exit state,
 *     output, commit trace, and checkpoint digests;
 *  3. cross-checks checkpoint restore fidelity (a restored system must
 *     digest identically to the snapshot it came from);
 *  4. derives fault masks from the audit seed and runs each twice
 *     through checkpoint restore, requiring identical verdicts, stats
 *     snapshots, and architectural digests.
 *
 * Programs audited this way must contain the Checkpoint/SwitchCpu
 * window ops (GenOptions::magicWindow).
 */

#ifndef MARVEL_FUZZ_AUDIT_HH
#define MARVEL_FUZZ_AUDIT_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "mir/mir.hh"

namespace marvel::fuzz
{

struct AuditOptions
{
    /** Flavors to audit; defaults to all three. */
    std::vector<isa::IsaKind> flavors;

    /** Distinct fault masks re-run per flavor. */
    unsigned faultsPerIsa = 2;

    u64 maxCycles = 100'000'000; ///< golden-run budget

    /**
     * Build the golden run with a checkpoint ladder of this many rungs
     * and audit it too: rung capture must be deterministic, resuming
     * from a randomly chosen rung must reproduce the straight-through
     * end state bit-identically, and every fault mask re-run with the
     * ladder disabled must keep its verdict, digest, and stats. 0
     * audits without a ladder (the pre-ladder behavior).
     */
    unsigned ladderRungs = 0;

    /**
     * Audit the convergence early-stop too (inert unless the golden
     * ladder exists, i.e. ladderRungs > 0 and the window is long
     * enough to capture rungs): every fault mask is additionally run
     * with the stop-check On twice — the verdict, stop point, arch
     * digest, and stats snapshot must all repeat — and the On verdict
     * must match the full-simulation (Off) verdict. Audit mode is
     * cross-checked as well: its real verdict must match Off's, and
     * when a stop-check matched, its predicted verdict must match the
     * real one and its stop point must match On's.
     */
    bool earlyStop = false;

    /**
     * Extra fault-model specs (fi::FaultModelSpec::parse strings) to
     * audit ALONGSIDE the legacy single-bit derivation: every audited
     * mask is re-derived under each listed spec and pushed through
     * the same re-run / ladder-invisibility / early-stop
     * cross-checks. A spec that cannot apply to a drawn structure
     * (e.g. a targeted entry range beyond its geometry) is skipped
     * for that draw.
     */
    std::vector<std::string> faultModels;
};

/** One detected nondeterminism. */
struct AuditFailure
{
    isa::IsaKind isa;
    std::string what;

    std::string toString() const;
};

struct AuditResult
{
    std::vector<AuditFailure> failures;

    bool ok() const { return failures.empty(); }
};

/**
 * Audit one module. `seed` drives the fault-mask derivation, so one
 * (module, seed) pair audits a fixed, reproducible set of masks.
 */
AuditResult auditDeterminism(const mir::Module &module, u64 seed,
                             const AuditOptions &options = {});

} // namespace marvel::fuzz

#endif // MARVEL_FUZZ_AUDIT_HH
