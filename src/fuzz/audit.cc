#include "fuzz/audit.hh"

#include <cstdio>

#include "common/bits.hh"
#include "common/log.hh"
#include "fi/campaign.hh"
#include "fi/fault.hh"
#include "fi/targets.hh"
#include "isa/codegen.hh"
#include "sched/replay.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "stats/diff.hh"

namespace marvel::fuzz
{

std::string
AuditFailure::toString() const
{
    std::string s = "[";
    s += isa::isaName(isa);
    s += "] ";
    s += what;
    return s;
}

namespace
{

/** Order-sensitive digest of a commit trace. */
u64
traceDigest(const std::vector<cpu::CommitRecord> &trace)
{
    u64 hash = kFnvOffset;
    for (const cpu::CommitRecord &rec : trace) {
        hash = fnv1aWord(rec.pc, hash);
        hash = fnv1aWord((u64(rec.op) << 16) | (u64(rec.dstCls) << 8) |
                             rec.dstIdx,
                         hash);
        hash = fnv1aWord(rec.result, hash);
        hash = fnv1aWord(rec.memAddr, hash);
        hash = fnv1aWord(rec.storeData, hash);
    }
    return hash;
}

/** Structures the fault-mask derivation draws from. */
const fi::TargetId kAuditTargets[] = {
    fi::TargetId::PrfInt,    fi::TargetId::LoadQueue,
    fi::TargetId::StoreQueue, fi::TargetId::Rob,
    fi::TargetId::RenameMap, fi::TargetId::L1D,
};

} // namespace

AuditResult
auditDeterminism(const mir::Module &module, u64 seed,
                 const AuditOptions &options)
{
    AuditResult result;
    std::vector<isa::IsaKind> flavors = options.flavors;
    if (flavors.empty())
        flavors.assign(isa::kAllIsas, isa::kAllIsas + isa::kNumIsas);

    for (isa::IsaKind kind : flavors) {
        auto fail = [&](const std::string &what) {
            result.failures.push_back(AuditFailure{kind, what});
        };
        char buf[192];

        // 1. Codegen must be a pure function of (module, flavor).
        const isa::Program program = isa::compile(module, kind);
        if (isa::programDigest(program) !=
            isa::programDigest(isa::compile(module, kind))) {
            fail("codegen nondeterminism: program digests differ");
            continue;
        }

        // 2. Golden-run determinism from reset.
        const soc::SystemConfig config =
            soc::preset(isa::isaName(kind));
        const fi::GoldenRun g1 = fi::runGolden(
            config, program, options.maxCycles, options.ladderRungs);
        const fi::GoldenRun g2 = fi::runGolden(
            config, program, options.maxCycles, options.ladderRungs);
        if (g1.preCycles != g2.preCycles ||
            g1.windowCycles != g2.windowCycles ||
            g1.totalCycles != g2.totalCycles) {
            std::snprintf(buf, sizeof(buf),
                          "golden timing differs: %llu/%llu/%llu vs "
                          "%llu/%llu/%llu cycles",
                          (unsigned long long)g1.preCycles,
                          (unsigned long long)g1.windowCycles,
                          (unsigned long long)g1.totalCycles,
                          (unsigned long long)g2.preCycles,
                          (unsigned long long)g2.windowCycles,
                          (unsigned long long)g2.totalCycles);
            fail(buf);
        }
        if (g1.exitCode != g2.exitCode || g1.output != g2.output ||
            g1.console != g2.console)
            fail("golden architectural results differ between runs");
        if (traceDigest(g1.trace) != traceDigest(g2.trace))
            fail("golden commit traces differ between runs");
        if (soc::archStateDigest(g1.checkpoint.view()) !=
            soc::archStateDigest(g2.checkpoint.view()))
            fail("golden checkpoint digests differ between runs");
        if (g1.ladder.size() != g2.ladder.size()) {
            std::snprintf(buf, sizeof(buf),
                          "ladder capture nondeterminism: %zu vs %zu "
                          "rungs",
                          g1.ladder.size(), g2.ladder.size());
            fail(buf);
        } else {
            for (std::size_t r = 0; r < g1.ladder.size(); ++r) {
                if (g1.ladder[r].cycle != g2.ladder[r].cycle ||
                    g1.ladder[r].traceIndex !=
                        g2.ladder[r].traceIndex ||
                    soc::archStateDigest(
                        g1.ladder[r].checkpoint.view()) !=
                        soc::archStateDigest(
                            g2.ladder[r].checkpoint.view())) {
                    std::snprintf(buf, sizeof(buf),
                                  "ladder rung %zu differs between "
                                  "golden runs",
                                  r);
                    fail(buf);
                    break;
                }
            }
        }

        // 3. Restore fidelity: snapshot -> restore must round-trip.
        {
            const soc::System restored = g1.checkpoint.restore();
            if (soc::archStateDigest(restored) !=
                soc::archStateDigest(g1.checkpoint.view()))
                fail("checkpoint restore changed the arch state");
        }

        // 3b. Ladder-resume fidelity: running to completion from a
        // randomly chosen rung must be indistinguishable from the
        // straight-through execution — same exit, output, console,
        // and final architectural digest.
        if (!g1.ladder.empty()) {
            Rng lrng = Rng::forStream(
                seed, (u64(kind) << 32) | 0xFFFFFFFFull);
            const fi::LadderRung &rung =
                g1.ladder[lrng.below(g1.ladder.size())];
            auto runToExit = [&](soc::System sys) -> u64 {
                for (u64 c = 0; c < options.maxCycles && !sys.exited;
                     ++c) {
                    sys.tick();
                    sys.cpu.checkpointRequest = false;
                    sys.cpu.switchCpuRequest = false;
                    if (sys.cpu.crashed() || sys.cluster.errored()) {
                        fail("fault-free replay crashed during the "
                             "ladder-resume audit");
                        return 0;
                    }
                }
                if (!sys.exited) {
                    fail("fault-free replay hit the cycle budget "
                         "during the ladder-resume audit");
                    return 0;
                }
                if (sys.exitCode != g1.exitCode ||
                    sys.outputWindow() != g1.output ||
                    sys.console != g1.console)
                    fail("ladder-resume architectural results differ "
                         "from the golden run");
                return soc::archStateDigest(sys);
            };
            const u64 straight = runToExit(g1.checkpoint.restore());
            const u64 resumed = runToExit(rung.checkpoint.restore());
            if (straight != resumed) {
                std::snprintf(
                    buf, sizeof(buf),
                    "resume from rung at cycle %llu diverged from "
                    "the straight-through run (digest %016llx vs "
                    "%016llx)",
                    (unsigned long long)rung.cycle,
                    (unsigned long long)resumed,
                    (unsigned long long)straight);
                fail(buf);
            }
        }

        // 4. Faulty-run determinism through checkpoint restore. Model
        // slot 0 is the legacy single-bit derivation (its RNG stream
        // is unchanged from pre-fault-model audits); each extra spec
        // re-derives masks on its own stream and runs the same
        // checks.
        std::vector<std::pair<std::string, fi::FaultSampler>>
            samplers;
        samplers.emplace_back("", fi::FaultSampler{});
        for (const std::string &specText : options.faultModels)
            samplers.emplace_back(
                specText,
                fi::makeSampler(g1, fi::FaultModel::Transient,
                                fi::FaultModelSpec::parse(specText)));
        const unsigned nTargets =
            sizeof(kAuditTargets) / sizeof(kAuditTargets[0]);
        for (unsigned m = 0; m < samplers.size(); ++m)
        for (unsigned i = 0; i < options.faultsPerIsa; ++i) {
            Rng rng = Rng::forStream(
                seed, (u64(kind) << 32) | (u64(m) << 20) | i);
            fi::TargetRef ref;
            ref.id = kAuditTargets[rng.below(nTargets)];
            const fi::TargetInfo info =
                fi::targetInfo(g1.checkpoint.view(), ref);
            if (info.geometry.totalBits() == 0)
                continue;
            fi::FaultMask mask;
            try {
                mask = samplers[m].second.sample(
                    rng, ref, info.geometry, g1.windowCycles);
            } catch (const FatalError &) {
                continue; // spec inapplicable to this structure
            }
            const std::string where =
                samplers[m].first.empty()
                    ? info.name
                    : info.name + " [" + samplers[m].first + "]";

            fi::InjectionOptions opts;
            opts.computeHvf = true;
            stats::Snapshot statsA, statsB;
            u64 digestA = 0, digestB = 0;
            opts.statsOut = &statsA;
            opts.archDigestOut = &digestA;
            const fi::RunVerdict va =
                fi::runWithFault(g1, mask, opts);
            opts.statsOut = &statsB;
            opts.archDigestOut = &digestB;
            const fi::RunVerdict vb =
                fi::runWithFault(g1, mask, opts);

            if (!sched::verdictsIdentical(va, vb)) {
                std::snprintf(
                    buf, sizeof(buf),
                    "fault %u on %s: verdicts differ (%s vs %s)", i,
                    where.c_str(), va.toString().c_str(),
                    vb.toString().c_str());
                fail(buf);
                continue;
            }
            if (digestA != digestB) {
                std::snprintf(buf, sizeof(buf),
                              "fault %u on %s: arch digests differ",
                              i, where.c_str());
                fail(buf);
            }
            const stats::DiffReport dr = stats::diff(statsA, statsB);
            if (!dr.identical() || dr.unmatched != 0) {
                std::snprintf(
                    buf, sizeof(buf),
                    "fault %u on %s: stats snapshots differ "
                    "(%zu facets moved)",
                    i, where.c_str(), dr.entries.size());
                fail(buf);
            }

            // Ladder must be invisible to the verdict: the same mask
            // restored from the window start has to reproduce the
            // fast-forwarded run bit-for-bit.
            if (!g1.ladder.empty()) {
                stats::Snapshot statsC;
                u64 digestC = 0;
                opts.useLadder = false;
                opts.statsOut = &statsC;
                opts.archDigestOut = &digestC;
                const fi::RunVerdict vc =
                    fi::runWithFault(g1, mask, opts);
                opts.useLadder = true;
                if (!sched::verdictsIdentical(va, vc)) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "fault %u on %s: ladder changed the verdict "
                        "(%s vs %s)",
                        i, where.c_str(), va.toString().c_str(),
                        vc.toString().c_str());
                    fail(buf);
                    continue;
                }
                if (digestA != digestC) {
                    std::snprintf(buf, sizeof(buf),
                                  "fault %u on %s: ladder changed "
                                  "the final arch digest",
                                  i, where.c_str());
                    fail(buf);
                }
                const stats::DiffReport dl =
                    stats::diff(statsA, statsC);
                if (!dl.identical() || dl.unmatched != 0) {
                    std::snprintf(buf, sizeof(buf),
                                  "fault %u on %s: ladder changed "
                                  "the stats snapshot",
                                  i, where.c_str());
                    fail(buf);
                }
            }

            // 4b. Convergence early-stop determinism. A stopped run's
            // digest and stats legitimately differ from the full
            // simulation (it never ran the tail), so On compares
            // digest/stats only against another On run; verdicts must
            // agree across all three modes.
            if (options.earlyStop && !g1.ladder.empty()) {
                stats::Snapshot statsD, statsE;
                u64 digestD = 0, digestE = 0;
                opts.earlyStop = fi::EarlyStopMode::On;
                opts.statsOut = &statsD;
                opts.archDigestOut = &digestD;
                const fi::RunVerdict vd =
                    fi::runWithFault(g1, mask, opts);
                opts.statsOut = &statsE;
                opts.archDigestOut = &digestE;
                const fi::RunVerdict ve =
                    fi::runWithFault(g1, mask, opts);
                opts.statsOut = nullptr;
                opts.archDigestOut = nullptr;

                if (!sched::verdictsIdentical(vd, ve) ||
                    vd.stoppedAt != ve.stoppedAt) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "fault %u on %s: early-stop runs differ "
                        "(%s @%llu vs %s @%llu)",
                        i, where.c_str(), vd.toString().c_str(),
                        (unsigned long long)vd.stoppedAt,
                        ve.toString().c_str(),
                        (unsigned long long)ve.stoppedAt);
                    fail(buf);
                } else if (digestD != digestE) {
                    std::snprintf(buf, sizeof(buf),
                                  "fault %u on %s: early-stop arch "
                                  "digests differ between runs",
                                  i, where.c_str());
                    fail(buf);
                } else if (const stats::DiffReport de =
                               stats::diff(statsD, statsE);
                           !de.identical() || de.unmatched != 0) {
                    std::snprintf(buf, sizeof(buf),
                                  "fault %u on %s: early-stop stats "
                                  "snapshots differ between runs",
                                  i, where.c_str());
                    fail(buf);
                }
                if (!sched::verdictsIdentical(va, vd)) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "fault %u on %s: early stop changed the "
                        "verdict (%s vs %s)",
                        i, where.c_str(), va.toString().c_str(),
                        vd.toString().c_str());
                    fail(buf);
                }

                fi::EarlyStopAudit audit;
                opts.earlyStop = fi::EarlyStopMode::Audit;
                opts.auditOut = &audit;
                const fi::RunVerdict vf =
                    fi::runWithFault(g1, mask, opts);
                opts.auditOut = nullptr;
                opts.earlyStop = fi::EarlyStopMode::Off;

                if (!sched::verdictsIdentical(va, vf)) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "fault %u on %s: audit-mode stop checks "
                        "perturbed the run (%s vs %s)",
                        i, where.c_str(), va.toString().c_str(),
                        vf.toString().c_str());
                    fail(buf);
                } else if (audit.stopped) {
                    if (!sched::verdictsIdentical(audit.predicted,
                                                  vf)) {
                        std::snprintf(
                            buf, sizeof(buf),
                            "fault %u on %s: fabricated verdict %s "
                            "!= simulated %s",
                            i, where.c_str(),
                            audit.predicted.toString().c_str(),
                            vf.toString().c_str());
                        fail(buf);
                    }
                    if (vd.stoppedAt != audit.stoppedAt) {
                        std::snprintf(
                            buf, sizeof(buf),
                            "fault %u on %s: On stopped at %llu but "
                            "Audit observed %llu",
                            i, where.c_str(),
                            (unsigned long long)vd.stoppedAt,
                            (unsigned long long)audit.stoppedAt);
                        fail(buf);
                    }
                } else if (vd.stoppedAt != 0) {
                    std::snprintf(
                        buf, sizeof(buf),
                        "fault %u on %s: On stopped at %llu but "
                        "Audit saw no convergence",
                        i, where.c_str(),
                        (unsigned long long)vd.stoppedAt);
                    fail(buf);
                }
            }
        }
    }
    return result;
}

} // namespace marvel::fuzz
