#include "fuzz/audit.hh"

#include <cstdio>

#include "common/bits.hh"
#include "fi/campaign.hh"
#include "fi/fault.hh"
#include "fi/targets.hh"
#include "isa/codegen.hh"
#include "sched/replay.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "stats/diff.hh"

namespace marvel::fuzz
{

std::string
AuditFailure::toString() const
{
    std::string s = "[";
    s += isa::isaName(isa);
    s += "] ";
    s += what;
    return s;
}

namespace
{

/** Order-sensitive digest of a commit trace. */
u64
traceDigest(const std::vector<cpu::CommitRecord> &trace)
{
    u64 hash = kFnvOffset;
    for (const cpu::CommitRecord &rec : trace) {
        hash = fnv1aWord(rec.pc, hash);
        hash = fnv1aWord((u64(rec.op) << 16) | (u64(rec.dstCls) << 8) |
                             rec.dstIdx,
                         hash);
        hash = fnv1aWord(rec.result, hash);
        hash = fnv1aWord(rec.memAddr, hash);
        hash = fnv1aWord(rec.storeData, hash);
    }
    return hash;
}

/** Structures the fault-mask derivation draws from. */
const fi::TargetId kAuditTargets[] = {
    fi::TargetId::PrfInt,    fi::TargetId::LoadQueue,
    fi::TargetId::StoreQueue, fi::TargetId::Rob,
    fi::TargetId::RenameMap, fi::TargetId::L1D,
};

} // namespace

AuditResult
auditDeterminism(const mir::Module &module, u64 seed,
                 const AuditOptions &options)
{
    AuditResult result;
    std::vector<isa::IsaKind> flavors = options.flavors;
    if (flavors.empty())
        flavors.assign(isa::kAllIsas, isa::kAllIsas + isa::kNumIsas);

    for (isa::IsaKind kind : flavors) {
        auto fail = [&](const std::string &what) {
            result.failures.push_back(AuditFailure{kind, what});
        };
        char buf[192];

        // 1. Codegen must be a pure function of (module, flavor).
        const isa::Program program = isa::compile(module, kind);
        if (isa::programDigest(program) !=
            isa::programDigest(isa::compile(module, kind))) {
            fail("codegen nondeterminism: program digests differ");
            continue;
        }

        // 2. Golden-run determinism from reset.
        const soc::SystemConfig config =
            soc::preset(isa::isaName(kind));
        const fi::GoldenRun g1 =
            fi::runGolden(config, program, options.maxCycles);
        const fi::GoldenRun g2 =
            fi::runGolden(config, program, options.maxCycles);
        if (g1.preCycles != g2.preCycles ||
            g1.windowCycles != g2.windowCycles ||
            g1.totalCycles != g2.totalCycles) {
            std::snprintf(buf, sizeof(buf),
                          "golden timing differs: %llu/%llu/%llu vs "
                          "%llu/%llu/%llu cycles",
                          (unsigned long long)g1.preCycles,
                          (unsigned long long)g1.windowCycles,
                          (unsigned long long)g1.totalCycles,
                          (unsigned long long)g2.preCycles,
                          (unsigned long long)g2.windowCycles,
                          (unsigned long long)g2.totalCycles);
            fail(buf);
        }
        if (g1.exitCode != g2.exitCode || g1.output != g2.output ||
            g1.console != g2.console)
            fail("golden architectural results differ between runs");
        if (traceDigest(g1.trace) != traceDigest(g2.trace))
            fail("golden commit traces differ between runs");
        if (soc::archStateDigest(g1.checkpoint.view()) !=
            soc::archStateDigest(g2.checkpoint.view()))
            fail("golden checkpoint digests differ between runs");

        // 3. Restore fidelity: snapshot -> restore must round-trip.
        {
            const soc::System restored = g1.checkpoint.restore();
            if (soc::archStateDigest(restored) !=
                soc::archStateDigest(g1.checkpoint.view()))
                fail("checkpoint restore changed the arch state");
        }

        // 4. Faulty-run determinism through checkpoint restore.
        const unsigned nTargets =
            sizeof(kAuditTargets) / sizeof(kAuditTargets[0]);
        for (unsigned i = 0; i < options.faultsPerIsa; ++i) {
            Rng rng = Rng::forStream(
                seed, (u64(kind) << 32) | i);
            fi::TargetRef ref;
            ref.id = kAuditTargets[rng.below(nTargets)];
            const fi::TargetInfo info =
                fi::targetInfo(g1.checkpoint.view(), ref);
            if (info.geometry.totalBits() == 0)
                continue;
            fi::FaultMask mask;
            mask.faults.push_back(fi::randomFault(
                rng, ref, info.geometry, g1.windowCycles,
                fi::FaultModel::Transient));

            fi::InjectionOptions opts;
            opts.computeHvf = true;
            stats::Snapshot statsA, statsB;
            u64 digestA = 0, digestB = 0;
            opts.statsOut = &statsA;
            opts.archDigestOut = &digestA;
            const fi::RunVerdict va =
                fi::runWithFault(g1, mask, opts);
            opts.statsOut = &statsB;
            opts.archDigestOut = &digestB;
            const fi::RunVerdict vb =
                fi::runWithFault(g1, mask, opts);

            if (!sched::verdictsIdentical(va, vb)) {
                std::snprintf(
                    buf, sizeof(buf),
                    "fault %u on %s: verdicts differ (%s vs %s)", i,
                    info.name.c_str(), va.toString().c_str(),
                    vb.toString().c_str());
                fail(buf);
                continue;
            }
            if (digestA != digestB) {
                std::snprintf(buf, sizeof(buf),
                              "fault %u on %s: arch digests differ",
                              i, info.name.c_str());
                fail(buf);
            }
            const stats::DiffReport dr = stats::diff(statsA, statsB);
            if (!dr.identical() || dr.unmatched != 0) {
                std::snprintf(
                    buf, sizeof(buf),
                    "fault %u on %s: stats snapshots differ "
                    "(%zu facets moved)",
                    i, info.name.c_str(), dr.entries.size());
                fail(buf);
            }
        }
    }
    return result;
}

} // namespace marvel::fuzz
