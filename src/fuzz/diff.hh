/**
 * @file
 * Differential execution: run one MIR module through the reference
 * interpreter and through codegen + the out-of-order core on each ISA
 * flavor, and compare everything architecturally visible — exit code,
 * OUTPUT window, console bytes — plus, optionally, a same-flavor
 * re-run that must be bit-identical (cycle count, architectural
 * register digest, full stats snapshot).
 *
 * Any mismatch is a Divergence naming the flavor and what differed;
 * the fuzz driver shrinks the module while the divergence persists.
 */

#ifndef MARVEL_FUZZ_DIFF_HH
#define MARVEL_FUZZ_DIFF_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/codegen.hh"
#include "mir/mir.hh"

namespace marvel::fuzz
{

/** What a CPU run disagreed about. */
enum class DivergenceKind : u8
{
    ExitCode,     ///< exit code != interpreter result
    Output,       ///< OUTPUT window != interpreter memory image
    Console,      ///< console bytes differ (generator emits none)
    Crash,        ///< CPU crashed; interpreter finished cleanly
    Timeout,      ///< CPU exceeded the cycle budget
    Nondeterminism,        ///< identical re-run differed
    CodegenNondeterminism, ///< two compiles of one module differed
};

const char *divergenceKindName(DivergenceKind kind);

/** One observed disagreement. */
struct Divergence
{
    DivergenceKind kind;
    isa::IsaKind isa;
    std::string detail;

    std::string toString() const;
};

/** Differential-run parameters. */
struct DiffOptions
{
    /** Flavors to execute; defaults to all three. */
    std::vector<isa::IsaKind> flavors;

    u64 maxCycles = 4'000'000;     ///< per-flavor CPU budget
    u64 maxInterpSteps = 1'000'000; ///< reference-run budget

    /**
     * Re-run each flavor from a fresh system and require bit-identical
     * results (exit, output, cycles, architectural register digest,
     * stats snapshot). Doubles the simulation cost.
     */
    bool checkDeterminism = false;

    /**
     * Test hook: applied to the compiled program before execution
     * (NOT to the reference run). Lets tests plant a deterministic
     * "miscompile" and assert the harness catches and shrinks it.
     */
    std::function<void(isa::Program &)> programHook;
};

/** Outcome of one differential run. */
struct DiffResult
{
    /** Reference run hit maxInterpSteps: not a verdict, skip seed. */
    bool interpTimedOut = false;

    i64 exitValue = 0; ///< reference result
    std::vector<Divergence> divergences;

    bool
    clean() const
    {
        return !interpTimedOut && divergences.empty();
    }
};

/** Run the module differentially. The module must be verifier-clean. */
DiffResult runDifferential(const mir::Module &module,
                           const DiffOptions &options = {});

} // namespace marvel::fuzz

#endif // MARVEL_FUZZ_DIFF_HH
