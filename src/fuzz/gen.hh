/**
 * @file
 * Seeded random MIR program generator.
 *
 * Programs are drawn from a grammar covering arithmetic, logic,
 * floating point, memory traffic over declared globals, structured
 * control flow (diamonds and bounded counted loops) and a call DAG —
 * while construction rules guarantee every emitted module is
 * verifier-clean and semantically safe to execute on both the
 * reference interpreter and the out-of-order CPU model:
 *
 *  - divisors are forced odd (`x | 1`) so no division ever traps;
 *  - shift amounts are masked to [0, 63];
 *  - memory accesses index declared globals with masked, size-aligned
 *    offsets (the strictest flavor forbids unaligned accesses);
 *  - FtoI operands are built from bounded integer domains so the
 *    double -> i64 truncation is always in range (never UB);
 *  - new virtual registers are defined only on the always-executed
 *    spine; conditional arms and loop bodies communicate through
 *    pre-defined accumulators, so no path reads an undefined vreg.
 *
 * generate(seed) is a pure function of (seed, options): the same pair
 * always yields the bit-identical module, which is what makes fuzz
 * reproducers replayable from just the seed.
 */

#ifndef MARVEL_FUZZ_GEN_HH
#define MARVEL_FUZZ_GEN_HH

#include "common/types.hh"
#include "mir/mir.hh"

namespace marvel::fuzz
{

/** Knobs bounding the generated program shape. */
struct GenOptions
{
    unsigned statements = 24;   ///< top-level statements in main
    unsigned maxCallees = 2;    ///< extra functions main may call
    unsigned maxLoopTrip = 10;  ///< counted-loop iteration bound
    bool floats = true;         ///< emit FP chains
    bool memory = true;         ///< emit global-memory traffic
    bool calls = true;          ///< emit calls
    bool loops = true;          ///< emit bounded loops
    bool branches = true;       ///< emit if/else diamonds

    /**
     * Wrap the statement body in Checkpoint ... SwitchCpu magic ops so
     * the program defines a fault-injection window (required by the
     * fi-based determinism audit; harmless for plain differential
     * runs).
     */
    bool magicWindow = true;
};

/** Generate one verifier-clean module; pure in (seed, options). */
mir::Module generate(u64 seed, const GenOptions &options = {});

} // namespace marvel::fuzz

#endif // MARVEL_FUZZ_GEN_HH
