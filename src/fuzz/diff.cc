#include "fuzz/diff.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/log.hh"
#include "mir/interp.hh"
#include "soc/builder.hh"
#include "soc/checkpoint.hh"
#include "soc/system.hh"
#include "stats/diff.hh"

namespace marvel::fuzz
{

const char *
divergenceKindName(DivergenceKind kind)
{
    switch (kind) {
      case DivergenceKind::ExitCode: return "exit-code";
      case DivergenceKind::Output: return "output";
      case DivergenceKind::Console: return "console";
      case DivergenceKind::Crash: return "crash";
      case DivergenceKind::Timeout: return "timeout";
      case DivergenceKind::Nondeterminism: return "nondeterminism";
      case DivergenceKind::CodegenNondeterminism:
        return "codegen-nondeterminism";
    }
    return "?";
}

std::string
Divergence::toString() const
{
    std::string s = "[";
    s += isa::isaName(isa);
    s += "] ";
    s += divergenceKindName(kind);
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    return s;
}

namespace
{

std::string
format(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Everything we compare from one CPU execution. */
struct CpuRun
{
    soc::RunExit exit;
    i64 exitCode = 0;
    std::vector<u8> output;
    std::string console;
    std::string crashReason;
    Cycle cycles = 0;
    u64 archRegDigest = 0;
    u64 archStateDigest = 0;
    stats::Snapshot statsSnap;
};

CpuRun
executeOnCpu(const isa::Program &program, isa::IsaKind kind,
             u64 maxCycles)
{
    soc::System sys(soc::preset(isa::isaName(kind)));
    sys.loadProgram(program);
    // Generated programs may carry Checkpoint/SwitchCpu magic ops for
    // the fi-based audits; here they are mere milestones, so resume
    // until a terminal exit.
    soc::RunExit exit = sys.run(maxCycles);
    while ((exit == soc::RunExit::Checkpoint ||
            exit == soc::RunExit::SwitchCpu) &&
           sys.totalCycles < maxCycles)
        exit = sys.run(maxCycles - sys.totalCycles);

    CpuRun run;
    run.exit = exit;
    run.exitCode = sys.exitCode;
    run.output = sys.outputWindow();
    run.console = sys.console;
    run.crashReason = sys.crashReason();
    run.cycles = sys.totalCycles;
    run.archRegDigest = sys.cpu.archRegDigest();
    run.archStateDigest = soc::archStateDigest(sys);
    run.statsSnap = sys.statsSnapshot();
    return run;
}

/** First byte index where the vectors differ (they are equal-sized). */
std::string
firstMismatch(const std::vector<u8> &a, const std::vector<u8> &b)
{
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i)
        if (a[i] != b[i])
            return format("byte +0x%zx: ref=0x%02x cpu=0x%02x", i,
                          b[i], a[i]);
    return format("size %zu vs %zu", a.size(), b.size());
}

} // namespace

DiffResult
runDifferential(const mir::Module &module, const DiffOptions &options)
{
    mir::verify(module);

    DiffResult result;
    const mir::GoldenRun ref =
        mir::interpretModule(module, {}, options.maxInterpSteps);
    if (ref.result.timedOut) {
        result.interpTimedOut = true;
        return result;
    }
    result.exitValue = ref.result.exitValue;

    std::vector<isa::IsaKind> flavors = options.flavors;
    if (flavors.empty())
        flavors.assign(isa::kAllIsas,
                       isa::kAllIsas + isa::kNumIsas);

    for (isa::IsaKind kind : flavors) {
        auto diverge = [&](DivergenceKind dk, std::string detail) {
            result.divergences.push_back(
                Divergence{dk, kind, std::move(detail)});
        };

        // Codegen determinism: two compiles must digest identically.
        isa::Program program = isa::compile(module, kind);
        {
            const isa::Program again = isa::compile(module, kind);
            if (isa::programDigest(program) !=
                isa::programDigest(again))
                diverge(DivergenceKind::CodegenNondeterminism,
                        format("digest %016llx vs %016llx",
                               (unsigned long long)
                                   isa::programDigest(program),
                               (unsigned long long)
                                   isa::programDigest(again)));
        }
        if (options.programHook)
            options.programHook(program);

        const CpuRun run =
            executeOnCpu(program, kind, options.maxCycles);
        switch (run.exit) {
          case soc::RunExit::Crashed:
            diverge(DivergenceKind::Crash, run.crashReason);
            continue;
          case soc::RunExit::Timeout:
          case soc::RunExit::Checkpoint:
          case soc::RunExit::SwitchCpu:
            diverge(DivergenceKind::Timeout,
                    format("no exit within %llu cycles",
                           (unsigned long long)options.maxCycles));
            continue;
          case soc::RunExit::Exited:
            break;
        }

        if (run.exitCode != ref.result.exitValue)
            diverge(DivergenceKind::ExitCode,
                    format("ref=%lld cpu=%lld",
                           (long long)ref.result.exitValue,
                           (long long)run.exitCode));
        if (run.output != ref.output)
            diverge(DivergenceKind::Output,
                    firstMismatch(run.output, ref.output));
        if (!run.console.empty())
            diverge(DivergenceKind::Console,
                    format("%zu unexpected bytes",
                           run.console.size()));

        if (!options.checkDeterminism)
            continue;

        // Bit-identical re-run from a fresh system.
        const CpuRun rerun =
            executeOnCpu(program, kind, options.maxCycles);
        if (rerun.exit != run.exit ||
            rerun.exitCode != run.exitCode ||
            rerun.output != run.output ||
            rerun.console != run.console)
            diverge(DivergenceKind::Nondeterminism,
                    "architectural results differ between runs");
        else if (rerun.cycles != run.cycles)
            diverge(DivergenceKind::Nondeterminism,
                    format("cycle count %llu vs %llu",
                           (unsigned long long)run.cycles,
                           (unsigned long long)rerun.cycles));
        else if (rerun.archRegDigest != run.archRegDigest ||
                 rerun.archStateDigest != run.archStateDigest)
            diverge(DivergenceKind::Nondeterminism,
                    "architectural state digests differ");
        else {
            const stats::DiffReport dr =
                stats::diff(run.statsSnap, rerun.statsSnap);
            if (!dr.identical() || dr.unmatched != 0)
                diverge(DivergenceKind::Nondeterminism,
                        format("%zu stats facets moved between runs",
                               dr.entries.size()));
        }
    }
    return result;
}

} // namespace marvel::fuzz
