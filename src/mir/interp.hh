/**
 * @file
 * Reference interpreter for MIR.
 *
 * Executes a module functionally (no timing) against a flat memory image.
 * It is the golden functional model: integration tests compare the OUTPUT
 * window produced by each ISA's compiled binary on the cycle-level CPU,
 * and by the accelerator engine, against the interpreter's.
 */

#ifndef MARVEL_MIR_INTERP_HH
#define MARVEL_MIR_INTERP_HH

#include <vector>

#include "common/memmap.hh"
#include "common/types.hh"
#include "mir/mir.hh"
#include "stats/stats.hh"

namespace marvel::mir
{

/** Outcome of an interpreted execution. */
struct InterpResult
{
    i64 exitValue = 0;      ///< value returned by the entry function
    u64 steps = 0;          ///< MIR instructions executed
    bool timedOut = false;  ///< hit the step limit
};

/** Functional-model activity counters (instruction mix). */
struct InterpStats
{
    stats::Counter steps;    ///< MIR instructions executed
    stats::Counter loads;
    stats::Counter stores;
    stats::Counter branches; ///< jumps + conditional branches
    stats::Counter calls;

    /** Register the counters under g. */
    void regStats(stats::Group &g);
};

/**
 * MIR interpreter over a borrowed flat memory image.
 */
class Interp
{
  public:
    /**
     * @param module  verified module to execute
     * @param memory  flat image covering [0, memory.size())
     * @param layout  global addresses (from layoutGlobals)
     */
    Interp(const Module &module, std::vector<u8> &memory,
           const DataLayout &layout);

    /** Copy every global's initial bytes into memory. */
    void loadGlobals();

    /**
     * Run the entry function.
     * @param args     entry arguments (integer only)
     * @param maxSteps watchdog limit
     */
    InterpResult run(const std::vector<i64> &args = {},
                     u64 maxSteps = 200'000'000);

    InterpStats &stats() { return stats_; }
    const InterpStats &stats() const { return stats_; }

  private:
    Word callFunction(FuncId fid, const std::vector<Word> &args,
                      u64 maxSteps, u64 &steps, unsigned depth);

    u8 *memPtr(Addr addr, unsigned size);

    const Module &mod;
    std::vector<u8> &mem;
    const DataLayout &layout_;
    InterpStats stats_;
};

/**
 * Convenience: allocate a kMemSize image, load globals, run, and return
 * the OUTPUT window alongside the result.
 */
struct GoldenRun
{
    InterpResult result;
    std::vector<u8> output; ///< kOutputSize bytes
    std::vector<u8> memory; ///< full final image
};

GoldenRun interpretModule(const Module &module,
                          const std::vector<i64> &args = {},
                          u64 maxSteps = 200'000'000);

} // namespace marvel::mir

#endif // MARVEL_MIR_INTERP_HH
