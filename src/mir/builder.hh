/**
 * @file
 * Fluent construction API for MIR modules.
 *
 * Workload kernels (src/workloads) and accelerator designs
 * (src/accel/designs) are written against this builder.
 */

#ifndef MARVEL_MIR_BUILDER_HH
#define MARVEL_MIR_BUILDER_HH

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "mir/mir.hh"

namespace marvel::mir
{

class ModuleBuilder;

/**
 * Builds one function; instructions are appended to the current block.
 */
class FunctionBuilder
{
  public:
    FunctionBuilder(Module &module, FuncId id)
        : mod(module), fid(id)
    {
        // Entry block always exists.
        if (fn().blocks.empty())
            fn().blocks.emplace_back();
    }

    Function &fn() { return mod.functions[fid]; }
    FuncId id() const { return fid; }

    /** Allocate a fresh virtual register of the given type. */
    VReg
    newReg(Type type = Type::I64)
    {
        fn().vregTypes.push_back(type);
        return static_cast<VReg>(fn().vregTypes.size() - 1);
    }

    /** Create a new (empty) basic block and return its id. */
    BlockId
    newBlock()
    {
        fn().blocks.emplace_back();
        return static_cast<BlockId>(fn().blocks.size() - 1);
    }

    /** Switch the insertion point to `block`. */
    void setBlock(BlockId block) { cur = block; }

    /** Current insertion block. */
    BlockId block() const { return cur; }

    // --- constants -----------------------------------------------------
    VReg
    constI(i64 value)
    {
        VReg d = newReg(Type::I64);
        emit({.op = Op::ConstI, .dst = d, .imm = value});
        return d;
    }

    VReg
    constF(double value)
    {
        VReg d = newReg(Type::F64);
        emit({.op = Op::ConstF, .dst = d, .fimm = value});
        return d;
    }

    /** Address of a global by name. */
    VReg
    gaddr(const std::string &name)
    {
        VReg d = newReg(Type::I64);
        emit({.op = Op::GAddr, .dst = d,
              .imm = static_cast<i64>(mod.globalId(name))});
        return d;
    }

    // --- arithmetic ----------------------------------------------------
    VReg
    binop(Op op, VReg a, VReg b)
    {
        VReg d = newReg(isFloatOp(op) && op != Op::FtoI &&
                        op != Op::FCmpEq && op != Op::FCmpLt &&
                        op != Op::FCmpLe ? Type::F64 : Type::I64);
        emit({.op = op, .dst = d, .a = a, .b = b});
        return d;
    }

    VReg add(VReg a, VReg b) { return binop(Op::Add, a, b); }
    VReg sub(VReg a, VReg b) { return binop(Op::Sub, a, b); }
    VReg mul(VReg a, VReg b) { return binop(Op::Mul, a, b); }
    VReg div(VReg a, VReg b) { return binop(Op::Div, a, b); }
    VReg divu(VReg a, VReg b) { return binop(Op::DivU, a, b); }
    VReg rem(VReg a, VReg b) { return binop(Op::Rem, a, b); }
    VReg remu(VReg a, VReg b) { return binop(Op::RemU, a, b); }
    VReg band(VReg a, VReg b) { return binop(Op::And, a, b); }
    VReg bor(VReg a, VReg b) { return binop(Op::Or, a, b); }
    VReg bxor(VReg a, VReg b) { return binop(Op::Xor, a, b); }
    VReg shl(VReg a, VReg b) { return binop(Op::Shl, a, b); }
    VReg shr(VReg a, VReg b) { return binop(Op::Shr, a, b); }
    VReg sra(VReg a, VReg b) { return binop(Op::Sra, a, b); }

    VReg addI(VReg a, i64 k) { return add(a, constI(k)); }
    VReg mulI(VReg a, i64 k) { return mul(a, constI(k)); }
    VReg shlI(VReg a, i64 k) { return shl(a, constI(k)); }

    VReg cmpEq(VReg a, VReg b) { return binop(Op::CmpEq, a, b); }
    VReg cmpNe(VReg a, VReg b) { return binop(Op::CmpNe, a, b); }
    VReg cmpLt(VReg a, VReg b) { return binop(Op::CmpLt, a, b); }
    VReg cmpLe(VReg a, VReg b) { return binop(Op::CmpLe, a, b); }
    VReg cmpLtU(VReg a, VReg b) { return binop(Op::CmpLtU, a, b); }
    VReg cmpLeU(VReg a, VReg b) { return binop(Op::CmpLeU, a, b); }

    VReg fadd(VReg a, VReg b) { return binop(Op::FAdd, a, b); }
    VReg fsub(VReg a, VReg b) { return binop(Op::FSub, a, b); }
    VReg fmul(VReg a, VReg b) { return binop(Op::FMul, a, b); }
    VReg fdiv(VReg a, VReg b) { return binop(Op::FDiv, a, b); }
    VReg fcmpEq(VReg a, VReg b) { return binop(Op::FCmpEq, a, b); }
    VReg fcmpLt(VReg a, VReg b) { return binop(Op::FCmpLt, a, b); }
    VReg fcmpLe(VReg a, VReg b) { return binop(Op::FCmpLe, a, b); }

    VReg
    fsqrt(VReg a)
    {
        VReg d = newReg(Type::F64);
        emit({.op = Op::FSqrt, .dst = d, .a = a});
        return d;
    }

    VReg
    itof(VReg a)
    {
        VReg d = newReg(Type::F64);
        emit({.op = Op::ItoF, .dst = d, .a = a});
        return d;
    }

    VReg
    ftoi(VReg a)
    {
        VReg d = newReg(Type::I64);
        emit({.op = Op::FtoI, .dst = d, .a = a});
        return d;
    }

    VReg
    select(VReg cond, VReg ifTrue, VReg ifFalse)
    {
        VReg d = newReg(fn().vregTypes[ifTrue]);
        emit({.op = Op::Select, .dst = d, .a = cond, .b = ifTrue,
              .c = ifFalse});
        return d;
    }

    /** dst = a (same type). */
    VReg
    mov(VReg a)
    {
        VReg d = newReg(fn().vregTypes[a]);
        emit({.op = Op::Mov, .dst = d, .a = a});
        return d;
    }

    /** Reassign an existing vreg: existing = src (for loop variables). */
    void
    assign(VReg existing, VReg src)
    {
        emit({.op = Op::Mov, .dst = existing, .a = src});
    }

    void
    assignI(VReg existing, i64 value)
    {
        emit({.op = Op::ConstI, .dst = existing, .imm = value});
    }

    // --- memory ----------------------------------------------------------
    VReg
    load(Op op, VReg addr, i64 offset = 0)
    {
        VReg d = newReg(op == Op::LdF8 ? Type::F64 : Type::I64);
        emit({.op = op, .dst = d, .a = addr, .imm = offset});
        return d;
    }

    VReg ld1u(VReg a, i64 off = 0) { return load(Op::Ld1u, a, off); }
    VReg ld1s(VReg a, i64 off = 0) { return load(Op::Ld1s, a, off); }
    VReg ld2u(VReg a, i64 off = 0) { return load(Op::Ld2u, a, off); }
    VReg ld2s(VReg a, i64 off = 0) { return load(Op::Ld2s, a, off); }
    VReg ld4u(VReg a, i64 off = 0) { return load(Op::Ld4u, a, off); }
    VReg ld4s(VReg a, i64 off = 0) { return load(Op::Ld4s, a, off); }
    VReg ld8(VReg a, i64 off = 0) { return load(Op::Ld8, a, off); }
    VReg ldf8(VReg a, i64 off = 0) { return load(Op::LdF8, a, off); }

    void
    store(Op op, VReg addr, VReg data, i64 offset = 0)
    {
        emit({.op = op, .a = addr, .b = data, .imm = offset});
    }

    void st1(VReg a, VReg d, i64 off = 0) { store(Op::St1, a, d, off); }
    void st2(VReg a, VReg d, i64 off = 0) { store(Op::St2, a, d, off); }
    void st4(VReg a, VReg d, i64 off = 0) { store(Op::St4, a, d, off); }
    void st8(VReg a, VReg d, i64 off = 0) { store(Op::St8, a, d, off); }
    void stf8(VReg a, VReg d, i64 off = 0) { store(Op::StF8, a, d, off); }

    // --- control flow ----------------------------------------------------
    void jmp(BlockId target) { emit({.op = Op::Jmp, .target = target}); }

    void
    br(VReg cond, BlockId ifTrue, BlockId ifFalse)
    {
        emit({.op = Op::Br, .a = cond, .target = ifTrue,
              .target2 = ifFalse});
    }

    void ret(VReg value) { emit({.op = Op::Ret, .a = value}); }
    void retVoid() { emit({.op = Op::Ret}); }

    VReg
    call(FuncId callee, std::vector<VReg> args)
    {
        const Function &cf = mod.functions[callee];
        VReg d = newReg(cf.hasResult ? cf.resultType : Type::I64);
        emit({.op = Op::Call, .dst = d, .callee = callee,
              .args = std::move(args)});
        return d;
    }

    void checkpoint() { emit({.op = Op::Checkpoint}); }

    /** Stall until a device interrupt is pending (WFI). */
    void waitIrq() { emit({.op = Op::WaitIrq}); }
    void switchCpu() { emit({.op = Op::SwitchCpu}); }

    // --- structured loops --------------------------------------------------
    /** Handles for a counted loop under construction. */
    struct Loop
    {
        BlockId head;
        BlockId body;
        BlockId exit;
        VReg idx;
    };

    /**
     * Open `for (idx = init; idx < bound; )`, leaving the insertion
     * point in the body. Close with endLoop().
     */
    Loop
    beginLoop(VReg init, VReg bound)
    {
        Loop loop;
        loop.idx = newReg(Type::I64);
        assign(loop.idx, init);
        loop.head = newBlock();
        loop.body = newBlock();
        loop.exit = newBlock();
        jmp(loop.head);
        setBlock(loop.head);
        VReg cond = cmpLt(loop.idx, bound);
        br(cond, loop.body, loop.exit);
        setBlock(loop.body);
        return loop;
    }

    /** Close a counted loop, stepping idx by `step`. */
    void
    endLoop(const Loop &loop, i64 step = 1)
    {
        assign(loop.idx, addI(loop.idx, step));
        jmp(loop.head);
        setBlock(loop.exit);
    }

    /** Append a raw instruction to the current block. */
    void
    emit(Inst inst)
    {
        if (!fn().blocks[cur].insts.empty() &&
            isTerminator(fn().blocks[cur].insts.back().op))
            fatal("builder: emitting past a terminator in '%s'",
                  fn().name.c_str());
        fn().blocks[cur].insts.push_back(std::move(inst));
    }

  private:
    Module &mod;
    FuncId fid;
    BlockId cur = 0;
};

/** Builds a module: declares globals and functions. */
class ModuleBuilder
{
  public:
    Module &module() { return mod; }

    /** Declare a zero-initialized global. */
    u32
    global(const std::string &name, u64 size, u64 align = 8)
    {
        mod.globals.push_back({name, size, align, {}});
        return static_cast<u32>(mod.globals.size() - 1);
    }

    /** Declare a global with initial data. */
    u32
    globalInit(const std::string &name, std::vector<u8> init,
               u64 align = 8)
    {
        const u64 size = init.size();
        mod.globals.push_back({name, size, align, std::move(init)});
        return static_cast<u32>(mod.globals.size() - 1);
    }

    /**
     * Declare a function and return a builder for it. Parameters get
     * freshly allocated vregs available via fb.fn().params.
     */
    FunctionBuilder
    func(const std::string &name, std::vector<Type> paramTypes,
         bool hasResult = false, Type resultType = Type::I64)
    {
        Function fn;
        fn.name = name;
        fn.paramTypes = paramTypes;
        fn.hasResult = hasResult;
        fn.resultType = resultType;
        for (Type t : paramTypes) {
            fn.vregTypes.push_back(t);
            fn.params.push_back(
                static_cast<VReg>(fn.vregTypes.size() - 1));
        }
        mod.functions.push_back(std::move(fn));
        return FunctionBuilder(
            mod, static_cast<FuncId>(mod.functions.size() - 1));
    }

    /** Mark the entry function by name. */
    void setEntry(const std::string &name) { mod.entry = mod.funcId(name); }

  private:
    Module mod;
};

} // namespace marvel::mir

#endif // MARVEL_MIR_BUILDER_HH
