#include "mir/mir.hh"

#include <sstream>

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::mir
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::ConstI: return "consti";
      case Op::ConstF: return "constf";
      case Op::Mov: return "mov";
      case Op::GAddr: return "gaddr";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::Mul: return "mul";
      case Op::Div: return "div";
      case Op::DivU: return "divu";
      case Op::Rem: return "rem";
      case Op::RemU: return "remu";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sra: return "sra";
      case Op::CmpEq: return "cmpeq";
      case Op::CmpNe: return "cmpne";
      case Op::CmpLt: return "cmplt";
      case Op::CmpLe: return "cmple";
      case Op::CmpLtU: return "cmpltu";
      case Op::CmpLeU: return "cmpleu";
      case Op::FAdd: return "fadd";
      case Op::FSub: return "fsub";
      case Op::FMul: return "fmul";
      case Op::FDiv: return "fdiv";
      case Op::FSqrt: return "fsqrt";
      case Op::FCmpEq: return "fcmpeq";
      case Op::FCmpLt: return "fcmplt";
      case Op::FCmpLe: return "fcmple";
      case Op::ItoF: return "itof";
      case Op::FtoI: return "ftoi";
      case Op::Select: return "select";
      case Op::Ld1u: return "ld1u";
      case Op::Ld1s: return "ld1s";
      case Op::Ld2u: return "ld2u";
      case Op::Ld2s: return "ld2s";
      case Op::Ld4u: return "ld4u";
      case Op::Ld4s: return "ld4s";
      case Op::Ld8: return "ld8";
      case Op::LdF8: return "ldf8";
      case Op::St1: return "st1";
      case Op::St2: return "st2";
      case Op::St4: return "st4";
      case Op::St8: return "st8";
      case Op::StF8: return "stf8";
      case Op::Jmp: return "jmp";
      case Op::Br: return "br";
      case Op::Ret: return "ret";
      case Op::Call: return "call";
      case Op::Checkpoint: return "checkpoint";
      case Op::SwitchCpu: return "switchcpu";
      case Op::WaitIrq: return "waitirq";
    }
    return "?";
}

bool
isTerminator(Op op)
{
    return op == Op::Jmp || op == Op::Br || op == Op::Ret;
}

bool
isLoad(Op op)
{
    switch (op) {
      case Op::Ld1u: case Op::Ld1s: case Op::Ld2u: case Op::Ld2s:
      case Op::Ld4u: case Op::Ld4s: case Op::Ld8: case Op::LdF8:
        return true;
      default:
        return false;
    }
}

bool
isStore(Op op)
{
    switch (op) {
      case Op::St1: case Op::St2: case Op::St4: case Op::St8:
      case Op::StF8:
        return true;
      default:
        return false;
    }
}

unsigned
accessSize(Op op)
{
    switch (op) {
      case Op::Ld1u: case Op::Ld1s: case Op::St1: return 1;
      case Op::Ld2u: case Op::Ld2s: case Op::St2: return 2;
      case Op::Ld4u: case Op::Ld4s: case Op::St4: return 4;
      case Op::Ld8: case Op::LdF8: case Op::St8: case Op::StF8: return 8;
      default: return 0;
    }
}

bool
loadIsSigned(Op op)
{
    return op == Op::Ld1s || op == Op::Ld2s || op == Op::Ld4s;
}

bool
isFloatOp(Op op)
{
    switch (op) {
      case Op::ConstF: case Op::FAdd: case Op::FSub: case Op::FMul:
      case Op::FDiv: case Op::FSqrt: case Op::FCmpEq: case Op::FCmpLt:
      case Op::FCmpLe: case Op::ItoF: case Op::FtoI: case Op::LdF8:
      case Op::StF8:
        return true;
      default:
        return false;
    }
}

unsigned
numSources(Op op)
{
    switch (op) {
      case Op::ConstI: case Op::ConstF: case Op::GAddr:
      case Op::Jmp: case Op::Checkpoint: case Op::SwitchCpu:
      case Op::WaitIrq: case Op::Call:
        return 0;
      case Op::Mov: case Op::ItoF: case Op::FtoI: case Op::FSqrt:
      case Op::Br: case Op::Ret:
      case Op::Ld1u: case Op::Ld1s: case Op::Ld2u: case Op::Ld2s:
      case Op::Ld4u: case Op::Ld4s: case Op::Ld8: case Op::LdF8:
        return 1;
      case Op::Select:
        return 3;
      case Op::St1: case Op::St2: case Op::St4: case Op::St8:
      case Op::StF8:
        return 2;
      default:
        return 2;
    }
}

bool
hasDest(Op op)
{
    if (isStore(op) || isTerminator(op))
        return false;
    switch (op) {
      case Op::Checkpoint: case Op::SwitchCpu: case Op::WaitIrq:
        return false;
      case Op::Call:
        return true; // callers without a result ignore dst
      default:
        return true;
    }
}

FuncId
Module::funcId(const std::string &name) const
{
    for (std::size_t i = 0; i < functions.size(); ++i)
        if (functions[i].name == name)
            return static_cast<FuncId>(i);
    fatal("mir: no function named '%s'", name.c_str());
}

u32
Module::globalId(const std::string &name) const
{
    for (std::size_t i = 0; i < globals.size(); ++i)
        if (globals[i].name == name)
            return static_cast<u32>(i);
    fatal("mir: no global named '%s'", name.c_str());
}

DataLayout
layoutGlobals(const Module &module, Addr base)
{
    DataLayout layout;
    Addr cursor = base;
    layout.globalAddr.reserve(module.globals.size());
    for (const Global &g : module.globals) {
        if (!isPow2(g.align))
            fatal("mir: global '%s' alignment %llu not a power of two",
                  g.name.c_str(),
                  static_cast<unsigned long long>(g.align));
        cursor = alignUp(cursor, g.align);
        layout.globalAddr.push_back(cursor);
        cursor += g.size;
    }
    layout.end = alignUp(cursor, 64);
    return layout;
}

bool
checkModule(const Module &module, std::string *error)
{
    std::string message;
    bool ok = true;
    // Record the FIRST violation; later checks may index out of
    // whatever the first one complained about, so stop descending.
    auto fail = [&](std::string why) {
        if (ok)
            message = std::move(why);
        ok = false;
    };
    if (module.functions.empty())
        fail("mir verify: module has no functions");
    else if (module.entry >= module.functions.size())
        fail(strfmt("mir verify: bad entry function id %u",
                    module.entry));
    for (const Function &fn : module.functions) {
        if (!ok)
            break;
        if (fn.blocks.empty()) {
            fail(strfmt("mir verify: function '%s' has no blocks",
                        fn.name.c_str()));
            break;
        }
        if (fn.params.size() != fn.paramTypes.size()) {
            fail(strfmt("mir verify: '%s' param/type count mismatch",
                        fn.name.c_str()));
            break;
        }
        for (VReg p : fn.params)
            if (p >= fn.numVRegs())
                fail(strfmt("mir verify: '%s' param vreg out of range",
                            fn.name.c_str()));
        for (std::size_t bi = 0; ok && bi < fn.blocks.size(); ++bi) {
            const Block &blk = fn.blocks[bi];
            if (blk.insts.empty()) {
                fail(strfmt("mir verify: '%s' block %zu empty",
                            fn.name.c_str(), bi));
                break;
            }
            for (std::size_t ii = 0; ok && ii < blk.insts.size(); ++ii) {
                const Inst &inst = blk.insts[ii];
                const bool last = (ii + 1 == blk.insts.size());
                if (isTerminator(inst.op) != last) {
                    fail(strfmt(
                        "mir verify: '%s' block %zu: terminator "
                        "placement error at inst %zu",
                        fn.name.c_str(), bi, ii));
                    break;
                }
                auto checkReg = [&](VReg r) {
                    if (r >= fn.numVRegs())
                        fail(strfmt(
                            "mir verify: '%s' block %zu inst %zu: "
                            "vreg %u out of range",
                            fn.name.c_str(), bi, ii, r));
                };
                const unsigned ns = numSources(inst.op);
                if (inst.op == Op::Ret) {
                    if (fn.hasResult)
                        checkReg(inst.a);
                } else if (inst.op == Op::Br) {
                    checkReg(inst.a);
                } else {
                    if (ns >= 1)
                        checkReg(inst.a);
                    if (ns >= 2)
                        checkReg(inst.b);
                    if (ns >= 3)
                        checkReg(inst.c);
                }
                if (hasDest(inst.op))
                    checkReg(inst.dst);
                if (inst.op == Op::Jmp || inst.op == Op::Br) {
                    if (inst.target >= fn.blocks.size())
                        fail(strfmt(
                            "mir verify: '%s': bad branch target %u",
                            fn.name.c_str(), inst.target));
                    if (inst.op == Op::Br &&
                        inst.target2 >= fn.blocks.size())
                        fail(strfmt(
                            "mir verify: '%s': bad branch target %u",
                            fn.name.c_str(), inst.target2));
                }
                if (inst.op == Op::Call) {
                    if (inst.callee >= module.functions.size()) {
                        fail(strfmt(
                            "mir verify: '%s': bad callee %u",
                            fn.name.c_str(), inst.callee));
                        break;
                    }
                    const Function &callee =
                        module.functions[inst.callee];
                    if (inst.args.size() != callee.paramTypes.size())
                        fail(strfmt(
                            "mir verify: '%s': call to '%s' with %zu "
                            "args, expected %zu",
                            fn.name.c_str(), callee.name.c_str(),
                            inst.args.size(),
                            callee.paramTypes.size()));
                    for (VReg arg : inst.args)
                        checkReg(arg);
                }
                if (inst.op == Op::GAddr &&
                    static_cast<u64>(inst.imm) >= module.globals.size())
                    fail(strfmt(
                        "mir verify: '%s': bad global id %lld",
                        fn.name.c_str(),
                        static_cast<long long>(inst.imm)));
            }
        }
    }
    if (!ok && error)
        *error = message;
    return ok;
}

void
verify(const Module &module)
{
    std::string error;
    if (!checkModule(module, &error))
        fatal("%s", error.c_str());
}

u64
moduleDigest(const Module &module)
{
    const std::string text = toString(module);
    return fnv1a(reinterpret_cast<const u8 *>(text.data()),
                 text.size());
}

std::string
toString(const Module &module)
{
    std::ostringstream out;
    for (const Function &fn : module.functions) {
        out << "func " << fn.name << "(";
        for (std::size_t i = 0; i < fn.params.size(); ++i) {
            if (i)
                out << ", ";
            out << "v" << fn.params[i];
        }
        out << ")\n";
        for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            out << "  b" << bi << ":\n";
            for (const Inst &inst : fn.blocks[bi].insts) {
                out << "    " << opName(inst.op);
                if (hasDest(inst.op))
                    out << " v" << inst.dst << " =";
                const unsigned ns = numSources(inst.op);
                if (inst.op == Op::Ret) {
                    out << " v" << inst.a;
                } else {
                    if (ns >= 1)
                        out << " v" << inst.a;
                    if (ns >= 2)
                        out << " v" << inst.b;
                    if (ns >= 3)
                        out << " v" << inst.c;
                }
                if (inst.op == Op::ConstI || isLoad(inst.op) ||
                    isStore(inst.op) || inst.op == Op::GAddr)
                    out << " imm=" << inst.imm;
                if (inst.op == Op::ConstF)
                    out << " fimm=" << inst.fimm;
                if (inst.op == Op::Jmp)
                    out << " -> b" << inst.target;
                if (inst.op == Op::Br)
                    out << " -> b" << inst.target << ", b"
                        << inst.target2;
                if (inst.op == Op::Call)
                    out << " @" << module.functions[inst.callee].name;
                out << "\n";
            }
        }
    }
    return out.str();
}

} // namespace marvel::mir
