/**
 * @file
 * MIR: the MARVEL intermediate representation.
 *
 * MIR plays two roles, mirroring LLVM IR in the paper's toolchain:
 *  - workloads (MiBench-style kernels) are written in MIR and compiled by
 *    the per-ISA code generators in src/isa into genuinely different
 *    machine binaries (different encodings, register budgets, addressing
 *    modes), which the out-of-order CPU model then executes; and
 *  - accelerator designs (MachSuite-style kernels) are executed directly
 *    by the gem5-SALAM-like dynamic dataflow engine in src/accel.
 *
 * MIR is a typed (I64/F64), non-SSA register IR over an unbounded set of
 * virtual registers, organized into functions of basic blocks.
 */

#ifndef MARVEL_MIR_MIR_HH
#define MARVEL_MIR_MIR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel::mir
{

/** Value types carried by virtual registers. */
enum class Type : u8 { I64, F64 };

/** Virtual register id, unique within a function. */
using VReg = u32;

/** Basic block id, unique within a function. */
using BlockId = u32;

/** Function id, unique within a module. */
using FuncId = u32;

/** MIR operations. */
enum class Op : u8
{
    // Constants and moves
    ConstI,     ///< dst = imm
    ConstF,     ///< dst = fimm
    Mov,        ///< dst = a
    GAddr,      ///< dst = address of global #imm

    // Integer arithmetic / logic
    Add, Sub, Mul, Div, DivU, Rem, RemU,
    And, Or, Xor, Shl, Shr, Sra,

    // Integer comparisons, dst = 0 or 1
    CmpEq, CmpNe, CmpLt, CmpLe, CmpLtU, CmpLeU,

    // Floating point
    FAdd, FSub, FMul, FDiv, FSqrt,
    FCmpEq, FCmpLt, FCmpLe,
    ItoF,       ///< dst(F64) = (double)a(I64)
    FtoI,       ///< dst(I64) = (i64)a(F64), truncating

    Select,     ///< dst = a ? b : c

    // Memory: effective address = a + imm; stores carry data in b
    Ld1u, Ld1s, Ld2u, Ld2s, Ld4u, Ld4s, Ld8, LdF8,
    St1, St2, St4, St8, StF8,

    // Control flow (block terminators)
    Jmp,        ///< goto target
    Br,         ///< if (a) goto target else goto target2
    Ret,        ///< return a (or void when no return type)

    Call,       ///< dst = callee(args...)

    // Simulation pseudo-ops (m5-style magic instructions)
    Checkpoint, ///< begin fault-injection window
    SwitchCpu,  ///< end fault-injection window
    WaitIrq,    ///< stall until an external interrupt is pending
};

/** Human-readable opcode mnemonic. */
const char *opName(Op op);

/** True for Jmp/Br/Ret. */
bool isTerminator(Op op);

/** True for any load. */
bool isLoad(Op op);

/** True for any store. */
bool isStore(Op op);

/** Access size in bytes for loads/stores; 0 otherwise. */
unsigned accessSize(Op op);

/** True when a load sign-extends. */
bool loadIsSigned(Op op);

/** True for FAdd..FtoI and ConstF/LdF8/StF8 operating on F64 values. */
bool isFloatOp(Op op);

/** Number of register sources read by the op (not counting call args). */
unsigned numSources(Op op);

/** True when the op defines dst. */
bool hasDest(Op op);

/** One MIR instruction. */
struct Inst
{
    Op op;
    VReg dst = 0;
    VReg a = 0;
    VReg b = 0;
    VReg c = 0;
    i64 imm = 0;
    double fimm = 0.0;
    BlockId target = 0;
    BlockId target2 = 0;
    FuncId callee = 0;
    std::vector<VReg> args; ///< call arguments
};

/** A basic block: straight-line instructions ending in a terminator. */
struct Block
{
    std::vector<Inst> insts;
};

/** A function: parameters, virtual-register types, and blocks. */
struct Function
{
    std::string name;
    std::vector<Type> paramTypes;
    std::vector<VReg> params;     ///< vregs holding incoming arguments
    bool hasResult = false;
    Type resultType = Type::I64;
    std::vector<Type> vregTypes;  ///< indexed by VReg
    std::vector<Block> blocks;    ///< block 0 is the entry

    unsigned numVRegs() const { return vregTypes.size(); }
};

/** A named global data object. */
struct Global
{
    std::string name;
    u64 size = 0;            ///< bytes
    u64 align = 8;
    std::vector<u8> init;    ///< initial bytes; zero-filled if smaller
};

/** A module: functions plus global data. */
struct Module
{
    std::vector<Function> functions;
    std::vector<Global> globals;

    /** Id of the entry function ("main" by convention). */
    FuncId entry = 0;

    /** Find a function id by name; fatal() when absent. */
    FuncId funcId(const std::string &name) const;

    /** Find a global index by name; fatal() when absent. */
    u32 globalId(const std::string &name) const;
};

/**
 * Assigned addresses for a module's globals.
 */
struct DataLayout
{
    std::vector<Addr> globalAddr; ///< indexed by global id
    Addr end = 0;                 ///< first free address after globals
};

/**
 * Lay out the module's globals starting at `base`.
 *
 * Shared by the MIR interpreter and all ISA code generators so outputs
 * are byte-comparable across platforms.
 */
DataLayout layoutGlobals(const Module &module, Addr base);

/**
 * Check structural invariants (terminators present and only at block
 * ends, vreg/type bounds, branch targets valid). fatal() on violation.
 */
void verify(const Module &module);

/**
 * Non-throwing variant of verify(): returns false and fills *error
 * (when non-null) with the first violation. The fuzz shrinker probes
 * candidate mutations with this — a structurally broken candidate is
 * rejected, not a crash.
 */
bool checkModule(const Module &module, std::string *error = nullptr);

/**
 * Deterministic structural digest (FNV-1a over the disassembly).
 * Stable across platforms for identical modules; recorded in fuzz
 * reproducer metadata so a regenerated module can be vouched against
 * the one that originally failed.
 */
u64 moduleDigest(const Module &module);

/** Disassemble a module to text (for debugging and tests). */
std::string toString(const Module &module);

} // namespace marvel::mir

#endif // MARVEL_MIR_MIR_HH
