#include "mir/interp.hh"

#include <cmath>
#include <cstring>

#include "common/log.hh"

namespace marvel::mir
{

namespace
{

double
asF64(Word w)
{
    double d;
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

Word
fromF64(double d)
{
    Word w;
    std::memcpy(&w, &d, sizeof(w));
    return w;
}

} // namespace

Interp::Interp(const Module &module, std::vector<u8> &memory,
               const DataLayout &layout)
    : mod(module), mem(memory), layout_(layout)
{
}

void
Interp::loadGlobals()
{
    for (std::size_t i = 0; i < mod.globals.size(); ++i) {
        const Global &g = mod.globals[i];
        const Addr base = layout_.globalAddr[i];
        if (base + g.size > mem.size())
            fatal("interp: global '%s' does not fit in memory",
                  g.name.c_str());
        std::memset(mem.data() + base, 0, g.size);
        if (!g.init.empty())
            std::memcpy(mem.data() + base, g.init.data(),
                        std::min<std::size_t>(g.init.size(), g.size));
    }
}

u8 *
Interp::memPtr(Addr addr, unsigned size)
{
    if (addr + size > mem.size() || addr + size < addr)
        fatal("interp: out-of-bounds access at 0x%llx size %u",
              static_cast<unsigned long long>(addr), size);
    return mem.data() + addr;
}

void
InterpStats::regStats(stats::Group &g)
{
    g.addCounter("steps", &steps, "MIR instructions executed");
    g.addCounter("loads", &loads, "memory loads");
    g.addCounter("stores", &stores, "memory stores");
    g.addCounter("branches", &branches, "jumps + branches");
    g.addCounter("calls", &calls, "function calls");
}

InterpResult
Interp::run(const std::vector<i64> &args, u64 maxSteps)
{
    InterpResult res;
    std::vector<Word> wargs(args.begin(), args.end());
    u64 steps = 0;
    res.exitValue =
        static_cast<i64>(callFunction(mod.entry, wargs, maxSteps, steps, 0));
    res.steps = steps;
    res.timedOut = steps >= maxSteps;
    return res;
}

Word
Interp::callFunction(FuncId fid, const std::vector<Word> &args,
                     u64 maxSteps, u64 &steps, unsigned depth)
{
    if (depth > 512)
        fatal("interp: call depth exceeded in '%s'",
              mod.functions[fid].name.c_str());
    const Function &fn = mod.functions[fid];
    std::vector<Word> regs(fn.numVRegs(), 0);
    for (std::size_t i = 0; i < args.size(); ++i)
        regs[fn.params[i]] = args[i];

    BlockId blockId = 0;
    std::size_t ip = 0;
    for (;;) {
        if (steps++ >= maxSteps)
            return 0;
        const Inst &in = fn.blocks[blockId].insts[ip];
        ++ip;
#ifndef MARVEL_STATS_DISABLED
        stats_.steps.inc();
        if (isLoad(in.op))
            stats_.loads.inc();
        else if (isStore(in.op))
            stats_.stores.inc();
        else if (in.op == Op::Jmp || in.op == Op::Br)
            stats_.branches.inc();
        else if (in.op == Op::Call)
            stats_.calls.inc();
#endif
        const Word a = regs[in.a];
        const Word b = regs[in.b];
        switch (in.op) {
          case Op::ConstI:
            regs[in.dst] = static_cast<Word>(in.imm);
            break;
          case Op::ConstF:
            regs[in.dst] = fromF64(in.fimm);
            break;
          case Op::Mov:
            regs[in.dst] = a;
            break;
          case Op::GAddr:
            regs[in.dst] = layout_.globalAddr[in.imm];
            break;
          case Op::Add: regs[in.dst] = a + b; break;
          case Op::Sub: regs[in.dst] = a - b; break;
          case Op::Mul: regs[in.dst] = a * b; break;
          case Op::Div:
            if (b == 0)
                fatal("interp: division by zero");
            if (static_cast<i64>(a) == INT64_MIN &&
                static_cast<i64>(b) == -1)
                regs[in.dst] = a;
            else
                regs[in.dst] = static_cast<Word>(
                    static_cast<i64>(a) / static_cast<i64>(b));
            break;
          case Op::DivU:
            if (b == 0)
                fatal("interp: division by zero");
            regs[in.dst] = a / b;
            break;
          case Op::Rem:
            if (b == 0)
                fatal("interp: division by zero");
            if (static_cast<i64>(a) == INT64_MIN &&
                static_cast<i64>(b) == -1)
                regs[in.dst] = 0;
            else
                regs[in.dst] = static_cast<Word>(
                    static_cast<i64>(a) % static_cast<i64>(b));
            break;
          case Op::RemU:
            if (b == 0)
                fatal("interp: division by zero");
            regs[in.dst] = a % b;
            break;
          case Op::And: regs[in.dst] = a & b; break;
          case Op::Or: regs[in.dst] = a | b; break;
          case Op::Xor: regs[in.dst] = a ^ b; break;
          case Op::Shl: regs[in.dst] = a << (b & 63); break;
          case Op::Shr: regs[in.dst] = a >> (b & 63); break;
          case Op::Sra:
            regs[in.dst] =
                static_cast<Word>(static_cast<i64>(a) >> (b & 63));
            break;
          case Op::CmpEq: regs[in.dst] = a == b; break;
          case Op::CmpNe: regs[in.dst] = a != b; break;
          case Op::CmpLt:
            regs[in.dst] = static_cast<i64>(a) < static_cast<i64>(b);
            break;
          case Op::CmpLe:
            regs[in.dst] = static_cast<i64>(a) <= static_cast<i64>(b);
            break;
          case Op::CmpLtU: regs[in.dst] = a < b; break;
          case Op::CmpLeU: regs[in.dst] = a <= b; break;
          case Op::FAdd:
            regs[in.dst] = fromF64(asF64(a) + asF64(b));
            break;
          case Op::FSub:
            regs[in.dst] = fromF64(asF64(a) - asF64(b));
            break;
          case Op::FMul:
            regs[in.dst] = fromF64(asF64(a) * asF64(b));
            break;
          case Op::FDiv:
            regs[in.dst] = fromF64(asF64(a) / asF64(b));
            break;
          case Op::FSqrt:
            regs[in.dst] = fromF64(std::sqrt(asF64(a)));
            break;
          case Op::FCmpEq: regs[in.dst] = asF64(a) == asF64(b); break;
          case Op::FCmpLt: regs[in.dst] = asF64(a) < asF64(b); break;
          case Op::FCmpLe: regs[in.dst] = asF64(a) <= asF64(b); break;
          case Op::ItoF:
            regs[in.dst] =
                fromF64(static_cast<double>(static_cast<i64>(a)));
            break;
          case Op::FtoI:
            regs[in.dst] =
                static_cast<Word>(static_cast<i64>(asF64(a)));
            break;
          case Op::Select:
            regs[in.dst] = a ? b : regs[in.c];
            break;
          case Op::Ld1u:
            regs[in.dst] = *memPtr(a + in.imm, 1);
            break;
          case Op::Ld1s:
            regs[in.dst] = static_cast<Word>(
                static_cast<i64>(static_cast<i8>(*memPtr(a + in.imm, 1))));
            break;
          case Op::Ld2u: {
            u16 v;
            std::memcpy(&v, memPtr(a + in.imm, 2), 2);
            regs[in.dst] = v;
            break;
          }
          case Op::Ld2s: {
            u16 v;
            std::memcpy(&v, memPtr(a + in.imm, 2), 2);
            regs[in.dst] =
                static_cast<Word>(static_cast<i64>(static_cast<i16>(v)));
            break;
          }
          case Op::Ld4u: {
            u32 v;
            std::memcpy(&v, memPtr(a + in.imm, 4), 4);
            regs[in.dst] = v;
            break;
          }
          case Op::Ld4s: {
            u32 v;
            std::memcpy(&v, memPtr(a + in.imm, 4), 4);
            regs[in.dst] =
                static_cast<Word>(static_cast<i64>(static_cast<i32>(v)));
            break;
          }
          case Op::Ld8:
          case Op::LdF8: {
            u64 v;
            std::memcpy(&v, memPtr(a + in.imm, 8), 8);
            regs[in.dst] = v;
            break;
          }
          case Op::St1:
            *memPtr(a + in.imm, 1) = static_cast<u8>(b);
            break;
          case Op::St2: {
            u16 v = static_cast<u16>(b);
            std::memcpy(memPtr(a + in.imm, 2), &v, 2);
            break;
          }
          case Op::St4: {
            u32 v = static_cast<u32>(b);
            std::memcpy(memPtr(a + in.imm, 4), &v, 4);
            break;
          }
          case Op::St8:
          case Op::StF8:
            std::memcpy(memPtr(a + in.imm, 8), &b, 8);
            break;
          case Op::Jmp:
            blockId = in.target;
            ip = 0;
            break;
          case Op::Br:
            blockId = a ? in.target : in.target2;
            ip = 0;
            break;
          case Op::Ret:
            return fn.hasResult ? a : 0;
          case Op::Call: {
            std::vector<Word> callArgs;
            callArgs.reserve(in.args.size());
            for (VReg r : in.args)
                callArgs.push_back(regs[r]);
            regs[in.dst] = callFunction(in.callee, callArgs, maxSteps,
                                        steps, depth + 1);
            if (steps >= maxSteps)
                return 0;
            break;
          }
          case Op::Checkpoint:
          case Op::SwitchCpu:
          case Op::WaitIrq:
            break; // no timing semantics in the functional model
        }
    }
}

GoldenRun
interpretModule(const Module &module, const std::vector<i64> &args,
                u64 maxSteps)
{
    GoldenRun golden;
    golden.memory.assign(kMemSize, 0);
    DataLayout layout = layoutGlobals(module, kDataBase);
    if (layout.end > kStackTop)
        fatal("interp: globals overflow the data segment");
    Interp interp(module, golden.memory, layout);
    interp.loadGlobals();
    golden.result = interp.run(args, maxSteps);
    golden.output.assign(golden.memory.begin() + kOutputBase,
                         golden.memory.begin() + kOutputBase + kOutputSize);
    return golden;
}

} // namespace marvel::mir
