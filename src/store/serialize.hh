/**
 * @file
 * Binary serialization of campaign artifacts.
 *
 * Two artifacts are persisted between (possibly crashed) campaign
 * processes:
 *
 *  - a Checkpoint's architectural + memory state
 *    (soc::serializeArchState bytes in an ArchState blob), used to
 *    cross-check that a resumed campaign restored the *same* golden
 *    snapshot the journal was recorded against; and
 *
 *  - a GoldenRun record (GoldenRun blob): the golden run's observable
 *    behaviour — output window, exit code, console, cycle counts, and
 *    digests of the arch state and commit trace. Golden runs are
 *    deterministic, so resume re-executes the workload and verifies
 *    the recomputed record matches byte-for-byte rather than trying to
 *    revive timing state from disk.
 *
 * Both ride in the versioned, FNV-digested blob container (blob.hh).
 */

#ifndef MARVEL_STORE_SERIALIZE_HH
#define MARVEL_STORE_SERIALIZE_HH

#include <string>
#include <vector>

#include "fi/campaign.hh"
#include "store/blob.hh"

namespace marvel::store
{

/** Little-endian append-only byte sink. */
class ByteWriter
{
  public:
    void
    u8v(u8 value)
    {
        bytes_.push_back(value);
    }

    void
    u64v(u64 value)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<u8>(value >> (8 * i)));
    }

    void
    i64v(i64 value)
    {
        u64v(static_cast<u64>(value));
    }

    void
    blob(const void *data, std::size_t len)
    {
        u64v(len);
        const u8 *p = static_cast<const u8 *>(data);
        bytes_.insert(bytes_.end(), p, p + len);
    }

    void
    str(const std::string &s)
    {
        blob(s.data(), s.size());
    }

    const std::vector<u8> &bytes() const { return bytes_; }
    std::vector<u8> take() { return std::move(bytes_); }

  private:
    std::vector<u8> bytes_;
};

/** Bounds-checked little-endian reader; fatal() on underrun. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<u8> &bytes)
        : bytes_(bytes)
    {
    }

    u8 u8v();
    u64 u64v();
    i64 i64v() { return static_cast<i64>(u64v()); }
    std::vector<u8> blob();
    std::string str();
    bool atEnd() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<u8> &bytes_;
    std::size_t pos_ = 0;
};

/**
 * The persisted image of a golden run: everything a faulty-run
 * verdict is compared against, plus digests identifying the snapshot
 * and trace it was recorded with.
 */
/**
 * The persisted image of one checkpoint-ladder rung. Like the golden
 * run itself, rung snapshots are deterministic to rebuild, so only
 * their identity (cycle, trace position, arch digest) is persisted;
 * resume re-captures the ladder and verifies the digests match.
 */
struct GoldenRungRecord
{
    Cycle cycle = 0;
    u64 traceIndex = 0;
    u64 archDigest = 0; ///< soc::archStateDigest of the rung snapshot

    bool operator==(const GoldenRungRecord &other) const = default;
};

struct GoldenRecord
{
    u64 archDigest = 0;  ///< soc::archStateDigest of the checkpoint
    u64 traceDigest = 0; ///< FNV-1a over the commit-trace records
    u64 traceLength = 0;
    std::vector<u8> output;
    i64 exitCode = 0;
    std::string console;
    Cycle preCycles = 0;
    Cycle windowCycles = 0;
    Cycle totalCycles = 0;
    std::vector<GoldenRungRecord> rungs; ///< ladder geometry + digests

    bool operator==(const GoldenRecord &other) const = default;
};

/** Capture the persistable image of a golden run. */
GoldenRecord goldenRecordOf(const fi::GoldenRun &golden);

/** GoldenRecord <-> bytes (the GoldenRun blob payload). */
std::vector<u8> serializeGoldenRecord(const GoldenRecord &record);
GoldenRecord deserializeGoldenRecord(const std::vector<u8> &bytes);

/** Persist / verify a golden run at path (GoldenRun blob). */
void saveGoldenRun(const std::string &path,
                   const fi::GoldenRun &golden);
GoldenRecord loadGoldenRecord(const std::string &path);

/**
 * Persist a checkpoint's architectural + memory state (ArchState
 * blob) / load it back. The loaded bytes compare equal to a fresh
 * soc::serializeArchState of the same snapshot.
 */
void saveCheckpoint(const std::string &path,
                    const soc::Checkpoint &checkpoint);
std::vector<u8> loadCheckpointBytes(const std::string &path);

} // namespace marvel::store

#endif // MARVEL_STORE_SERIALIZE_HH
