/**
 * @file
 * Versioned, digest-protected binary files ("blobs").
 *
 * Every artifact the campaign store persists — serialized checkpoint
 * arch-state, golden-run records — travels in the same container:
 *
 *   offset  size  field
 *   0       8     magic "MRVLSTOR"
 *   8       4     format version (little-endian u32)
 *   12      4     payload kind   (BlobKind, little-endian u32)
 *   16      8     payload length (little-endian u64)
 *   24      8     FNV-1a digest of the payload (little-endian u64)
 *   32      ...   payload bytes
 *
 * Writes are crash-safe: the blob is written to "<path>.tmp", fsync'd,
 * and renamed over the destination, so a reader never observes a
 * half-written file. Reads verify magic, version, kind, length, and
 * digest and fatal() on any mismatch (a corrupt artifact must never be
 * silently consumed by a resumed campaign).
 */

#ifndef MARVEL_STORE_BLOB_HH
#define MARVEL_STORE_BLOB_HH

#include <string>
#include <vector>

#include "common/bits.hh"
#include "common/types.hh"

namespace marvel::store
{

// The FNV-1a primitives historically lived here; they are now shared
// tree-wide from common/bits.hh. Re-exported so store::fnv1a callers
// keep compiling.
using marvel::kFnvOffset;
using marvel::kFnvPrime;
using marvel::fnv1a;

inline u64
fnv1a(const std::vector<u8> &bytes, u64 hash = kFnvOffset)
{
    return fnv1a(bytes.data(), bytes.size(), hash);
}

/** What a blob file carries; recorded in the header. */
enum class BlobKind : u32
{
    ArchState = 1, ///< soc::serializeArchState bytes of a Checkpoint
    GoldenRun = 2, ///< store::serializeGoldenRun bytes
};

constexpr u32 kBlobFormatVersion = 1;

/**
 * Atomically persist a payload: write <path>.tmp, fsync, rename.
 * fatal() on any I/O error.
 */
void writeBlob(const std::string &path, BlobKind kind,
               const std::vector<u8> &payload);

/**
 * Load a blob written by writeBlob. Verifies magic, version, the
 * expected kind, length, and the FNV-1a digest; fatal() on mismatch.
 */
std::vector<u8> readBlob(const std::string &path, BlobKind kind);

/** True when a readable blob of the given kind exists at path. */
bool blobExists(const std::string &path);

} // namespace marvel::store

#endif // MARVEL_STORE_BLOB_HH
