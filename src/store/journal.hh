/**
 * @file
 * Crash-safe append-only campaign journal (JSON Lines).
 *
 * One journal records the progress of one campaign shard. The first
 * line is a `meta` record binding the journal to a campaign identity
 * (seed, sample size, fault model, target, golden-run digest, shard);
 * every completed faulty run appends one `verdict` record; after each
 * fsync'd batch of verdicts a `chunk` record marks the commit point:
 *
 *   {"type":"meta","version":1,"workload":"sha","target":"l1d",...}
 *   {"type":"verdict","idx":17,"outcome":"SDC","detail":"sdc-output",
 *    "hvf":1,"early":0,"cycles":5121,"hvfCycle":902}
 *   {"type":"chunk","done":32}
 *
 * Durability contract: verdict records are buffered, then written and
 * fsync'd as a chunk. A crash (SIGKILL, power loss) can lose at most
 * the un-fsync'd tail, and can tear at most the final line of the
 * file. The reader is tolerant of exactly that: a torn/garbage FINAL
 * line is dropped (and `validBytes` reports where the intact prefix
 * ends so a resuming writer can truncate before appending); a
 * malformed line anywhere else is corruption and fatal()s.
 *
 * Resume never trusts chunk records for correctness — every intact
 * verdict line was fsync'd before its chunk marker, so the set of
 * verdict records alone identifies the completed fault indices.
 */

#ifndef MARVEL_STORE_JOURNAL_HH
#define MARVEL_STORE_JOURNAL_HH

#include <array>
#include <string>
#include <vector>

#include "fi/campaign.hh"
#include "obs/profiler.hh"

namespace marvel::store
{

constexpr u32 kJournalFormatVersion = 1;

/** The campaign identity a journal is bound to. */
struct JournalMeta
{
    std::string workload;   ///< informational
    std::string target;     ///< fi::targetInfo name ("l1d", ...)
    std::string model;      ///< fi::faultModelName
    u64 seed = 0;
    u64 numFaults = 0;      ///< whole-campaign sample size
    u32 shardIndex = 0;
    u32 shardCount = 1;
    u64 goldenDigest = 0;   ///< soc::archStateDigest of the snapshot
    u64 goldenCycles = 0;
    u64 windowCycles = 0;
    u32 entries = 0;        ///< target geometry
    u32 bitsPerEntry = 0;

    // Run options, recorded so a journaled verdict can be replayed
    // bit-identically (marvel-trace). Absent in version-1 journals
    // written before these fields existed; the defaults below match
    // the historical campaign defaults, so old journals keep reading.
    std::string marvelVersion;    ///< build that wrote the journal
    u32 optEarlyTerm = 1;         ///< CampaignOptions::earlyTermination
    u32 optHvf = 0;               ///< CampaignOptions::computeHvf
    u64 timeoutFactorMilli = 8000; ///< timeoutFactor * 1000

    /**
     * Checkpoint-ladder geometry (CampaignOptions::ladderRungs) and
     * dead-fault pre-pruning (CampaignOptions::prune). Geometry is
     * part of the campaign identity so resume/replay rebuild the same
     * golden ladder; whether runs fast-forward from the rungs is NOT
     * recorded — it cannot change any verdict. Pruning is recorded
     * because pruned faults carry the masked-pruned detail.
     */
    u32 ladderRungs = 0;
    u32 optPrune = 0;

    /**
     * Convergence early-stop (CampaignOptions::earlyStop), recorded
     * as RESOLVED (0 = off, 1 = on; `auto` resolves against the
     * ladder before journaling). Recorded so resume/replay/dispatch
     * run the same stop-check configuration; absent in journals
     * written before the field existed, which read back as off —
     * exactly how those campaigns ran.
     */
    u32 optEarlyStop = 0;

    /**
     * Canonical fault-model spec string (fi::FaultModelSpec), part of
     * the campaign identity: it decides how every fault index becomes
     * a fault mask, so resume/replay/merge/dispatch must re-derive
     * with the same spec. Empty = the legacy uniform single-bit draw;
     * the field is OMITTED from the meta line in that case, so
     * journals written by legacy-model campaigns are byte-identical
     * to pre-fault-model builds, and journals those builds wrote read
     * back as the model they actually ran.
     */
    std::string faultModel;

    bool operator==(const JournalMeta &other) const = default;
};

/**
 * Per-injection execution provenance, persisted as OPTIONAL fields on
 * the verdict record (`"wall_us","rung","ff","pruned"`). Provenance
 * describes how this process happened to produce the verdict — wall
 * time, which ladder rung it restored, whether it simulated at all —
 * so unlike the verdict itself it is NOT part of the campaign
 * identity: two equivalent campaigns legitimately differ here.
 * Canonical journals therefore strip it (writeCanonicalJournal emits
 * the plain verdict line), which is what keeps "distributed run ==
 * single-process run" a byte-for-byte cmp. Journals written before
 * these fields existed read back with present == false.
 */
struct VerdictProvenance
{
    bool present = false;
    u64 wallMicros = 0;    ///< wall time to produce this verdict
    u32 rung = 0;          ///< restore point: 0 = window start,
                           ///< 1 + i = ladder rung i
    u64 fastForwarded = 0; ///< cycles skipped by the rung restore
    u32 pruned = 0;        ///< 1 = classified without simulating

    /**
     * Convergence early-stop provenance: the rung whose stop-check
     * ended the run (0 = ran the full window, 1 + i = stopped at
     * ladder rung i — same encoding as `rung`) and the cycle of the
     * first committed-uop divergence the tap observed (0 = never
     * diverged, or tap off). Like wall_us these describe how this
     * process produced the verdict, not the verdict itself, so
     * canonical journals strip them.
     */
    u32 stoppedRung = 0;
    u64 divergedAt = 0;

    bool operator==(const VerdictProvenance &other) const = default;
};

/** One persisted verdict. */
struct JournalVerdict
{
    u64 idx = 0; ///< campaign-global fault index
    fi::RunVerdict verdict;
    VerdictProvenance prov;
};

/**
 * Campaign execution telemetry persisted at the end of a run
 * (`{"type":"metrics",...}`), so status displays can report
 * throughput long after the campaign. The scheduler converts
 * obs::CampaignTelemetry into this flat record.
 */
struct JournalMetrics
{
    u64 runs = 0;
    u64 masked = 0;
    u64 sdc = 0;
    u64 crash = 0;
    u64 earlyTerminated = 0;
    u64 pruned = 0;              ///< faults classified without simulating
    u64 earlyStops = 0;          ///< runs ended by rung convergence
    u64 cyclesSimulated = 0;
    u64 cyclesSaved = 0;
    u64 cyclesFastForwarded = 0; ///< skipped via checkpoint-ladder rungs
    u64 wallMillis = 0;
    u64 idleMillis = 0;
    u32 workers = 0;

    /**
     * Wall-clock microseconds per profiler phase
     * (obs::profiler::Phase order: golden_build, rung_capture,
     * fast_forward, simulate, classify, prune, journal_io,
     * socket_wait, stop_check), summed over every thread/worker that
     * contributed to this journal. Optional on the wire format —
     * journals written before the profiler (or before a phase was
     * added) read back as zeros for the missing entries.
     */
    std::array<u64, obs::profiler::kNumPhases> phaseMicros{};

    bool operator==(const JournalMetrics &other) const = default;
};

/** Everything an intact journal prefix contains. */
struct Journal
{
    bool hasMeta = false;
    JournalMeta meta;
    std::vector<JournalVerdict> verdicts; ///< file order, may repeat
    u64 chunksCommitted = 0;
    bool droppedTornLine = false;
    u64 validBytes = 0; ///< length of the intact prefix
    bool hasMetrics = false;
    JournalMetrics metrics; ///< last metrics record, when present
};

/**
 * Append-only journal writer. Verdicts accumulate in a buffer and hit
 * the disk when `chunkSize` of them are pending (or on commit()/
 * close): the batch is written, fsync'd, then a chunk marker is
 * appended and fsync'd. Not internally synchronized — callers
 * serialize access (the scheduler holds its merge mutex).
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Create a fresh journal (truncating any previous file) and write
     * the meta record. fatal() on I/O errors.
     */
    void create(const std::string &path, const JournalMeta &meta,
                unsigned chunkSize = 32);

    /**
     * Re-open an existing journal for appending. The file is first
     * truncated to `validBytes` (from the tolerant reader) so a torn
     * final line can never corrupt the record that follows it.
     */
    void resume(const std::string &path, u64 validBytes,
                unsigned chunkSize = 32);

    bool open() const { return fd_ >= 0; }

    /** Queue one verdict; flushes a chunk when the buffer fills. */
    void append(u64 idx, const fi::RunVerdict &verdict);

    /** Queue one verdict with its execution provenance attached. */
    void append(u64 idx, const fi::RunVerdict &verdict,
                const VerdictProvenance &prov);

    /**
     * Write a campaign metrics record (commits pending verdicts
     * first, so the record lands after everything it summarizes).
     */
    void appendMetrics(const JournalMetrics &metrics);

    /** Flush and fsync everything buffered, then mark the chunk. */
    void commit();

    /** Commit and close the file. */
    void close();

    u64 chunksCommitted() const { return chunks_; }

  private:
    void writeLine(const std::string &line);
    void sync();

    int fd_ = -1;
    std::string path_;
    unsigned chunkSize_ = 32;
    u64 chunks_ = 0;
    std::vector<std::string> pending_;
};

/**
 * Tolerant journal reader: parses the intact prefix, drops a torn
 * final line, fatal()s on mid-file corruption. A journal whose meta
 * names a format version NEWER than this build fatal()s with a
 * distinct message naming the offending file and both versions —
 * unknown-but-well-formed future records are otherwise
 * indistinguishable from corruption. A missing file fatal()s —
 * callers gate resume on journalExists().
 */
Journal readJournal(const std::string &path);

/**
 * Record rendering and parsing, exposed so the dispatch protocol
 * (src/net) can frame the exact bytes the journal writes: a worker
 * streams formatVerdictLine() output, the daemon validates it with
 * parseVerdictLine() and re-appends it through its own JournalWriter,
 * and the campaign identity travels as one formatMetaLine() payload.
 */
std::string formatMetaLine(const JournalMeta &meta);
std::string formatVerdictLine(u64 idx, const fi::RunVerdict &verdict);

/** As above, appending the optional provenance fields when
 *  prov.present (byte-identical to the plain line otherwise). */
std::string formatVerdictLine(u64 idx, const fi::RunVerdict &verdict,
                              const VerdictProvenance &prov);

/** Parse one meta record; false unless `line` is an intact meta. */
bool parseMetaLine(const std::string &line, JournalMeta &out);

/** Parse one verdict record; false unless intact. */
bool parseVerdictLine(const std::string &line, JournalVerdict &out);

/**
 * Write a whole-campaign journal in canonical form: the meta record
 * normalized to shard 0/1, every fault index's verdict exactly once
 * (the FIRST record per index wins, matching merge and resume
 * semantics), sorted ascending by index, then one chunk record
 * covering them all. Journals holding the same verdicts canonicalize
 * to byte-identical files regardless of worker count, thread
 * interleaving, chunk geometry, or metrics records — so "distributed
 * run == single-process run" is a cmp(1) of two canonical files. The
 * meta's early-stop flag is normalized to 0 alongside the shard
 * geometry: early stopping never changes a verdict, so it must not
 * change the canonical bytes either.
 */
void writeCanonicalJournal(const std::string &path, JournalMeta meta,
                           const std::vector<JournalVerdict> &verdicts);

/** True when the path exists and begins with a journal meta line. */
bool journalExists(const std::string &path);

} // namespace marvel::store

#endif // MARVEL_STORE_JOURNAL_HH
