#include "store/serialize.hh"

#include "common/log.hh"

namespace marvel::store
{

u8
ByteReader::u8v()
{
    if (pos_ + 1 > bytes_.size())
        fatal("store: serialized record truncated (u8 underrun)");
    return bytes_[pos_++];
}

u64
ByteReader::u64v()
{
    if (pos_ + 8 > bytes_.size())
        fatal("store: serialized record truncated (u64 underrun)");
    u64 value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<u64>(bytes_[pos_++]) << (8 * i);
    return value;
}

std::vector<u8>
ByteReader::blob()
{
    const u64 len = u64v();
    if (pos_ + len > bytes_.size())
        fatal("store: serialized record truncated (blob underrun)");
    std::vector<u8> out(bytes_.begin() + pos_,
                        bytes_.begin() + pos_ + len);
    pos_ += len;
    return out;
}

std::string
ByteReader::str()
{
    const std::vector<u8> raw = blob();
    return std::string(raw.begin(), raw.end());
}

GoldenRecord
goldenRecordOf(const fi::GoldenRun &golden)
{
    GoldenRecord record;
    record.archDigest = soc::archStateDigest(golden.checkpoint.view());
    u64 hash = kFnvOffset;
    for (const cpu::CommitRecord &r : golden.trace) {
        ByteWriter w;
        w.u64v(r.pc);
        w.u8v(r.op);
        w.u8v(r.dstCls);
        w.u8v(r.dstIdx);
        w.u64v(r.result);
        w.u64v(r.memAddr);
        w.u64v(r.storeData);
        hash = fnv1a(w.bytes(), hash);
    }
    record.traceDigest = hash;
    record.traceLength = golden.trace.size();
    record.output = golden.output;
    record.exitCode = golden.exitCode;
    record.console = golden.console;
    record.preCycles = golden.preCycles;
    record.windowCycles = golden.windowCycles;
    record.totalCycles = golden.totalCycles;
    for (const fi::LadderRung &rung : golden.ladder) {
        GoldenRungRecord rr;
        rr.cycle = rung.cycle;
        rr.traceIndex = rung.traceIndex;
        rr.archDigest = soc::archStateDigest(rung.checkpoint.view());
        record.rungs.push_back(rr);
    }
    return record;
}

std::vector<u8>
serializeGoldenRecord(const GoldenRecord &record)
{
    ByteWriter w;
    w.u64v(record.archDigest);
    w.u64v(record.traceDigest);
    w.u64v(record.traceLength);
    w.blob(record.output.data(), record.output.size());
    w.i64v(record.exitCode);
    w.str(record.console);
    w.u64v(record.preCycles);
    w.u64v(record.windowCycles);
    w.u64v(record.totalCycles);
    w.u64v(record.rungs.size());
    for (const GoldenRungRecord &rung : record.rungs) {
        w.u64v(rung.cycle);
        w.u64v(rung.traceIndex);
        w.u64v(rung.archDigest);
    }
    return w.take();
}

GoldenRecord
deserializeGoldenRecord(const std::vector<u8> &bytes)
{
    ByteReader r(bytes);
    GoldenRecord record;
    record.archDigest = r.u64v();
    record.traceDigest = r.u64v();
    record.traceLength = r.u64v();
    record.output = r.blob();
    record.exitCode = r.i64v();
    record.console = r.str();
    record.preCycles = r.u64v();
    record.windowCycles = r.u64v();
    record.totalCycles = r.u64v();
    // The rung section was appended to the payload; blobs written
    // before it existed simply end here (ladder-less golden).
    if (!r.atEnd()) {
        const u64 count = r.u64v();
        for (u64 i = 0; i < count; ++i) {
            GoldenRungRecord rung;
            rung.cycle = r.u64v();
            rung.traceIndex = r.u64v();
            rung.archDigest = r.u64v();
            record.rungs.push_back(rung);
        }
    }
    if (!r.atEnd())
        fatal("store: golden record has trailing bytes");
    return record;
}

void
saveGoldenRun(const std::string &path, const fi::GoldenRun &golden)
{
    writeBlob(path, BlobKind::GoldenRun,
              serializeGoldenRecord(goldenRecordOf(golden)));
}

GoldenRecord
loadGoldenRecord(const std::string &path)
{
    return deserializeGoldenRecord(
        readBlob(path, BlobKind::GoldenRun));
}

void
saveCheckpoint(const std::string &path,
               const soc::Checkpoint &checkpoint)
{
    if (!checkpoint.valid())
        fatal("store: cannot save an empty checkpoint");
    writeBlob(path, BlobKind::ArchState,
              soc::serializeArchState(checkpoint.view()));
}

std::vector<u8>
loadCheckpointBytes(const std::string &path)
{
    return readBlob(path, BlobKind::ArchState);
}

} // namespace marvel::store
