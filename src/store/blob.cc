#include "store/blob.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"

namespace marvel::store
{

namespace
{

constexpr char kMagic[8] = {'M', 'R', 'V', 'L', 'S', 'T', 'O', 'R'};

void
put32(u8 *out, u32 value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<u8>(value >> (8 * i));
}

void
put64(u8 *out, u64 value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<u8>(value >> (8 * i));
}

u32
get32(const u8 *in)
{
    u32 value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<u32>(in[i]) << (8 * i);
    return value;
}

u64
get64(const u8 *in)
{
    u64 value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<u64>(in[i]) << (8 * i);
    return value;
}

constexpr std::size_t kHeaderSize = 32;

} // namespace

void
writeBlob(const std::string &path, BlobKind kind,
          const std::vector<u8> &payload)
{
    u8 header[kHeaderSize];
    std::memcpy(header, kMagic, sizeof(kMagic));
    put32(header + 8, kBlobFormatVersion);
    put32(header + 12, static_cast<u32>(kind));
    put64(header + 16, payload.size());
    put64(header + 24, fnv1a(payload));

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("store: cannot create '%s': %s", tmp.c_str(),
              std::strerror(errno));

    auto writeAll = [&](const u8 *data, std::size_t len) {
        while (len > 0) {
            const ssize_t n = ::write(fd, data, len);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                ::close(fd);
                fatal("store: write to '%s' failed: %s", tmp.c_str(),
                      std::strerror(errno));
            }
            data += n;
            len -= static_cast<std::size_t>(n);
        }
    };
    writeAll(header, kHeaderSize);
    if (!payload.empty())
        writeAll(payload.data(), payload.size());
    if (::fsync(fd) != 0) {
        ::close(fd);
        fatal("store: fsync of '%s' failed: %s", tmp.c_str(),
              std::strerror(errno));
    }
    ::close(fd);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("store: rename '%s' -> '%s' failed: %s", tmp.c_str(),
              path.c_str(), std::strerror(errno));
}

std::vector<u8>
readBlob(const std::string &path, BlobKind kind)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("store: cannot open '%s': %s", path.c_str(),
              std::strerror(errno));

    u8 header[kHeaderSize];
    if (std::fread(header, 1, kHeaderSize, file) != kHeaderSize) {
        std::fclose(file);
        fatal("store: '%s' is truncated (no header)", path.c_str());
    }
    if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
        std::fclose(file);
        fatal("store: '%s' is not a MARVEL blob (bad magic)",
              path.c_str());
    }
    const u32 version = get32(header + 8);
    if (version != kBlobFormatVersion) {
        std::fclose(file);
        fatal("store: '%s' has format version %u, expected %u",
              path.c_str(), version, kBlobFormatVersion);
    }
    const u32 fileKind = get32(header + 12);
    if (fileKind != static_cast<u32>(kind)) {
        std::fclose(file);
        fatal("store: '%s' holds blob kind %u, expected %u",
              path.c_str(), fileKind, static_cast<u32>(kind));
    }
    const u64 length = get64(header + 16);
    const u64 digest = get64(header + 24);

    std::vector<u8> payload(length);
    if (length > 0 &&
        std::fread(payload.data(), 1, length, file) != length) {
        std::fclose(file);
        fatal("store: '%s' is truncated (payload shorter than "
              "header claims)", path.c_str());
    }
    // Trailing garbage would mean the header lied about the length.
    u8 extra;
    const bool hasExtra = std::fread(&extra, 1, 1, file) == 1;
    std::fclose(file);
    if (hasExtra)
        fatal("store: '%s' has trailing bytes beyond the payload",
              path.c_str());
    if (fnv1a(payload) != digest)
        fatal("store: '%s' failed its digest check (corrupt payload)",
              path.c_str());
    return payload;
}

bool
blobExists(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    u8 header[8];
    const bool ok = std::fread(header, 1, 8, file) == 8 &&
                    std::memcmp(header, kMagic, 8) == 0;
    std::fclose(file);
    return ok;
}

} // namespace marvel::store
