/**
 * @file
 * Durable lease table for the distributed campaign daemon.
 *
 * The verdict journal already makes completed work durable; what it
 * cannot record is work that is *promised* — a fault-index range
 * leased to a worker that is still simulating it. A daemon that
 * crashed and forgot its promises would re-grant those ranges
 * immediately on restart, and two workers would burn cycles on (and
 * double-journal) the same faults. The lease table closes that gap:
 * every grant/complete/expiry rewrites a tiny JSONL snapshot next to
 * the journal (<journal>.leases), atomically (write-temp + rename)
 * like the heartbeat, so a restarted daemon re-adopts its outstanding
 * leases and lets them run to completion or expiry before re-leasing.
 *
 * Deadlines are persisted as remaining TTL, not absolute time: a
 * restarted daemon re-arms each adopted lease with its full TTL,
 * which is conservative (never expires a lease early just because the
 * daemon was down) and keeps the file free of wall-clock epochs.
 */

#ifndef MARVEL_STORE_LEASETAB_HH
#define MARVEL_STORE_LEASETAB_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace marvel::store
{

constexpr u32 kLeaseTableFormatVersion = 1;

/** One outstanding lease: fault indices [begin, end). */
struct LeaseRecord
{
    u64 id = 0;
    u64 begin = 0;
    u64 end = 0;
    std::string worker; ///< informational: who held it at snapshot

    bool operator==(const LeaseRecord &other) const = default;
};

/** Everything the daemon must remember across a restart. */
struct LeaseTable
{
    u64 nextId = 1; ///< ids keep ascending across restarts
    std::vector<LeaseRecord> active;

    bool operator==(const LeaseTable &other) const = default;
};

/** Where the lease table for a journal lives: `<journal>.leases`. */
std::string leaseTablePath(const std::string &journalPath);

/**
 * Atomically replace `path` with a snapshot of `table`. fatal() on
 * filesystem errors — a daemon that cannot persist its promises must
 * not keep making them.
 */
void saveLeaseTable(const std::string &path, const LeaseTable &table);

/**
 * Read a lease table back. Returns false (leaving `out` untouched)
 * when the file is missing — a fresh campaign. A malformed file
 * fatal()s: unlike the heartbeat there is no benign writer race
 * (saves are atomic and the daemon is single-threaded), so damage
 * means real corruption and silently dropping leases would re-grant
 * in-flight work.
 */
bool loadLeaseTable(const std::string &path, LeaseTable &out);

} // namespace marvel::store

#endif // MARVEL_STORE_LEASETAB_HH
