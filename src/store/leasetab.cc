#include "store/leasetab.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "common/json.hh"
#include "common/log.hh"

namespace marvel::store
{

std::string
leaseTablePath(const std::string &journalPath)
{
    return journalPath + ".leases";
}

void
saveLeaseTable(const std::string &path, const LeaseTable &table)
{
    std::string body = strfmt(
        "{\"type\":\"leasetab\",\"version\":%u,\"nextId\":%llu,"
        "\"active\":%zu}\n",
        kLeaseTableFormatVersion,
        static_cast<unsigned long long>(table.nextId),
        table.active.size());
    for (const LeaseRecord &lease : table.active)
        body += strfmt(
            "{\"type\":\"lease\",\"id\":%llu,\"begin\":%llu,"
            "\"end\":%llu,\"worker\":\"%s\"}\n",
            static_cast<unsigned long long>(lease.id),
            static_cast<unsigned long long>(lease.begin),
            static_cast<unsigned long long>(lease.end),
            json::escape(lease.worker).c_str());

    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        fatal("leasetab: cannot write '%s': %s", tmp.c_str(),
              std::strerror(errno));
    const bool ok =
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (std::fclose(f) != 0 || !ok)
        fatal("leasetab: short write to '%s'", tmp.c_str());
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        fatal("leasetab: rename '%s' -> '%s' failed: %s",
              tmp.c_str(), path.c_str(), std::strerror(errno));
}

bool
loadLeaseTable(const std::string &path, LeaseTable &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false; // fresh campaign: no promises outstanding
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    std::fclose(f);

    LeaseTable table;
    bool sawHeader = false;
    u64 expectedActive = 0;
    std::size_t pos = 0;
    while (pos < content.size()) {
        std::size_t nl = content.find('\n', pos);
        if (nl == std::string::npos)
            nl = content.size();
        const std::string line = content.substr(pos, nl - pos);
        pos = nl + 1;
        if (line.empty())
            continue;
        std::map<std::string, std::string> fields;
        std::string type;
        if (!json::parseFlat(line, fields) ||
            !json::fieldStr(fields, "type", type))
            fatal("leasetab: '%s' is corrupt: %s", path.c_str(),
                  line.c_str());
        if (type == "leasetab") {
            u64 version = 0;
            if (sawHeader ||
                !json::fieldU64(fields, "version", version) ||
                version != kLeaseTableFormatVersion ||
                !json::fieldU64(fields, "nextId", table.nextId) ||
                !json::fieldU64(fields, "active", expectedActive))
                fatal("leasetab: '%s' has a bad header: %s",
                      path.c_str(), line.c_str());
            sawHeader = true;
        } else if (type == "lease") {
            LeaseRecord lease;
            if (!sawHeader ||
                !json::fieldU64(fields, "id", lease.id) ||
                !json::fieldU64(fields, "begin", lease.begin) ||
                !json::fieldU64(fields, "end", lease.end) ||
                lease.begin >= lease.end)
                fatal("leasetab: '%s' has a bad lease record: %s",
                      path.c_str(), line.c_str());
            json::fieldStr(fields, "worker", lease.worker);
            table.active.push_back(lease);
        } else {
            fatal("leasetab: '%s' has an unknown record: %s",
                  path.c_str(), line.c_str());
        }
    }
    if (!sawHeader || table.active.size() != expectedActive)
        fatal("leasetab: '%s' is truncated (%zu of %llu leases)",
              path.c_str(), table.active.size(),
              static_cast<unsigned long long>(expectedActive));
    out = table;
    return true;
}

} // namespace marvel::store
