#include "store/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <unistd.h>

#include "common/log.hh"

namespace marvel::store
{

namespace
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strfmt("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

/**
 * Parse one flat JSON object ({"key":value,...} with string or
 * integer values) into a key -> literal map. Returns false on any
 * syntax error; never throws.
 */
bool
parseFlatJson(const std::string &line,
              std::map<std::string, std::string> &out)
{
    std::size_t i = 0;
    auto skipWs = [&]() {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t'))
            ++i;
    };
    auto parseString = [&](std::string &value) {
        if (i >= line.size() || line[i] != '"')
            return false;
        ++i;
        value.clear();
        while (i < line.size() && line[i] != '"') {
            char c = line[i++];
            if (c == '\\') {
                if (i >= line.size())
                    return false;
                const char esc = line[i++];
                switch (esc) {
                  case '"': value += '"'; break;
                  case '\\': value += '\\'; break;
                  case 'n': value += '\n'; break;
                  case 'r': value += '\r'; break;
                  case 't': value += '\t'; break;
                  case 'u': {
                    if (i + 4 > line.size())
                        return false;
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char h = line[i++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    if (code > 0x7f)
                        return false; // journal strings are ASCII
                    value += static_cast<char>(code);
                    break;
                  }
                  default:
                    return false;
                }
            } else {
                value += c;
            }
        }
        if (i >= line.size())
            return false;
        ++i; // closing quote
        return true;
    };

    skipWs();
    if (i >= line.size() || line[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < line.size() && line[i] == '}') {
        ++i;
    } else {
        for (;;) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (i >= line.size() || line[i] != ':')
                return false;
            ++i;
            skipWs();
            std::string value;
            if (i < line.size() && line[i] == '"') {
                if (!parseString(value))
                    return false;
            } else {
                const std::size_t start = i;
                if (i < line.size() && line[i] == '-')
                    ++i;
                while (i < line.size() && line[i] >= '0' &&
                       line[i] <= '9')
                    ++i;
                if (i == start)
                    return false;
                value = line.substr(start, i - start);
            }
            out[key] = value;
            skipWs();
            if (i < line.size() && line[i] == ',') {
                ++i;
                continue;
            }
            if (i < line.size() && line[i] == '}') {
                ++i;
                break;
            }
            return false;
        }
    }
    skipWs();
    return i == line.size();
}

bool
fieldU64(const std::map<std::string, std::string> &fields,
         const char *key, u64 &out)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return false;
    errno = 0;
    char *end = nullptr;
    out = std::strtoull(it->second.c_str(), &end, 10);
    return errno == 0 && end && *end == '\0';
}

bool
fieldStr(const std::map<std::string, std::string> &fields,
         const char *key, std::string &out)
{
    const auto it = fields.find(key);
    if (it == fields.end())
        return false;
    out = it->second;
    return true;
}

bool
outcomeFromName(const std::string &name, fi::Outcome &out)
{
    for (int i = 0; i <= static_cast<int>(fi::Outcome::Crash); ++i) {
        const auto o = static_cast<fi::Outcome>(i);
        if (name == fi::outcomeName(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

bool
detailFromName(const std::string &name, fi::OutcomeDetail &out)
{
    for (int i = 0;
         i <= static_cast<int>(fi::OutcomeDetail::MaskedPruned);
         ++i) {
        const auto d = static_cast<fi::OutcomeDetail>(i);
        if (name == fi::outcomeDetailName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

std::string
metaLine(const JournalMeta &meta)
{
    return strfmt(
        "{\"type\":\"meta\",\"version\":%u,\"workload\":\"%s\","
        "\"target\":\"%s\",\"model\":\"%s\",\"seed\":%llu,"
        "\"faults\":%llu,\"shard\":%u,\"shards\":%u,"
        "\"goldenDigest\":%llu,\"goldenCycles\":%llu,"
        "\"windowCycles\":%llu,\"entries\":%u,\"bitsPerEntry\":%u,"
        "\"marvelVersion\":\"%s\",\"earlyTerm\":%u,\"hvf\":%u,"
        "\"timeoutFactorMilli\":%llu,\"ladderRungs\":%u,"
        "\"prune\":%u}",
        kJournalFormatVersion, jsonEscape(meta.workload).c_str(),
        jsonEscape(meta.target).c_str(),
        jsonEscape(meta.model).c_str(),
        static_cast<unsigned long long>(meta.seed),
        static_cast<unsigned long long>(meta.numFaults),
        meta.shardIndex, meta.shardCount,
        static_cast<unsigned long long>(meta.goldenDigest),
        static_cast<unsigned long long>(meta.goldenCycles),
        static_cast<unsigned long long>(meta.windowCycles),
        meta.entries, meta.bitsPerEntry,
        jsonEscape(meta.marvelVersion).c_str(), meta.optEarlyTerm,
        meta.optHvf,
        static_cast<unsigned long long>(meta.timeoutFactorMilli),
        meta.ladderRungs, meta.optPrune);
}

std::string
metricsLine(const JournalMetrics &m)
{
    return strfmt(
        "{\"type\":\"metrics\",\"runs\":%llu,\"masked\":%llu,"
        "\"sdc\":%llu,\"crash\":%llu,\"earlyTerminated\":%llu,"
        "\"pruned\":%llu,\"cyclesSimulated\":%llu,"
        "\"cyclesSaved\":%llu,\"cyclesFastForwarded\":%llu,"
        "\"wallMillis\":%llu,\"idleMillis\":%llu,\"workers\":%u}",
        static_cast<unsigned long long>(m.runs),
        static_cast<unsigned long long>(m.masked),
        static_cast<unsigned long long>(m.sdc),
        static_cast<unsigned long long>(m.crash),
        static_cast<unsigned long long>(m.earlyTerminated),
        static_cast<unsigned long long>(m.pruned),
        static_cast<unsigned long long>(m.cyclesSimulated),
        static_cast<unsigned long long>(m.cyclesSaved),
        static_cast<unsigned long long>(m.cyclesFastForwarded),
        static_cast<unsigned long long>(m.wallMillis),
        static_cast<unsigned long long>(m.idleMillis), m.workers);
}

std::string
verdictLine(u64 idx, const fi::RunVerdict &verdict)
{
    return strfmt(
        "{\"type\":\"verdict\",\"idx\":%llu,\"outcome\":\"%s\","
        "\"detail\":\"%s\",\"hvf\":%d,\"hvfCycle\":%llu,"
        "\"early\":%d,\"cycles\":%llu}",
        static_cast<unsigned long long>(idx),
        fi::outcomeName(verdict.outcome),
        fi::outcomeDetailName(verdict.detail),
        verdict.hvfCorruption ? 1 : 0,
        static_cast<unsigned long long>(verdict.hvfCorruptCycle),
        verdict.terminatedEarly ? 1 : 0,
        static_cast<unsigned long long>(verdict.cyclesRun));
}

/** Parse one intact journal line into the Journal aggregate. */
bool
applyLine(const std::string &line, Journal &journal)
{
    std::map<std::string, std::string> fields;
    if (!parseFlatJson(line, fields))
        return false;
    std::string type;
    if (!fieldStr(fields, "type", type))
        return false;

    if (type == "meta") {
        u64 version = 0;
        JournalMeta meta;
        u64 seed, faults, shard, shards, digest, goldenCycles,
            windowCycles, entries, bits;
        if (!fieldU64(fields, "version", version) ||
            version != kJournalFormatVersion)
            return false;
        if (!fieldStr(fields, "workload", meta.workload) ||
            !fieldStr(fields, "target", meta.target) ||
            !fieldStr(fields, "model", meta.model) ||
            !fieldU64(fields, "seed", seed) ||
            !fieldU64(fields, "faults", faults) ||
            !fieldU64(fields, "shard", shard) ||
            !fieldU64(fields, "shards", shards) ||
            !fieldU64(fields, "goldenDigest", digest) ||
            !fieldU64(fields, "goldenCycles", goldenCycles) ||
            !fieldU64(fields, "windowCycles", windowCycles) ||
            !fieldU64(fields, "entries", entries) ||
            !fieldU64(fields, "bitsPerEntry", bits))
            return false;
        meta.seed = seed;
        meta.numFaults = faults;
        meta.shardIndex = static_cast<u32>(shard);
        meta.shardCount = static_cast<u32>(shards);
        meta.goldenDigest = digest;
        meta.goldenCycles = goldenCycles;
        meta.windowCycles = windowCycles;
        meta.entries = static_cast<u32>(entries);
        meta.bitsPerEntry = static_cast<u32>(bits);
        // Optional run-option fields (absent in older journals; the
        // struct defaults match the historical campaign defaults).
        fieldStr(fields, "marvelVersion", meta.marvelVersion);
        u64 opt = 0;
        if (fieldU64(fields, "earlyTerm", opt))
            meta.optEarlyTerm = static_cast<u32>(opt);
        if (fieldU64(fields, "hvf", opt))
            meta.optHvf = static_cast<u32>(opt);
        if (fieldU64(fields, "timeoutFactorMilli", opt))
            meta.timeoutFactorMilli = opt;
        if (fieldU64(fields, "ladderRungs", opt))
            meta.ladderRungs = static_cast<u32>(opt);
        if (fieldU64(fields, "prune", opt))
            meta.optPrune = static_cast<u32>(opt);
        if (journal.hasMeta)
            return false; // one meta per journal
        journal.hasMeta = true;
        journal.meta = meta;
        return true;
    }
    if (type == "verdict") {
        JournalVerdict jv;
        std::string outcome, detail;
        u64 hvf, hvfCycle, early, cycles;
        if (!fieldU64(fields, "idx", jv.idx) ||
            !fieldStr(fields, "outcome", outcome) ||
            !fieldStr(fields, "detail", detail) ||
            !fieldU64(fields, "hvf", hvf) ||
            !fieldU64(fields, "hvfCycle", hvfCycle) ||
            !fieldU64(fields, "early", early) ||
            !fieldU64(fields, "cycles", cycles))
            return false;
        if (!outcomeFromName(outcome, jv.verdict.outcome) ||
            !detailFromName(detail, jv.verdict.detail))
            return false;
        jv.verdict.hvfCorruption = hvf != 0;
        jv.verdict.hvfCorruptCycle = hvfCycle;
        jv.verdict.terminatedEarly = early != 0;
        jv.verdict.cyclesRun = cycles;
        journal.verdicts.push_back(jv);
        return true;
    }
    if (type == "chunk") {
        u64 done = 0;
        if (!fieldU64(fields, "done", done))
            return false;
        ++journal.chunksCommitted;
        return true;
    }
    if (type == "metrics") {
        JournalMetrics m;
        u64 workers = 0;
        if (!fieldU64(fields, "runs", m.runs))
            return false;
        fieldU64(fields, "masked", m.masked);
        fieldU64(fields, "sdc", m.sdc);
        fieldU64(fields, "crash", m.crash);
        fieldU64(fields, "earlyTerminated", m.earlyTerminated);
        fieldU64(fields, "pruned", m.pruned);
        fieldU64(fields, "cyclesSimulated", m.cyclesSimulated);
        fieldU64(fields, "cyclesSaved", m.cyclesSaved);
        fieldU64(fields, "cyclesFastForwarded", m.cyclesFastForwarded);
        fieldU64(fields, "wallMillis", m.wallMillis);
        fieldU64(fields, "idleMillis", m.idleMillis);
        if (fieldU64(fields, "workers", workers))
            m.workers = static_cast<u32>(workers);
        journal.hasMetrics = true;
        journal.metrics = m; // a later record supersedes an earlier
        return true;
    }
    return false; // unknown record type
}

} // namespace

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        close();
}

void
JournalWriter::create(const std::string &path,
                      const JournalMeta &meta, unsigned chunkSize)
{
    if (fd_ >= 0)
        panic("journal: writer already open");
    fd_ = ::open(path.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (fd_ < 0)
        fatal("journal: cannot create '%s': %s", path.c_str(),
              std::strerror(errno));
    path_ = path;
    chunkSize_ = chunkSize ? chunkSize : 1;
    writeLine(metaLine(meta));
    sync(); // the identity record must survive any later crash
}

void
JournalWriter::resume(const std::string &path, u64 validBytes,
                      unsigned chunkSize)
{
    if (fd_ >= 0)
        panic("journal: writer already open");
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0)
        fatal("journal: cannot reopen '%s': %s", path.c_str(),
              std::strerror(errno));
    // Cut off any torn final line so appended records start on a
    // clean line boundary.
    if (::ftruncate(fd_, static_cast<off_t>(validBytes)) != 0) {
        ::close(fd_);
        fd_ = -1;
        fatal("journal: cannot truncate '%s' to %llu bytes: %s",
              path.c_str(),
              static_cast<unsigned long long>(validBytes),
              std::strerror(errno));
    }
    path_ = path;
    chunkSize_ = chunkSize ? chunkSize : 1;
}

void
JournalWriter::writeLine(const std::string &line)
{
    std::string buf = line;
    buf += '\n';
    const char *data = buf.data();
    std::size_t len = buf.size();
    while (len > 0) {
        const ssize_t n = ::write(fd_, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("journal: write to '%s' failed: %s", path_.c_str(),
                  std::strerror(errno));
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
JournalWriter::sync()
{
    if (::fsync(fd_) != 0)
        fatal("journal: fsync of '%s' failed: %s", path_.c_str(),
              std::strerror(errno));
}

void
JournalWriter::append(u64 idx, const fi::RunVerdict &verdict)
{
    if (fd_ < 0)
        panic("journal: append on a closed writer");
    pending_.push_back(verdictLine(idx, verdict));
    if (pending_.size() >= chunkSize_)
        commit();
}

void
JournalWriter::appendMetrics(const JournalMetrics &metrics)
{
    if (fd_ < 0)
        panic("journal: appendMetrics on a closed writer");
    commit(); // the record must land after what it summarizes
    writeLine(metricsLine(metrics));
    sync();
}

void
JournalWriter::commit()
{
    if (fd_ < 0)
        panic("journal: commit on a closed writer");
    if (pending_.empty())
        return;
    for (const std::string &line : pending_)
        writeLine(line);
    sync(); // verdicts are durable before the chunk marker claims so
    writeLine(strfmt("{\"type\":\"chunk\",\"done\":%zu}",
                     pending_.size()));
    sync();
    pending_.clear();
    ++chunks_;
}

void
JournalWriter::close()
{
    if (fd_ < 0)
        return;
    commit();
    ::close(fd_);
    fd_ = -1;
}

Journal
readJournal(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("journal: cannot open '%s': %s", path.c_str(),
              std::strerror(errno));
    std::string content;
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        content.append(buf, n);
    const bool readError = std::ferror(file);
    std::fclose(file);
    if (readError)
        fatal("journal: read of '%s' failed", path.c_str());

    Journal journal;
    std::size_t pos = 0;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            content.substr(pos, complete ? nl - pos
                                         : std::string::npos);
        const std::size_t next =
            complete ? nl + 1 : content.size();
        if (line.empty()) {
            // A blank line can only be torn padding at the tail.
            if (next < content.size())
                fatal("journal: '%s' has an empty record at byte "
                      "%zu", path.c_str(), pos);
            journal.droppedTornLine = true;
            break;
        }
        if (!complete || !applyLine(line, journal)) {
            // Tolerate exactly one torn/garbage line at the very end
            // of the file; anything followed by more data is real
            // corruption.
            if (next < content.size())
                fatal("journal: '%s' is corrupt at byte %zu: %s",
                      path.c_str(), pos, line.c_str());
            journal.droppedTornLine = true;
            break;
        }
        pos = next;
        journal.validBytes = pos;
    }
    if (!journal.hasMeta)
        fatal("journal: '%s' has no intact meta record",
              path.c_str());
    return journal;
}

bool
journalExists(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    char head[16] = {};
    const std::size_t n = std::fread(head, 1, sizeof(head) - 1, file);
    std::fclose(file);
    return n > 0 && std::strncmp(head, "{\"type\":\"meta\"", 14) == 0;
}

} // namespace marvel::store
