#include "store/journal.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include <fcntl.h>
#include <unistd.h>

#include "common/json.hh"
#include "common/log.hh"
#include "obs/profiler.hh"

namespace marvel::store
{

namespace
{

using json::fieldStr;
using json::fieldU64;

bool
outcomeFromName(const std::string &name, fi::Outcome &out)
{
    for (int i = 0; i <= static_cast<int>(fi::Outcome::Crash); ++i) {
        const auto o = static_cast<fi::Outcome>(i);
        if (name == fi::outcomeName(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

bool
detailFromName(const std::string &name, fi::OutcomeDetail &out)
{
    for (int i = 0;
         i <= static_cast<int>(fi::OutcomeDetail::MaskedInAccel);
         ++i) {
        const auto d = static_cast<fi::OutcomeDetail>(i);
        if (name == fi::outcomeDetailName(d)) {
            out = d;
            return true;
        }
    }
    return false;
}

/** JSON key for phase p's wall-time field ("ph_simulate_us"). */
std::string
phaseKey(unsigned p)
{
    return strfmt("ph_%s_us", obs::profiler::phaseName(
                                  static_cast<obs::profiler::Phase>(p)));
}

std::string
metricsLine(const JournalMetrics &m)
{
    std::string line = strfmt(
        "{\"type\":\"metrics\",\"runs\":%llu,\"masked\":%llu,"
        "\"sdc\":%llu,\"crash\":%llu,\"earlyTerminated\":%llu,"
        "\"pruned\":%llu,\"earlyStops\":%llu,"
        "\"cyclesSimulated\":%llu,"
        "\"cyclesSaved\":%llu,\"cyclesFastForwarded\":%llu,"
        "\"wallMillis\":%llu,\"idleMillis\":%llu,\"workers\":%u",
        static_cast<unsigned long long>(m.runs),
        static_cast<unsigned long long>(m.masked),
        static_cast<unsigned long long>(m.sdc),
        static_cast<unsigned long long>(m.crash),
        static_cast<unsigned long long>(m.earlyTerminated),
        static_cast<unsigned long long>(m.pruned),
        static_cast<unsigned long long>(m.earlyStops),
        static_cast<unsigned long long>(m.cyclesSimulated),
        static_cast<unsigned long long>(m.cyclesSaved),
        static_cast<unsigned long long>(m.cyclesFastForwarded),
        static_cast<unsigned long long>(m.wallMillis),
        static_cast<unsigned long long>(m.idleMillis), m.workers);
    for (unsigned p = 0; p < obs::profiler::kNumPhases; ++p)
        line += strfmt(",\"%s\":%llu", phaseKey(p).c_str(),
                       static_cast<unsigned long long>(
                           m.phaseMicros[p]));
    line += '}';
    return line;
}

/**
 * Decode an already-parsed meta record's fields. When `err` is given,
 * a meta from a NEWER format version reports a dedicated message
 * there (still returning false) so readJournal can name the file
 * instead of calling a well-formed future journal "corrupt".
 */
bool
metaFromFields(const std::map<std::string, std::string> &fields,
               JournalMeta &out, std::string *err = nullptr)
{
    u64 version = 0;
    JournalMeta meta;
    u64 seed, faults, shard, shards, digest, goldenCycles,
        windowCycles, entries, bits;
    if (!fieldU64(fields, "version", version))
        return false;
    if (version != kJournalFormatVersion) {
        if (err && version > kJournalFormatVersion)
            *err = strfmt("format version %llu is newer than this "
                          "build's %u; upgrade marvel to read it",
                          static_cast<unsigned long long>(version),
                          kJournalFormatVersion);
        return false;
    }
    if (!fieldStr(fields, "workload", meta.workload) ||
        !fieldStr(fields, "target", meta.target) ||
        !fieldStr(fields, "model", meta.model) ||
        !fieldU64(fields, "seed", seed) ||
        !fieldU64(fields, "faults", faults) ||
        !fieldU64(fields, "shard", shard) ||
        !fieldU64(fields, "shards", shards) ||
        !fieldU64(fields, "goldenDigest", digest) ||
        !fieldU64(fields, "goldenCycles", goldenCycles) ||
        !fieldU64(fields, "windowCycles", windowCycles) ||
        !fieldU64(fields, "entries", entries) ||
        !fieldU64(fields, "bitsPerEntry", bits))
        return false;
    meta.seed = seed;
    meta.numFaults = faults;
    meta.shardIndex = static_cast<u32>(shard);
    meta.shardCount = static_cast<u32>(shards);
    meta.goldenDigest = digest;
    meta.goldenCycles = goldenCycles;
    meta.windowCycles = windowCycles;
    meta.entries = static_cast<u32>(entries);
    meta.bitsPerEntry = static_cast<u32>(bits);
    // Optional run-option fields (absent in older journals; the
    // struct defaults match the historical campaign defaults).
    fieldStr(fields, "marvelVersion", meta.marvelVersion);
    u64 opt = 0;
    if (fieldU64(fields, "earlyTerm", opt))
        meta.optEarlyTerm = static_cast<u32>(opt);
    if (fieldU64(fields, "hvf", opt))
        meta.optHvf = static_cast<u32>(opt);
    if (fieldU64(fields, "timeoutFactorMilli", opt))
        meta.timeoutFactorMilli = opt;
    if (fieldU64(fields, "ladderRungs", opt))
        meta.ladderRungs = static_cast<u32>(opt);
    if (fieldU64(fields, "prune", opt))
        meta.optPrune = static_cast<u32>(opt);
    if (fieldU64(fields, "earlyStop", opt))
        meta.optEarlyStop = static_cast<u32>(opt);
    // Absent in pre-fault-model journals AND in journals written for
    // the legacy Single model — both mean the uniform single-bit draw.
    fieldStr(fields, "faultModel", meta.faultModel);
    out = meta;
    return true;
}

/** Decode an already-parsed verdict record's fields. */
bool
verdictFromFields(const std::map<std::string, std::string> &fields,
                  JournalVerdict &out)
{
    JournalVerdict jv;
    std::string outcome, detail;
    u64 hvf, hvfCycle, early, cycles;
    if (!fieldU64(fields, "idx", jv.idx) ||
        !fieldStr(fields, "outcome", outcome) ||
        !fieldStr(fields, "detail", detail) ||
        !fieldU64(fields, "hvf", hvf) ||
        !fieldU64(fields, "hvfCycle", hvfCycle) ||
        !fieldU64(fields, "early", early) ||
        !fieldU64(fields, "cycles", cycles))
        return false;
    if (!outcomeFromName(outcome, jv.verdict.outcome) ||
        !detailFromName(detail, jv.verdict.detail))
        return false;
    jv.verdict.hvfCorruption = hvf != 0;
    jv.verdict.hvfCorruptCycle = hvfCycle;
    jv.verdict.terminatedEarly = early != 0;
    jv.verdict.cyclesRun = cycles;
    // Optional execution provenance (wall_us and friends travel
    // together; journals written before the fields existed — and
    // canonical journals, which strip them — read back as absent).
    u64 wallUs = 0;
    if (fieldU64(fields, "wall_us", wallUs)) {
        jv.prov.present = true;
        jv.prov.wallMicros = wallUs;
        u64 v = 0;
        if (fieldU64(fields, "rung", v))
            jv.prov.rung = static_cast<u32>(v);
        if (fieldU64(fields, "ff", v))
            jv.prov.fastForwarded = v;
        if (fieldU64(fields, "pruned", v))
            jv.prov.pruned = static_cast<u32>(v);
        if (fieldU64(fields, "stopped_rung", v))
            jv.prov.stoppedRung = static_cast<u32>(v);
        if (fieldU64(fields, "diverged_at", v))
            jv.prov.divergedAt = v;
    }
    out = jv;
    return true;
}

/** Parse one intact journal line into the Journal aggregate. */
bool
applyLine(const std::string &line, Journal &journal,
          std::string *err = nullptr)
{
    std::map<std::string, std::string> fields;
    if (!json::parseFlat(line, fields))
        return false;
    std::string type;
    if (!fieldStr(fields, "type", type))
        return false;

    if (type == "meta") {
        JournalMeta meta;
        if (!metaFromFields(fields, meta, err))
            return false;
        if (journal.hasMeta)
            return false; // one meta per journal
        journal.hasMeta = true;
        journal.meta = meta;
        return true;
    }
    if (type == "verdict") {
        JournalVerdict jv;
        if (!verdictFromFields(fields, jv))
            return false;
        journal.verdicts.push_back(jv);
        return true;
    }
    if (type == "chunk") {
        u64 done = 0;
        if (!fieldU64(fields, "done", done))
            return false;
        ++journal.chunksCommitted;
        return true;
    }
    if (type == "metrics") {
        JournalMetrics m;
        u64 workers = 0;
        if (!fieldU64(fields, "runs", m.runs))
            return false;
        fieldU64(fields, "masked", m.masked);
        fieldU64(fields, "sdc", m.sdc);
        fieldU64(fields, "crash", m.crash);
        fieldU64(fields, "earlyTerminated", m.earlyTerminated);
        fieldU64(fields, "pruned", m.pruned);
        fieldU64(fields, "earlyStops", m.earlyStops);
        fieldU64(fields, "cyclesSimulated", m.cyclesSimulated);
        fieldU64(fields, "cyclesSaved", m.cyclesSaved);
        fieldU64(fields, "cyclesFastForwarded", m.cyclesFastForwarded);
        fieldU64(fields, "wallMillis", m.wallMillis);
        fieldU64(fields, "idleMillis", m.idleMillis);
        if (fieldU64(fields, "workers", workers))
            m.workers = static_cast<u32>(workers);
        for (unsigned p = 0; p < obs::profiler::kNumPhases; ++p)
            fieldU64(fields, phaseKey(p).c_str(), m.phaseMicros[p]);
        journal.hasMetrics = true;
        journal.metrics = m; // a later record supersedes an earlier
        return true;
    }
    return false; // unknown record type
}

} // namespace

std::string
formatMetaLine(const JournalMeta &meta)
{
    std::string line = strfmt(
        "{\"type\":\"meta\",\"version\":%u,\"workload\":\"%s\","
        "\"target\":\"%s\",\"model\":\"%s\",\"seed\":%llu,"
        "\"faults\":%llu,\"shard\":%u,\"shards\":%u,"
        "\"goldenDigest\":%llu,\"goldenCycles\":%llu,"
        "\"windowCycles\":%llu,\"entries\":%u,\"bitsPerEntry\":%u,"
        "\"marvelVersion\":\"%s\",\"earlyTerm\":%u,\"hvf\":%u,"
        "\"timeoutFactorMilli\":%llu,\"ladderRungs\":%u,"
        "\"prune\":%u,\"earlyStop\":%u",
        kJournalFormatVersion, json::escape(meta.workload).c_str(),
        json::escape(meta.target).c_str(),
        json::escape(meta.model).c_str(),
        static_cast<unsigned long long>(meta.seed),
        static_cast<unsigned long long>(meta.numFaults),
        meta.shardIndex, meta.shardCount,
        static_cast<unsigned long long>(meta.goldenDigest),
        static_cast<unsigned long long>(meta.goldenCycles),
        static_cast<unsigned long long>(meta.windowCycles),
        meta.entries, meta.bitsPerEntry,
        json::escape(meta.marvelVersion).c_str(), meta.optEarlyTerm,
        meta.optHvf,
        static_cast<unsigned long long>(meta.timeoutFactorMilli),
        meta.ladderRungs, meta.optPrune, meta.optEarlyStop);
    // Omitted (not emitted empty) for the legacy Single model, so
    // legacy campaigns write bytes identical to pre-fault-model
    // builds and the canonical form is stable across the upgrade.
    if (!meta.faultModel.empty())
        line += strfmt(",\"faultModel\":\"%s\"",
                       json::escape(meta.faultModel).c_str());
    line += '}';
    return line;
}

std::string
formatVerdictLine(u64 idx, const fi::RunVerdict &verdict)
{
    return strfmt(
        "{\"type\":\"verdict\",\"idx\":%llu,\"outcome\":\"%s\","
        "\"detail\":\"%s\",\"hvf\":%d,\"hvfCycle\":%llu,"
        "\"early\":%d,\"cycles\":%llu}",
        static_cast<unsigned long long>(idx),
        fi::outcomeName(verdict.outcome),
        fi::outcomeDetailName(verdict.detail),
        verdict.hvfCorruption ? 1 : 0,
        static_cast<unsigned long long>(verdict.hvfCorruptCycle),
        verdict.terminatedEarly ? 1 : 0,
        static_cast<unsigned long long>(verdict.cyclesRun));
}

std::string
formatVerdictLine(u64 idx, const fi::RunVerdict &verdict,
                  const VerdictProvenance &prov)
{
    std::string line = formatVerdictLine(idx, verdict);
    if (!prov.present)
        return line;
    line.pop_back(); // re-open the object for the optional fields
    line += strfmt(",\"wall_us\":%llu,\"rung\":%u,\"ff\":%llu,"
                   "\"pruned\":%u,\"stopped_rung\":%u,"
                   "\"diverged_at\":%llu}",
                   static_cast<unsigned long long>(prov.wallMicros),
                   prov.rung,
                   static_cast<unsigned long long>(prov.fastForwarded),
                   prov.pruned, prov.stoppedRung,
                   static_cast<unsigned long long>(prov.divergedAt));
    return line;
}

bool
parseMetaLine(const std::string &line, JournalMeta &out)
{
    std::map<std::string, std::string> fields;
    std::string type;
    return json::parseFlat(line, fields) &&
           fieldStr(fields, "type", type) && type == "meta" &&
           metaFromFields(fields, out);
}

bool
parseVerdictLine(const std::string &line, JournalVerdict &out)
{
    std::map<std::string, std::string> fields;
    std::string type;
    return json::parseFlat(line, fields) &&
           fieldStr(fields, "type", type) && type == "verdict" &&
           verdictFromFields(fields, out);
}

void
writeCanonicalJournal(const std::string &path, JournalMeta meta,
                      const std::vector<JournalVerdict> &verdicts)
{
    // First record per index wins, exactly like mergeJournals and the
    // resume path: a range re-journaled after a lease expiry or crash
    // window must not displace the verdict that was already durable.
    std::vector<const JournalVerdict *> first(meta.numFaults, nullptr);
    u64 covered = 0;
    for (const JournalVerdict &jv : verdicts) {
        if (jv.idx >= meta.numFaults)
            fatal("journal: canonical write got out-of-range fault "
                  "index %llu (campaign has %llu)",
                  static_cast<unsigned long long>(jv.idx),
                  static_cast<unsigned long long>(meta.numFaults));
        if (!first[jv.idx]) {
            first[jv.idx] = &jv;
            ++covered;
        }
    }

    // The canonical journal speaks for the whole campaign. The
    // early-stop mode is normalized away with the shard geometry:
    // like provenance, it records how the verdicts were produced,
    // never what they are, so journals from an early-stopping run
    // and a full-window run canonicalize to the same bytes.
    meta.shardIndex = 0;
    meta.shardCount = 1;
    meta.optEarlyStop = 0;

    JournalWriter writer;
    // One chunk spanning every verdict: the chunk marker count is
    // part of the byte identity, so it must not depend on how the
    // source journals were chunked.
    writer.create(path, meta,
                  covered ? static_cast<unsigned>(covered) : 1);
    for (u64 i = 0; i < meta.numFaults; ++i)
        if (first[i])
            writer.append(i, first[i]->verdict);
    writer.close();
}

JournalWriter::~JournalWriter()
{
    if (fd_ >= 0)
        close();
}

void
JournalWriter::create(const std::string &path,
                      const JournalMeta &meta, unsigned chunkSize)
{
    if (fd_ >= 0)
        panic("journal: writer already open");
    fd_ = ::open(path.c_str(),
                 O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (fd_ < 0)
        fatal("journal: cannot create '%s': %s", path.c_str(),
              std::strerror(errno));
    path_ = path;
    chunkSize_ = chunkSize ? chunkSize : 1;
    writeLine(formatMetaLine(meta));
    sync(); // the identity record must survive any later crash
}

void
JournalWriter::resume(const std::string &path, u64 validBytes,
                      unsigned chunkSize)
{
    if (fd_ >= 0)
        panic("journal: writer already open");
    fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
    if (fd_ < 0)
        fatal("journal: cannot reopen '%s': %s", path.c_str(),
              std::strerror(errno));
    // Cut off any torn final line so appended records start on a
    // clean line boundary.
    if (::ftruncate(fd_, static_cast<off_t>(validBytes)) != 0) {
        ::close(fd_);
        fd_ = -1;
        fatal("journal: cannot truncate '%s' to %llu bytes: %s",
              path.c_str(),
              static_cast<unsigned long long>(validBytes),
              std::strerror(errno));
    }
    path_ = path;
    chunkSize_ = chunkSize ? chunkSize : 1;
}

void
JournalWriter::writeLine(const std::string &line)
{
    std::string buf = line;
    buf += '\n';
    const char *data = buf.data();
    std::size_t len = buf.size();
    while (len > 0) {
        const ssize_t n = ::write(fd_, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal("journal: write to '%s' failed: %s", path_.c_str(),
                  std::strerror(errno));
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

void
JournalWriter::sync()
{
    if (::fsync(fd_) != 0)
        fatal("journal: fsync of '%s' failed: %s", path_.c_str(),
              std::strerror(errno));
}

void
JournalWriter::append(u64 idx, const fi::RunVerdict &verdict)
{
    if (fd_ < 0)
        panic("journal: append on a closed writer");
    pending_.push_back(formatVerdictLine(idx, verdict));
    if (pending_.size() >= chunkSize_)
        commit();
}

void
JournalWriter::append(u64 idx, const fi::RunVerdict &verdict,
                      const VerdictProvenance &prov)
{
    if (fd_ < 0)
        panic("journal: append on a closed writer");
    pending_.push_back(formatVerdictLine(idx, verdict, prov));
    if (pending_.size() >= chunkSize_)
        commit();
}

void
JournalWriter::appendMetrics(const JournalMetrics &metrics)
{
    if (fd_ < 0)
        panic("journal: appendMetrics on a closed writer");
    commit(); // the record must land after what it summarizes
    const obs::profiler::ScopedPhase timer(
        obs::profiler::Phase::JournalIo);
    writeLine(metricsLine(metrics));
    sync();
}

void
JournalWriter::commit()
{
    if (fd_ < 0)
        panic("journal: commit on a closed writer");
    if (pending_.empty())
        return;
    const obs::profiler::ScopedPhase timer(
        obs::profiler::Phase::JournalIo);
    for (const std::string &line : pending_)
        writeLine(line);
    sync(); // verdicts are durable before the chunk marker claims so
    writeLine(strfmt("{\"type\":\"chunk\",\"done\":%zu}",
                     pending_.size()));
    sync();
    pending_.clear();
    ++chunks_;
}

void
JournalWriter::close()
{
    if (fd_ < 0)
        return;
    commit();
    ::close(fd_);
    fd_ = -1;
}

Journal
readJournal(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("journal: cannot open '%s': %s", path.c_str(),
              std::strerror(errno));
    std::string content;
    char buf[64 * 1024];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        content.append(buf, n);
    const bool readError = std::ferror(file);
    std::fclose(file);
    if (readError)
        fatal("journal: read of '%s' failed", path.c_str());

    Journal journal;
    std::size_t pos = 0;
    while (pos < content.size()) {
        const std::size_t nl = content.find('\n', pos);
        const bool complete = nl != std::string::npos;
        const std::string line =
            content.substr(pos, complete ? nl - pos
                                         : std::string::npos);
        const std::size_t next =
            complete ? nl + 1 : content.size();
        if (line.empty()) {
            // A blank line can only be torn padding at the tail.
            if (next < content.size())
                fatal("journal: '%s' has an empty record at byte "
                      "%zu", path.c_str(), pos);
            journal.droppedTornLine = true;
            break;
        }
        std::string versionErr;
        if (!complete || !applyLine(line, journal, &versionErr)) {
            // A meta from a newer format is not corruption and not a
            // torn tail — name the file and both versions, wherever
            // in the file it sits.
            if (!versionErr.empty())
                fatal("journal: '%s' %s", path.c_str(),
                      versionErr.c_str());
            // Tolerate exactly one torn/garbage line at the very end
            // of the file; anything followed by more data is real
            // corruption.
            if (next < content.size())
                fatal("journal: '%s' is corrupt at byte %zu: %s",
                      path.c_str(), pos, line.c_str());
            journal.droppedTornLine = true;
            break;
        }
        pos = next;
        journal.validBytes = pos;
    }
    if (!journal.hasMeta)
        fatal("journal: '%s' has no intact meta record",
              path.c_str());
    return journal;
}

bool
journalExists(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        return false;
    char head[16] = {};
    const std::size_t n = std::fread(head, 1, sizeof(head) - 1, file);
    std::fclose(file);
    return n > 0 && std::strncmp(head, "{\"type\":\"meta\"", 14) == 0;
}

} // namespace marvel::store
