#include "fi/classify.hh"

#include "common/log.hh"

namespace marvel::fi
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "Masked";
      case Outcome::SDC: return "SDC";
      case Outcome::Crash: return "Crash";
    }
    return "?";
}

const char *
outcomeDetailName(OutcomeDetail detail)
{
    switch (detail) {
      case OutcomeDetail::None: return "none";
      case OutcomeDetail::MaskedIdentical: return "masked-identical";
      case OutcomeDetail::MaskedEarly: return "masked-early";
      case OutcomeDetail::MaskedInvalidEntry:
        return "masked-invalid-entry";
      case OutcomeDetail::SdcOutput: return "sdc-output";
      case OutcomeDetail::SdcExitCode: return "sdc-exit-code";
      case OutcomeDetail::CrashIllegal: return "crash-illegal";
      case OutcomeDetail::CrashBusError: return "crash-bus-error";
      case OutcomeDetail::CrashMisaligned: return "crash-misaligned";
      case OutcomeDetail::CrashDivZero: return "crash-div-zero";
      case OutcomeDetail::CrashFetch: return "crash-fetch";
      case OutcomeDetail::CrashAccelError: return "crash-accel";
      case OutcomeDetail::CrashTimeout: return "crash-timeout";
      case OutcomeDetail::MaskedPruned: return "masked-pruned";
      case OutcomeDetail::MaskedInAccel: return "masked-in-accel";
    }
    return "?";
}

std::string
RunVerdict::toString() const
{
    return strfmt("%s (%s)%s%s%s", outcomeName(outcome),
                  outcomeDetailName(detail),
                  hvfCorruption ? " hvf-corruption" : "",
                  terminatedEarly ? " early" : "",
                  stoppedAt ? " stopped" : "");
}

} // namespace marvel::fi
