/**
 * @file
 * Statistical fault-injection campaigns (paper Fig. 2).
 *
 * A campaign consists of:
 *  1. one *golden* run: execute the workload to its Checkpoint magic
 *     instruction, snapshot the full system, then run to completion
 *     recording the commit trace, output window, exit code, and the
 *     injection window length (Checkpoint -> SwitchCpu);
 *  2. N *faulty* runs: restore the snapshot, inject a uniformly random
 *     fault, run to completion (or early-terminate when the fault is
 *     provably dead), classify Masked / SDC / Crash and the HVF
 *     verdict; and
 *  3. aggregation into AVF / SDC-AVF / Crash-AVF / HVF with the
 *     Leveugle error margin.
 *
 * Faulty runs execute on parallel workers, each with its own restored
 * system copy; results are deterministic for a given seed regardless
 * of thread count.
 */

#ifndef MARVEL_FI_CAMPAIGN_HH
#define MARVEL_FI_CAMPAIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "common/faultwatch.hh"
#include "fi/classify.hh"
#include "fi/models.hh"
#include "fi/targets.hh"
#include "obs/lineage.hh"
#include "soc/checkpoint.hh"
#include "stats/stats.hh"

namespace marvel::obs
{
struct CampaignTelemetry;
} // namespace marvel::obs

namespace marvel::fi
{

/**
 * One rung of the intra-window checkpoint ladder: a full snapshot
 * taken `cycle` ticks after the window-start checkpoint, tagged with
 * the commit-trace position at that instant so HVF comparison can
 * resume mid-trace. Restoring a rung and ticking onward is
 * bit-identical to ticking straight through from the window start
 * (enforced by tests/test_ladder.cc).
 */
struct LadderRung
{
    Cycle cycle = 0;     ///< window-relative capture point
    u64 traceIndex = 0;  ///< commits recorded before this rung
    soc::Checkpoint checkpoint;
};

/** Everything captured from the fault-free reference execution. */
struct GoldenRun
{
    soc::Checkpoint checkpoint;       ///< at the Checkpoint magic op
    std::vector<u8> output;           ///< OUTPUT window at exit
    i64 exitCode = 0;
    std::string console;
    std::vector<cpu::CommitRecord> trace; ///< checkpoint -> exit
    Cycle preCycles = 0;    ///< program start -> checkpoint
    Cycle windowCycles = 0; ///< checkpoint -> SwitchCpu
    Cycle totalCycles = 0;  ///< checkpoint -> exit

    /** Intra-window checkpoint ladder, ascending by cycle; empty when
     *  the golden run was built without one. */
    std::vector<LadderRung> ladder;

    /** The latest rung at-or-before `cycle`; nullptr when none is. */
    const LadderRung *rungAtOrBefore(Cycle cycle) const;
};

/** runGolden ladder size asking for auto-sizing from windowCycles. */
constexpr unsigned kLadderAuto = ~0u;

/**
 * Execute the golden run. fatal() if the workload misbehaves.
 * `ladderRungs` rungs (kLadderAuto: ~one per 50k window cycles, at
 * most 64) are captured by an extra deterministic replay of the
 * injection window, evenly spaced between the Checkpoint and
 * SwitchCpu magic ops.
 */
GoldenRun runGolden(const soc::SystemConfig &config,
                    const isa::Program &program,
                    u64 maxCycles = 500'000'000,
                    unsigned ladderRungs = 0);

/**
 * Per-run convergence short-circuit mode.
 *
 * On: at each ladder-rung boundary, compare the faulty system against
 * the golden rung snapshot; on an exact match the rest of the run is
 * provably identical to golden, so the verdict is fabricated and the
 * run stops mid-window. Audit: run the same checks and record what
 * WOULD have happened (first stop point + fabricated verdict) but keep
 * simulating and return the real verdict — the equivalence battery and
 * the fuzz audits cross-check the two.
 */
enum class EarlyStopMode : u8 { Off, On, Audit };

/** What the early-stop audit mode observed during one run. */
struct EarlyStopAudit
{
    bool stopped = false;   ///< a stop-check matched
    Cycle stoppedAt = 0;    ///< first matching rung's cycle
    RunVerdict predicted;   ///< the verdict fabrication would return
};

/** Per-run options. */
struct InjectionOptions
{
    bool earlyTermination = true; ///< paper §IV-B speed optimizations
    bool computeHvf = false;
    double timeoutFactor = 8.0;   ///< crash-timeout threshold multiple

    /**
     * Convergence short-circuit at ladder-rung boundaries. Requires a
     * golden ladder; silently inert without one (or for permanent
     * faults / lineage runs, where the comparison precondition —
     * "golden state implies golden future" — does not hold).
     */
    EarlyStopMode earlyStop = EarlyStopMode::Off;

    /** When set (with earlyStop == Audit), receives what the stop
     *  checks observed. */
    EarlyStopAudit *auditOut = nullptr;

    /**
     * Fast-forward faulty runs from the golden run's checkpoint
     * ladder: restore the nearest rung at-or-before the earliest
     * fault's injection cycle instead of the window start. Cannot
     * change any verdict field (the rung state is bit-identical to
     * ticking from the window start, and no fault — transient or
     * stuck-at onset — has acted before its injection cycle), so it
     * defaults on; it does not apply to lineage runs, and is a no-op
     * when the golden run has no ladder or every fault injects before
     * the first rung (in particular legacy cycle-0 stuck-at faults).
     */
    bool useLadder = true;

    /**
     * When set, the run seeds taint at the fault site and fills in the
     * fault's dataflow spread (obs lineage); costs extra per-cycle
     * bookkeeping, so campaigns leave it null.
     */
    obs::PropagationTrace *lineage = nullptr;

    /**
     * When set, receives the faulty system's full stats snapshot at
     * the end of the run. Pair with goldenStats() and stats::diff for
     * the which-counters-moved report (marvel-trace).
     */
    stats::Snapshot *statsOut = nullptr;

    /**
     * When set, receives soc::archStateDigest of the system as the
     * run ends (on every exit path, including early termination and
     * crashes). Two runs of one (golden, mask, options) triple must
     * produce identical digests; the fuzz determinism audit fatals
     * when they do not.
     */
    u64 *archDigestOut = nullptr;
};

/** Run one fault mask against a golden run. */
RunVerdict runWithFault(const GoldenRun &golden, const FaultMask &mask,
                        const InjectionOptions &options = {});

/**
 * The golden window's access stream for one injection target,
 * captured by one extra fault-free replay. Answers "is this transient
 * fault provably dead?" so campaigns can prune it without simulating.
 */
class TargetProfile
{
  public:
    TargetProfile() = default;
    explicit TargetProfile(std::shared_ptr<AccessProfiler> profiler)
        : profiler_(std::move(profiler))
    {
    }

    bool valid() const { return profiler_ != nullptr; }

    /**
     * True when a transient `fault` is provably overwritten (or its
     * entry deallocated) before any read: the faulty run would be
     * bit-identical to golden from the overwrite on, so the verdict is
     * Masked without simulating. Permanent faults never prune.
     */
    bool prunable(const FaultSpec &fault) const;

    /** A mask prunes only when EVERY fault in it is prunable (any
     *  live fault can perturb the others' entries). */
    bool prunable(const FaultMask &mask) const;

  private:
    std::shared_ptr<AccessProfiler> profiler_;
};

/**
 * Profile the golden injection window's accesses to `target` with one
 * deterministic fault-free replay (checkpoint restore -> exit).
 */
TargetProfile profileTargetAccesses(const GoldenRun &golden,
                                    const TargetRef &target);

/** The verdict recorded for a pre-pruned (never simulated) fault. */
RunVerdict prunedVerdict();

/**
 * Fault-free reference statistics: restore the golden checkpoint,
 * replay the injection window to exit, and snapshot the stats tree.
 * Because every faulty run restores the same checkpoint, this is the
 * bit-exact baseline for stats::diff against a faulty snapshot.
 */
stats::Snapshot goldenStats(const GoldenRun &golden);

/** Campaign parameters. */
struct CampaignOptions
{
    unsigned numFaults = 100;
    FaultModel model = FaultModel::Transient;

    /**
     * How fault indices become fault masks (fi/models.hh), layered
     * over `model`. The default Single spec reproduces the legacy
     * uniform single-bit draw bit-exactly. Recorded in the journal
     * meta (canonical string; omitted when Single) and enforced on
     * resume/replay/merge/dispatch like the seed.
     */
    FaultModelSpec modelSpec;

    u64 seed = 0x5eed;
    bool earlyTermination = true;
    bool computeHvf = false;
    unsigned threads = 0; ///< 0 = hardware concurrency
    double timeoutFactor = 8.0;
    bool keepVerdicts = false;
    u64 goldenMaxCycles = 500'000'000;

    /**
     * Rungs for the golden run's checkpoint ladder when the campaign
     * builds its own golden (runCampaign); kLadderAuto sizes from the
     * window length. Recorded in the journal meta as the ladder
     * *geometry* — replay and resume must rebuild the same golden.
     */
    unsigned ladderRungs = 0;

    /** Fast-forward faulty runs from ladder rungs (see
     *  InjectionOptions::useLadder; never changes verdicts). */
    bool useLadder = true;

    /**
     * Campaign-level early-stop setting (--early-stop on|off|auto).
     * Auto resolves to On exactly when the golden run has a ladder.
     * Recorded in the journal meta (as the resolved on/off value) and
     * checked on resume/replay/dispatch like the ladder geometry —
     * verdicts are identical either way, but mixing modes within one
     * journal would make provenance fields meaningless. Defaults Off
     * so pre-existing journals resume unchanged.
     */
    enum class EarlyStopSetting : u8 { Off, On, Auto };
    EarlyStopSetting earlyStop = EarlyStopSetting::Off;

    /**
     * Pre-prune provably dead transient faults: profile the golden
     * window's accesses to the target once, then classify faults whose
     * first covering access is an overwrite (or entry deallocation) as
     * Masked (detail masked-pruned) without simulating. Changes the
     * per-fault verdict detail, so it IS recorded in the journal meta
     * and checked on resume/replay.
     */
    bool prune = false;

    /**
     * Persistence & sharding, consumed by sched::runCampaign (the
     * in-memory fi:: entry points ignore them). With a journal path
     * set, every verdict is appended to a crash-safe JSONL journal;
     * with resume set, completed fault indices are replayed from the
     * journal and only the missing ones execute. A campaign may be
     * split across processes: shard `shardIndex` of `shardCount`
     * owns the fault indices congruent to it mod shardCount, and
     * sched::mergeJournals folds the shard journals back into one
     * CampaignResult.
     */
    std::string journalPath; ///< empty = in-memory only
    bool resume = false;     ///< continue from the journal
    u32 shardIndex = 0;
    u32 shardCount = 1;
    unsigned chunkSize = 32; ///< verdicts per fsync'd journal chunk
    std::string workloadName; ///< recorded in the journal meta

    /**
     * Cadence of the `<journal>.progress` heartbeat file (seconds);
     * 0 disables it. Only meaningful with a journal path — the
     * heartbeat lives next to the journal and `marvel-campaign
     * status --follow` tails it.
     */
    double heartbeatSeconds = 1.0;

    /**
     * When set, sched::runCampaign fills in per-worker and campaign
     * execution telemetry (runs/sec, idle time, early-termination
     * savings). Ignored by the in-memory fi:: entry points.
     */
    obs::CampaignTelemetry *telemetry = nullptr;
};

/** Aggregated campaign results. */
struct CampaignResult
{
    TargetInfo target;
    std::string workload;

    u64 masked = 0;
    u64 sdc = 0;
    u64 crash = 0;
    u64 maskedEarly = 0;   ///< subset of masked
    u64 maskedInvalid = 0; ///< subset of masked
    u64 pruned = 0;        ///< subset of masked, never simulated
    /** Subset of masked: the accelerator consumed the corrupted bits
     *  but the corruption never reached CPU-visible state. */
    u64 maskedInAccel = 0;
    u64 timeouts = 0;      ///< subset of crash
    u64 hvfCorruptions = 0;

    Cycle goldenCycles = 0; ///< checkpoint -> exit (the wAVF weight)
    Cycle windowCycles = 0;

    std::vector<RunVerdict> verdicts; ///< when keepVerdicts

    u64 total() const { return masked + sdc + crash; }

    double
    avf() const
    {
        return total() ? double(sdc + crash) / double(total()) : 0.0;
    }

    double
    sdcAvf() const
    {
        return total() ? double(sdc) / double(total()) : 0.0;
    }

    double
    crashAvf() const
    {
        return total() ? double(crash) / double(total()) : 0.0;
    }

    /** HVF: fraction of faults visible at the commit stage. */
    double
    hvf() const
    {
        return total() ? double(hvfCorruptions) / double(total())
                       : 0.0;
    }

    /** Leveugle error margin at 95% confidence. */
    double errorMargin() const;

    /** Fault population (bits x window cycles). */
    double population() const;

    /** Fold one verdict into the outcome counters. */
    void tally(const RunVerdict &verdict);

    /** Sum another result's outcome counters into this one. */
    void addCounts(const CampaignResult &other);
};

/**
 * Resolve the campaign-level early-stop setting against a golden run:
 * Auto means On exactly when the golden has a ladder to compare
 * against. Every consumer (in-process scheduler, journal meta,
 * dispatch workers) resolves through this one function so they agree
 * on what gets recorded and checked.
 */
inline EarlyStopMode
resolveEarlyStop(CampaignOptions::EarlyStopSetting setting,
                 const GoldenRun &golden)
{
    switch (setting) {
      case CampaignOptions::EarlyStopSetting::Off:
        return EarlyStopMode::Off;
      case CampaignOptions::EarlyStopSetting::On:
        return EarlyStopMode::On;
      case CampaignOptions::EarlyStopSetting::Auto:
        return golden.ladder.empty() ? EarlyStopMode::Off
                                     : EarlyStopMode::On;
    }
    return EarlyStopMode::Off;
}

/**
 * Window-relative cycles at which an instruction whose PC lies in
 * [pcLo, pcHi] commits, resolved by one extra deterministic fault-free
 * replay of the injection window. Feeds FaultSampler::pcCycles for
 * Targeted specs with a PC range.
 */
std::vector<Cycle> resolvePcCycles(const GoldenRun &golden, u64 pcLo,
                                   u64 pcHi);

/**
 * Bind a model spec to a golden run: resolves the PC-candidate cycles
 * for Targeted-with-PC specs (fatal when the range matches no commit
 * in the window) and returns a sampler ready for per-index draws.
 */
FaultSampler makeSampler(const GoldenRun &golden, FaultModel base,
                         const FaultModelSpec &spec);

/** Run a complete campaign from scratch. */
CampaignResult runCampaign(const soc::SystemConfig &config,
                           const isa::Program &program,
                           const TargetRef &target,
                           const CampaignOptions &options);

/** Run a campaign against a precomputed golden run. */
CampaignResult runCampaignOnGolden(const GoldenRun &golden,
                                   const TargetRef &target,
                                   const CampaignOptions &options);

} // namespace marvel::fi

#endif // MARVEL_FI_CAMPAIGN_HH
