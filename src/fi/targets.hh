/**
 * @file
 * Target registry: maps TargetRefs onto the live hardware structures of
 * a System, exposing a uniform geometry / flip / stuck-at / watch
 * interface without the structures knowing about the fi layer.
 */

#ifndef MARVEL_FI_TARGETS_HH
#define MARVEL_FI_TARGETS_HH

#include <string>
#include <vector>

#include "fi/fault.hh"
#include "soc/system.hh"

namespace marvel::fi
{

/** Descriptor of one injectable structure in a given system. */
struct TargetInfo
{
    TargetRef ref;
    std::string name; ///< human-readable ("l1d", "gemm.MATRIX1", ...)
    TargetGeometry geometry;
};

/** Every injectable structure of the system (CPU + all DSAs). */
std::vector<TargetInfo> listTargets(const soc::System &system);

/** Geometry of one target; fatal() when the target does not exist. */
TargetInfo targetInfo(const soc::System &system, const TargetRef &ref);

/** Find a CPU target by name, or an accelerator component as
 *  "<design>.<component>" (e.g. "gemm.MATRIX1"). */
TargetRef targetByName(const soc::System &system,
                       const std::string &name);

/**
 * Inject one fault *now*: transient faults flip the bit and register a
 * watch (for early termination); stuck-at faults force the bit and
 * register a permanent constraint re-applied after writes.
 */
void injectFault(soc::System &system, const FaultSpec &fault);

/** Fault bookkeeping of the target structure. */
FaultState &faultStateOf(soc::System &system, const TargetRef &ref);

/**
 * Seed the CPU's lineage taint for a just-injected fault, so the core
 * can track its dataflow spread (obs::PropagationTrace). Register,
 * load/store-queue and cache faults map onto the taint domains the
 * core tracks; meta-state targets (ROB, rename map, BTB) and
 * accelerator memories have no dataflow taint model and seed nothing.
 */
void seedLineage(soc::System &system, const FaultSpec &fault);

/**
 * True when the target entry currently holds live content (valid cache
 * line / allocated queue slot). Used by the paper's "invalid entry"
 * early-termination optimization.
 */
bool entryLive(const soc::System &system, const FaultSpec &fault);

} // namespace marvel::fi

#endif // MARVEL_FI_TARGETS_HH
