/**
 * @file
 * Pluggable fault-model layer (paper SIV-A1 + InjectV-style attacks).
 *
 * A FaultModelSpec describes HOW a fault index is turned into a
 * FaultMask, on top of the base FaultModel (transient / stuck-at):
 *
 *  - Single:     the legacy uniform single-bit draw. Canonical spec
 *                string is empty; journals written without a
 *                "faultModel" meta field mean exactly this model, so
 *                pre-fault-model journals keep replaying bit-exactly.
 *  - Burst:      k contiguous bits of one entry flip together (one
 *                shared cycle); bits wrap modulo bitsPerEntry.
 *  - Scatter:    k independent (entry, bit) draws, one shared cycle.
 *  - Correlated: the (entry, bit) draw is weighted by a separable
 *                row/column probability map (undervolted-SRAM style
 *                position dependence). Weights are integers so the
 *                sampler never round-trips through floating point.
 *  - Targeted:   draws constrained to entry/bit/cycle ranges and,
 *                optionally, to the commit cycles of a PC range
 *                (InjectV-style skip/flip scenarios).
 *
 * Every kind is a pure function of (Rng stream, spec, geometry,
 * window): the spec's canonical string travels in the journal meta and
 * lets resume, replay, shard merge, and distributed workers re-derive
 * the identical mask for any fault index.
 *
 * Under every non-Single kind, stuck-at faults are full citizens of
 * the checkpoint ladder: they carry a sampled onset cycle exactly like
 * transients, so runWithFault may fast-forward to the rung at-or-
 * before the onset and apply the stuck-at constraint from there (the
 * pre-onset trajectory is fault-free by construction). The Single kind
 * keeps the legacy behaviour — stuck-at from cycle 0, never
 * fast-forwarded — so old journals and seeds stay valid.
 */

#ifndef MARVEL_FI_MODELS_HH
#define MARVEL_FI_MODELS_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "fi/fault.hh"

namespace marvel::fi
{

/** How fault indices map to fault masks (layered over FaultModel). */
enum class ModelKind : u8
{
    Single,     ///< legacy uniform single-bit (canonical spec "")
    Burst,      ///< k adjacent bits of one entry, one cycle
    Scatter,    ///< k independent bits of one structure, one cycle
    Correlated, ///< row/column-weighted single-bit draw
    Targeted,   ///< single-bit draw constrained to ranges / a PC set
};

const char *modelKindName(ModelKind kind);

/**
 * Separable per-bit weight map: the weight of (entry e, bit b) is
 * rowWeights[e % rows] * colWeights[b % cols]. Either vector may be
 * empty, meaning uniform along that axis. Weights are plain integers;
 * a weight of 0 excludes the row/column entirely.
 */
struct CorrelatedMap
{
    std::vector<u32> rowWeights; ///< tiles over entries
    std::vector<u32> colWeights; ///< tiles over bits

    bool
    empty() const
    {
        return rowWeights.empty() && colWeights.empty();
    }

    bool operator==(const CorrelatedMap &) const = default;

    /**
     * Load from a map file: '#' comments, plus lines
     *   row W0 W1 ... Wn   (rowWeights; tile size = value count)
     *   col W0 W1 ... Wn   (colWeights)
     * Each directive may appear at most once; fatal() on anything
     * malformed or an all-zero axis.
     */
    static CorrelatedMap parseFile(const std::string &path);
    static CorrelatedMap parseText(const std::string &text);
};

/** Inclusive draw constraints for the Targeted kind. */
struct TargetFilter
{
    static constexpr u32 kNoLimit = ~0u;
    static constexpr Cycle kNoCycleLimit = ~0ull;

    u32 entryLo = 0, entryHi = kNoLimit;
    u32 bitLo = 0, bitHi = kNoLimit;
    Cycle cycleLo = 0, cycleHi = kNoCycleLimit;
    /** PC range; active iff pcLo <= pcHi (default inactive). */
    u64 pcLo = 1, pcHi = 0;

    bool hasPc() const { return pcLo <= pcHi; }

    bool
    constrained() const
    {
        return hasPc() || entryLo != 0 || entryHi != kNoLimit ||
               bitLo != 0 || bitHi != kNoLimit || cycleLo != 0 ||
               cycleHi != kNoCycleLimit;
    }

    bool operator==(const TargetFilter &) const = default;
};

/**
 * Complete sampling recipe. The canonical string form round-trips
 * through parse() and is what journals record; the Single kind
 * canonicalizes to the empty string (= the legacy format).
 */
struct FaultModelSpec
{
    ModelKind kind = ModelKind::Single;
    unsigned k = 1;      ///< Burst/Scatter arity (>= 1)
    CorrelatedMap map;   ///< Correlated only
    TargetFilter filter; ///< Targeted only

    bool legacy() const { return kind == ModelKind::Single; }

    bool operator==(const FaultModelSpec &) const = default;

    /**
     * Canonical one-line form, e.g. "burst k=3",
     * "correlated roww=1,3 colw=1,2,4,2",
     * "targeted entry=2:5 pc=0x1000:0x1040". Empty for Single.
     */
    std::string toString() const;

    /** Inverse of toString(); fatal() on malformed input. */
    static FaultModelSpec parse(const std::string &text);

    /**
     * Build from the [fault_model] config section (absent section =
     * Single). Keys: kind, k, map (file path), roww/colw (inline
     * comma-separated weights), entry/bit/cycle/pc ("LO:HI" ranges).
     */
    static FaultModelSpec fromConfig(const ConfigFile &config);
};

/**
 * A spec bound to its resolved PC-candidate cycles, ready to sample.
 * For Targeted specs with a PC range, pcCycles must hold the
 * window-relative cycles at which a matching instruction commits
 * (resolved once per golden run by fi::makeSampler); it is unused
 * otherwise.
 */
struct FaultSampler
{
    FaultModel base = FaultModel::Transient;
    FaultModelSpec spec;
    std::vector<Cycle> pcCycles;

    /**
     * Draw one fault mask. Deterministic: consumes a fixed number of
     * rng draws per (spec, geometry), so fault index i is always the
     * same experiment. Under non-Single kinds, stuck-at bases receive
     * a sampled onset cycle (see file header).
     */
    FaultMask sample(Rng &rng, const TargetRef &target,
                     const TargetGeometry &geometry,
                     Cycle windowCycles) const;
};

/**
 * Weighted index draw used by the Correlated kind: picks i in [0, n)
 * with probability proportional to weights[i % weights.size()]
 * (uniform when weights is empty). Exposed for the statistical tests.
 */
u64 weightedIndex(Rng &rng, u64 n, const std::vector<u32> &weights);

} // namespace marvel::fi

#endif // MARVEL_FI_MODELS_HH
