/**
 * @file
 * Fault-effect classification (paper §IV-A2).
 *
 * AVF classes: Masked / SDC / Crash. HVF classes: Masked / Corruption
 * (commit-stage trace divergence). One faulty run yields both verdicts
 * (§IV-D: HVF and AVF on the same run, with fault-path correlation).
 */

#ifndef MARVEL_FI_CLASSIFY_HH
#define MARVEL_FI_CLASSIFY_HH

#include <string>

#include "common/types.hh"

namespace marvel::fi
{

/** AVF outcome classes. */
enum class Outcome : u8
{
    Masked,
    SDC,
    Crash,
};

const char *outcomeName(Outcome outcome);

/** Finer-grained cause, for analysis output. */
enum class OutcomeDetail : u8
{
    None,
    MaskedIdentical,    ///< ran to completion, output identical
    MaskedEarly,        ///< fault neutralized (overwritten / vanished)
    MaskedInvalidEntry, ///< injected into an invalid/unused entry
    SdcOutput,          ///< wrong OUTPUT window
    SdcExitCode,        ///< wrong exit code / console
    CrashIllegal,
    CrashBusError,
    CrashMisaligned,
    CrashDivZero,
    CrashFetch,
    CrashAccelError,
    CrashTimeout,
    // Appended after the original set so stored journals keep their
    // detail names; keep MaskedInAccel the last enumerator (journal
    // parsing iterates 0..MaskedInAccel).
    MaskedPruned, ///< provably overwritten-before-read, never simulated
    MaskedInAccel, ///< consumed by the accelerator, never reached
                   ///< CPU-visible state
};

const char *outcomeDetailName(OutcomeDetail detail);

/** Result of one faulty run. */
struct RunVerdict
{
    Outcome outcome = Outcome::Masked;
    OutcomeDetail detail = OutcomeDetail::None;

    /** HVF verdict: the fault became architecturally visible. */
    bool hvfCorruption = false;
    Cycle hvfCorruptCycle = 0;

    /** Whether the run was cut short by early termination. */
    bool terminatedEarly = false;

    Cycle cyclesRun = 0;

    /**
     * Cycles the run skipped by restoring a checkpoint-ladder rung
     * instead of the window start. Pure execution telemetry: two runs
     * of one fault must agree on every field above regardless of this
     * one, so it is excluded from journal records and from
     * sched::verdictsIdentical.
     */
    Cycle fastForwarded = 0;

    /**
     * Window-relative cycle at which the early-stop convergence check
     * matched a golden rung and fabricated the rest of the verdict
     * (0 = ran its full course). Execution telemetry like
     * fastForwarded: excluded from journal records (it travels only in
     * provenance) and from sched::verdictsIdentical.
     */
    Cycle stoppedAt = 0;

    /**
     * Cycle of the first committed-uop divergence from the golden
     * trace observed by the early-stop tap (0 = never diverged or tap
     * off). Telemetry; same exclusions as stoppedAt.
     */
    Cycle divergedAt = 0;

    std::string toString() const;
};

} // namespace marvel::fi

#endif // MARVEL_FI_CLASSIFY_HH
