#include "fi/targets.hh"

#include "common/log.hh"

namespace marvel::fi
{

namespace
{

mem::Cache &
cacheOf(soc::System &system, TargetId id)
{
    switch (id) {
      case TargetId::L1I: return system.memory.l1i();
      case TargetId::L1D: return system.memory.l1d();
      case TargetId::L2: return system.memory.l2();
      default:
        panic("cacheOf: not a cache target");
    }
}

accel::AccelMem &
accelMemOf(soc::System &system, const TargetRef &ref)
{
    if (ref.accelIdx >= system.cluster.size())
        fatal("target: accelerator index %u out of range",
              ref.accelIdx);
    auto &mems = system.cluster.unit(ref.accelIdx).memories();
    if (ref.memIdx >= mems.size())
        fatal("target: component index %u out of range", ref.memIdx);
    return mems[ref.memIdx];
}

} // namespace

std::vector<TargetInfo>
listTargets(const soc::System &system)
{
    std::vector<TargetInfo> out;
    auto &sys = const_cast<soc::System &>(system);
    out.push_back({{TargetId::PrfInt}, "prf-int",
                   {sys.cpu.intPrf.numEntries(),
                    sys.cpu.intPrf.bitsPerEntry()}});
    out.push_back({{TargetId::PrfFp}, "prf-fp",
                   {sys.cpu.fpPrf.numEntries(),
                    sys.cpu.fpPrf.bitsPerEntry()}});
    out.push_back({{TargetId::L1I}, "l1i",
                   {sys.memory.l1i().numEntries(),
                    sys.memory.l1i().bitsPerEntry()}});
    out.push_back({{TargetId::L1D}, "l1d",
                   {sys.memory.l1d().numEntries(),
                    sys.memory.l1d().bitsPerEntry()}});
    out.push_back({{TargetId::L2}, "l2",
                   {sys.memory.l2().numEntries(),
                    sys.memory.l2().bitsPerEntry()}});
    out.push_back({{TargetId::LoadQueue}, "lq",
                   {sys.cpu.lq.numEntries(),
                    sys.cpu.lq.bitsPerEntry()}});
    out.push_back({{TargetId::StoreQueue}, "sq",
                   {sys.cpu.sq.numEntries(),
                    sys.cpu.sq.bitsPerEntry()}});
    out.push_back({{TargetId::Rob}, "rob",
                   {sys.cpu.robNumEntries(),
                    sys.cpu.robBitsPerEntry()}});
    out.push_back({{TargetId::RenameMap}, "rename",
                   {sys.cpu.renameNumEntries(),
                    sys.cpu.renameBitsPerEntry()}});
    out.push_back({{TargetId::Btb}, "btb",
                   {sys.cpu.bpred.numEntries(),
                    sys.cpu.bpred.bitsPerEntry()}});
    for (std::size_t a = 0; a < sys.cluster.size(); ++a) {
        const auto &unit = sys.cluster.unitC(a);
        for (std::size_t m = 0; m < unit.memories().size(); ++m) {
            const auto &mem = unit.memories()[m];
            TargetInfo info;
            info.ref = {TargetId::AccelMem, static_cast<u8>(a),
                        static_cast<u8>(m)};
            // Engine class in the name keeps targets unambiguous when
            // two microarchitectures implement the same algorithm
            // (gemm[dataflow].MATRIX1 vs gemm_systolic[systolic].SEQ).
            info.name = unit.design().name + "[" +
                        accel::engineClassName(
                            unit.design().engineClass) +
                        "]." + mem.name();
            info.geometry = {mem.numEntries(), mem.bitsPerEntry()};
            out.push_back(info);
        }
    }
    return out;
}

TargetInfo
targetInfo(const soc::System &system, const TargetRef &ref)
{
    for (const TargetInfo &info : listTargets(system))
        if (info.ref == ref)
            return info;
    fatal("target: no such target (%s accel=%u mem=%u)",
          targetIdName(ref.id), ref.accelIdx, ref.memIdx);
}

TargetRef
targetByName(const soc::System &system, const std::string &name)
{
    const std::vector<TargetInfo> targets = listTargets(system);
    for (const TargetInfo &info : targets)
        if (info.name == name)
            return info.ref;
    // Legacy accelerator spelling without the engine class
    // ("gemm.MATRIX1"): accept it when it is unambiguous.
    const std::string::size_type dot = name.find('.');
    if (dot != std::string::npos) {
        const TargetInfo *match = nullptr;
        for (const TargetInfo &info : targets) {
            const std::string::size_type br = info.name.find('[');
            const std::string::size_type idot = info.name.find("].");
            if (br == std::string::npos || idot == std::string::npos)
                continue;
            if (info.name.compare(0, br, name, 0, dot) == 0 &&
                info.name.compare(idot + 2, std::string::npos, name,
                                  dot + 1, std::string::npos) == 0) {
                if (match)
                    fatal("target: '%s' is ambiguous (matches '%s' "
                          "and '%s')",
                          name.c_str(), match->name.c_str(),
                          info.name.c_str());
                match = &info;
            }
        }
        if (match)
            return match->ref;
    }
    fatal("target: no target named '%s'", name.c_str());
}

void
injectFault(soc::System &system, const FaultSpec &fault)
{
    const bool transient = fault.model == FaultModel::Transient;
    const bool stuckValue = fault.model == FaultModel::StuckAt1;
    MARVEL_OBS_EMIT(obs::Component::Fault,
                    obs::EventKind::FaultInject, fault.entry,
                    fault.bit);

    auto applyBitImage = [&](auto &structure) {
        if (transient) {
            structure.flipBit(fault.entry, fault.bit);
            structure.faults().addWatch(fault.entry, fault.bit);
        } else {
            structure.faults().addStuck(fault.entry, fault.bit,
                                        stuckValue);
        }
    };

    switch (fault.target.id) {
      case TargetId::PrfInt: {
        auto &prf = system.cpu.intPrf;
        applyBitImage(prf);
        if (!transient) {
            // Force the stuck value immediately.
            const bool current =
                (prf.peek(fault.entry) >> fault.bit) & 1;
            if (current != stuckValue)
                prf.flipBit(fault.entry, fault.bit);
        }
        break;
      }
      case TargetId::PrfFp: {
        auto &prf = system.cpu.fpPrf;
        applyBitImage(prf);
        if (!transient) {
            const bool current =
                (prf.peek(fault.entry) >> fault.bit) & 1;
            if (current != stuckValue)
                prf.flipBit(fault.entry, fault.bit);
        }
        break;
      }
      case TargetId::L1I:
      case TargetId::L1D:
      case TargetId::L2: {
        auto &cache = cacheOf(system, fault.target.id);
        applyBitImage(cache);
        if (!transient) {
            const bool current =
                (cache.peekByte(fault.entry, fault.bit / 8) >>
                 (fault.bit % 8)) &
                1;
            if (current != stuckValue)
                cache.flipBit(fault.entry, fault.bit);
        }
        break;
      }
      case TargetId::LoadQueue:
        if (!transient)
            fatal("targets: stuck-at faults in the load queue are "
                  "not modeled");
        system.cpu.lq.flipBit(fault.entry, fault.bit);
        system.cpu.lq.faults().addWatch(fault.entry, fault.bit);
        break;
      case TargetId::StoreQueue:
        if (!transient)
            fatal("targets: stuck-at faults in the store queue are "
                  "not modeled");
        system.cpu.sq.flipBit(fault.entry, fault.bit);
        system.cpu.sq.faults().addWatch(fault.entry, fault.bit);
        break;
      case TargetId::Rob:
        if (!transient)
            fatal("targets: stuck-at faults in the ROB are not "
                  "modeled");
        // No watch: meta-state faults always run to completion.
        system.cpu.robFlipBit(fault.entry, fault.bit);
        break;
      case TargetId::RenameMap:
        if (!transient)
            fatal("targets: stuck-at faults in the rename map are "
                  "not modeled");
        system.cpu.renameFlipBit(fault.entry, fault.bit);
        break;
      case TargetId::Btb:
        if (!transient)
            fatal("targets: stuck-at faults in the BTB are not "
                  "modeled");
        system.cpu.bpred.flipBit(fault.entry, fault.bit);
        break;
      case TargetId::AccelMem: {
        auto &mem = accelMemOf(system, fault.target);
        applyBitImage(mem);
        if (!transient) {
            const u8 byte = mem.data()[fault.entry * 8 + fault.bit / 8];
            const bool current = (byte >> (fault.bit % 8)) & 1;
            if (current != stuckValue)
                mem.flipBit(fault.entry, fault.bit);
        }
        break;
      }
    }
}

void
seedLineage(soc::System &system, const FaultSpec &fault)
{
    switch (fault.target.id) {
      case TargetId::PrfInt:
        system.cpu.lineageTaintIntReg(fault.entry);
        break;
      case TargetId::PrfFp:
        system.cpu.lineageTaintFpReg(fault.entry);
        break;
      case TargetId::L1I:
      case TargetId::L1D:
      case TargetId::L2: {
        auto &cache = cacheOf(system, fault.target.id);
        if (cache.entryValid(fault.entry)) {
            const Addr lo = cache.lineAddr(
                static_cast<int>(fault.entry));
            system.cpu.lineageTaintMem(
                lo, lo + cache.params().lineSize);
        }
        break;
      }
      case TargetId::LoadQueue:
        if (system.cpu.lq[fault.entry].valid)
            system.cpu.lineageTaintLoad(fault.entry);
        break;
      case TargetId::StoreQueue:
        if (system.cpu.sq[fault.entry].valid)
            system.cpu.lineageTaintStore(fault.entry);
        break;
      case TargetId::AccelMem:
        // Systolic units shadow exact word taint; dataflow units have
        // no accelerator taint model and this is a no-op.
        system.cluster.unit(fault.target.accelIdx)
            .lineageSeedWord(fault.target.memIdx, fault.entry);
        break;
      default:
        break; // no dataflow taint model for meta-state
    }
}

FaultState &
faultStateOf(soc::System &system, const TargetRef &ref)
{
    switch (ref.id) {
      case TargetId::PrfInt: return system.cpu.intPrf.faults();
      case TargetId::PrfFp: return system.cpu.fpPrf.faults();
      case TargetId::L1I: return system.memory.l1i().faults();
      case TargetId::L1D: return system.memory.l1d().faults();
      case TargetId::L2: return system.memory.l2().faults();
      case TargetId::LoadQueue: return system.cpu.lq.faults();
      case TargetId::StoreQueue: return system.cpu.sq.faults();
      case TargetId::Rob: return system.cpu.robFaults();
      case TargetId::RenameMap: return system.cpu.renameFaults();
      case TargetId::Btb: return system.cpu.bpred.faults();
      case TargetId::AccelMem:
        return accelMemOf(system, ref).faults();
    }
    panic("faultStateOf: bad target");
}

bool
entryLive(const soc::System &system, const FaultSpec &fault)
{
    auto &sys = const_cast<soc::System &>(system);
    switch (fault.target.id) {
      case TargetId::L1I:
      case TargetId::L1D:
      case TargetId::L2:
        return cacheOf(sys, fault.target.id).entryValid(fault.entry);
      case TargetId::LoadQueue:
        return sys.cpu.lq[fault.entry].valid;
      case TargetId::StoreQueue:
        return sys.cpu.sq[fault.entry].valid;
      case TargetId::Rob:
        return fault.entry < sys.cpu.robOccupancy();
      default:
        // Register files and accelerator memories always hold bits;
        // liveness is resolved by the read/overwrite bookkeeping.
        return true;
    }
}

} // namespace marvel::fi
