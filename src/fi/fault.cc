#include "fi/fault.hh"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/log.hh"

namespace marvel::fi
{

const char *
faultModelName(FaultModel model)
{
    switch (model) {
      case FaultModel::Transient: return "transient";
      case FaultModel::StuckAt0: return "stuck-at-0";
      case FaultModel::StuckAt1: return "stuck-at-1";
    }
    return "?";
}

const char *
targetIdName(TargetId id)
{
    switch (id) {
      case TargetId::PrfInt: return "prf-int";
      case TargetId::PrfFp: return "prf-fp";
      case TargetId::L1I: return "l1i";
      case TargetId::L1D: return "l1d";
      case TargetId::L2: return "l2";
      case TargetId::LoadQueue: return "lq";
      case TargetId::StoreQueue: return "sq";
      case TargetId::Rob: return "rob";
      case TargetId::RenameMap: return "rename";
      case TargetId::Btb: return "btb";
      case TargetId::AccelMem: return "accel-mem";
    }
    return "?";
}

namespace
{

TargetId
targetIdFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(TargetId::AccelMem); ++i) {
        const TargetId id = static_cast<TargetId>(i);
        if (name == targetIdName(id))
            return id;
    }
    fatal("fault: unknown target '%s'", name.c_str());
}

FaultModel
faultModelFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(FaultModel::StuckAt1); ++i) {
        const FaultModel m = static_cast<FaultModel>(i);
        if (name == faultModelName(m))
            return m;
    }
    fatal("fault: unknown model '%s'", name.c_str());
}

} // namespace

std::string
FaultMask::toString() const
{
    std::string out;
    for (const FaultSpec &f : faults) {
        if (!out.empty())
            out += "; ";
        out += strfmt("%s accel=%u mem=%u entry=%u bit=%u model=%s "
                      "cycle=%llu",
                      targetIdName(f.target.id), f.target.accelIdx,
                      f.target.memIdx, f.entry, f.bit,
                      faultModelName(f.model),
                      static_cast<unsigned long long>(f.injectCycle));
    }
    return out;
}

FaultMask
FaultMask::parse(const std::string &text)
{
    FaultMask mask;
    std::istringstream in(text);
    std::string part;
    while (std::getline(in, part, ';')) {
        // Trim.
        std::size_t b = part.find_first_not_of(" \t");
        if (b == std::string::npos)
            continue;
        part = part.substr(b);
        std::istringstream ps(part);
        std::string targetName;
        ps >> targetName;
        FaultSpec f;
        f.target.id = targetIdFromName(targetName);
        std::string kv;
        while (ps >> kv) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos)
                fatal("fault mask: bad token '%s'", kv.c_str());
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            if (key == "accel")
                f.target.accelIdx =
                    static_cast<u8>(std::stoul(value));
            else if (key == "mem")
                f.target.memIdx = static_cast<u8>(std::stoul(value));
            else if (key == "entry")
                f.entry = static_cast<u32>(std::stoul(value));
            else if (key == "bit")
                f.bit = static_cast<u32>(std::stoul(value));
            else if (key == "model")
                f.model = faultModelFromName(value);
            else if (key == "cycle")
                f.injectCycle = std::stoull(value);
            else
                fatal("fault mask: unknown key '%s'", key.c_str());
        }
        mask.faults.push_back(f);
    }
    return mask;
}

FaultMask
adjacentBurst(Rng &rng, const TargetRef &target,
              const TargetGeometry &geometry, Cycle windowCycles,
              unsigned burstLength)
{
    FaultMask mask;
    FaultSpec first = randomFault(rng, target, geometry, windowCycles,
                                  FaultModel::Transient);
    for (unsigned i = 0; i < burstLength; ++i) {
        FaultSpec f = first;
        f.bit = (first.bit + i) % geometry.bitsPerEntry;
        mask.faults.push_back(f);
    }
    return mask;
}

FaultMask
scatteredMultiBit(Rng &rng, const TargetRef &target,
                  const TargetGeometry &geometry, Cycle windowCycles,
                  unsigned count)
{
    FaultMask mask;
    const Cycle when =
        windowCycles > 0 ? rng.below(windowCycles) : 0;
    for (unsigned i = 0; i < count; ++i) {
        FaultSpec f = randomFault(rng, target, geometry, windowCycles,
                                  FaultModel::Transient);
        f.injectCycle = when;
        mask.faults.push_back(f);
    }
    return mask;
}

FaultMask
multiStructure(Rng &rng,
               const std::vector<std::pair<TargetRef, TargetGeometry>>
                   &targets,
               Cycle windowCycles)
{
    FaultMask mask;
    for (const auto &[ref, geometry] : targets)
        mask.faults.push_back(randomFault(
            rng, ref, geometry, windowCycles,
            FaultModel::Transient));
    return mask;
}

FaultSpec
randomFault(Rng &rng, const TargetRef &target,
            const TargetGeometry &geometry, Cycle windowCycles,
            FaultModel model)
{
    if (geometry.entries == 0 || geometry.bitsPerEntry == 0)
        fatal("randomFault: empty target geometry");
    FaultSpec f;
    f.target = target;
    f.entry = static_cast<u32>(rng.below(geometry.entries));
    f.bit = static_cast<u32>(rng.below(geometry.bitsPerEntry));
    f.model = model;
    f.injectCycle =
        model == FaultModel::Transient && windowCycles > 0
            ? rng.below(windowCycles)
            : 0;
    return f;
}

} // namespace marvel::fi
