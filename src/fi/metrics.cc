#include "fi/metrics.hh"

#include <limits>

#include "common/stats.hh"

namespace marvel::fi
{

double
avfOf(const CampaignResult &result, AvfKind kind)
{
    switch (kind) {
      case AvfKind::Total: return result.avf();
      case AvfKind::Sdc: return result.sdcAvf();
      case AvfKind::Crash: return result.crashAvf();
      case AvfKind::Hvf: return result.hvf();
    }
    return 0.0;
}

double
weightedAvf(const std::vector<CampaignResult> &results, AvfKind kind)
{
    std::vector<double> values;
    std::vector<double> weights;
    values.reserve(results.size());
    weights.reserve(results.size());
    for (const CampaignResult &r : results) {
        values.push_back(avfOf(r, kind));
        weights.push_back(static_cast<double>(r.goldenCycles));
    }
    return weightedMean(values, weights);
}

double
operationsPerSecond(double opsPerRun, Cycle cyclesPerRun,
                    double clockGHz)
{
    if (cyclesPerRun == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(cyclesPerRun) / (clockGHz * 1e9);
    return opsPerRun / seconds;
}

double
operationsPerFailure(double opsPerRun, Cycle cyclesPerRun, double avf,
                     double clockGHz)
{
    const double ops =
        operationsPerSecond(opsPerRun, cyclesPerRun, clockGHz);
    if (avf <= 0.0)
        return std::numeric_limits<double>::infinity();
    return ops / avf;
}

PropagationBreakdown
propagationBreakdown(const CampaignResult &result)
{
    PropagationBreakdown out;
    for (const RunVerdict &v : result.verdicts) {
        switch (v.outcome) {
          case Outcome::SDC:
            ++out.sdc;
            break;
          case Outcome::Crash:
            ++out.crash;
            break;
          case Outcome::Masked:
            if (v.hvfCorruption)
                ++out.swMasked;
            else
                ++out.hwMasked;
            break;
        }
    }
    return out;
}

} // namespace marvel::fi
