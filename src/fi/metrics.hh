/**
 * @file
 * Aggregated reliability metrics: the weighted AVF of §V-A and the
 * Operations-per-Failure (OPF) metric of §V-G.
 */

#ifndef MARVEL_FI_METRICS_HH
#define MARVEL_FI_METRICS_HH

#include <vector>

#include "fi/campaign.hh"

namespace marvel::fi
{

/** Which AVF component to aggregate. */
enum class AvfKind : u8 { Total, Sdc, Crash, Hvf };

/** Per-benchmark AVF extracted by kind. */
double avfOf(const CampaignResult &result, AvfKind kind);

/**
 * wAVF(c) = sum_k AVF_k(c) * t_k / sum_k t_k with t_k the golden
 * execution cycles of benchmark k (paper §V-A).
 */
double weightedAvf(const std::vector<CampaignResult> &results,
                   AvfKind kind = AvfKind::Total);

/**
 * Default core clock used to convert cycles to seconds. The
 * configured value lives in soc::SystemConfig::clockGHz (INI key
 * `[system] clock_ghz`) — pass it explicitly so OPS/OPF figures
 * respect the modeled system rather than this fallback.
 */
constexpr double kDefaultClockGHz = 2.0;

/** OPS: workload executions per second at the given clock. */
double operationsPerSecond(double opsPerRun, Cycle cyclesPerRun,
                           double clockGHz = kDefaultClockGHz);

/**
 * OPF = OPS / AVF (paper §V-G): expected correct executions between
 * failures. Infinite when AVF is zero; larger is better.
 */
double operationsPerFailure(double opsPerRun, Cycle cyclesPerRun,
                            double avf,
                            double clockGHz = kDefaultClockGHz);

/**
 * Per-fault propagation breakdown (paper §IV-D / Fig. 3b): because the
 * HVF and AVF verdicts come from the same run, each fault can be
 * placed on its propagation path:
 *   hwMasked — never became architecturally visible,
 *   swMasked — reached the commit stage (HVF corruption) but the
 *              software still produced the correct result,
 *   sdc/crash — reached the program outcome.
 * Requires a campaign run with keepVerdicts and computeHvf.
 */
struct PropagationBreakdown
{
    u64 hwMasked = 0;
    u64 swMasked = 0;
    u64 sdc = 0;
    u64 crash = 0;

    u64 total() const { return hwMasked + swMasked + sdc + crash; }
};

PropagationBreakdown propagationBreakdown(const CampaignResult &result);

} // namespace marvel::fi

#endif // MARVEL_FI_METRICS_HH
