#include "fi/models.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/log.hh"

namespace marvel::fi
{

const char *
modelKindName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Single: return "single";
      case ModelKind::Burst: return "burst";
      case ModelKind::Scatter: return "scatter";
      case ModelKind::Correlated: return "correlated";
      case ModelKind::Targeted: return "targeted";
    }
    return "?";
}

namespace
{

ModelKind
modelKindFromName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(ModelKind::Targeted); ++i) {
        const ModelKind kind = static_cast<ModelKind>(i);
        if (name == modelKindName(kind))
            return kind;
    }
    fatal("fault model: unknown kind '%s'", name.c_str());
}

u64
parseNumber(const std::string &token, const char *what)
{
    char *end = nullptr;
    const u64 value = std::strtoull(token.c_str(), &end, 0);
    if (end == token.c_str() || *end != '\0')
        fatal("fault model: bad %s '%s'", what, token.c_str());
    return value;
}

std::vector<u32>
parseWeights(const std::string &token, const char *what)
{
    std::vector<u32> weights;
    std::istringstream in(token);
    std::string item;
    while (std::getline(in, item, ','))
        weights.push_back(
            static_cast<u32>(parseNumber(item, what)));
    if (weights.empty())
        fatal("fault model: empty %s list", what);
    bool any = false;
    for (const u32 w : weights)
        any |= w != 0;
    if (!any)
        fatal("fault model: all-zero %s weights", what);
    return weights;
}

void
parseRange(const std::string &token, const char *what, u64 &lo,
           u64 &hi)
{
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos)
        fatal("fault model: %s range '%s' is not LO:HI", what,
              token.c_str());
    lo = parseNumber(token.substr(0, colon), what);
    hi = parseNumber(token.substr(colon + 1), what);
    if (lo > hi)
        fatal("fault model: empty %s range '%s'", what,
              token.c_str());
}

std::string
weightsToString(const std::vector<u32> &weights)
{
    std::string out;
    for (const u32 w : weights) {
        if (!out.empty())
            out += ',';
        out += strfmt("%u", w);
    }
    return out;
}

} // namespace

CorrelatedMap
CorrelatedMap::parseText(const std::string &text)
{
    CorrelatedMap map;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string directive;
        if (!(ls >> directive))
            continue;
        std::vector<u32> *axis = nullptr;
        if (directive == "row")
            axis = &map.rowWeights;
        else if (directive == "col")
            axis = &map.colWeights;
        else
            fatal("fault map: unknown directive '%s'",
                  directive.c_str());
        if (!axis->empty())
            fatal("fault map: duplicate '%s' line",
                  directive.c_str());
        std::string token;
        while (ls >> token)
            axis->push_back(
                static_cast<u32>(parseNumber(token, "weight")));
        if (axis->empty())
            fatal("fault map: '%s' line holds no weights",
                  directive.c_str());
        bool any = false;
        for (const u32 w : *axis)
            any |= w != 0;
        if (!any)
            fatal("fault map: all-zero '%s' weights",
                  directive.c_str());
    }
    if (map.empty())
        fatal("fault map: no row/col weights found");
    return map;
}

CorrelatedMap
CorrelatedMap::parseFile(const std::string &path)
{
    FILE *file = std::fopen(path.c_str(), "rb");
    if (!file)
        fatal("fault map: cannot open '%s'", path.c_str());
    std::string text;
    char buffer[4096];
    std::size_t got;
    while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        text.append(buffer, got);
    std::fclose(file);
    return parseText(text);
}

std::string
FaultModelSpec::toString() const
{
    switch (kind) {
      case ModelKind::Single:
        return "";
      case ModelKind::Burst:
        return strfmt("burst k=%u", k);
      case ModelKind::Scatter:
        return strfmt("scatter k=%u", k);
      case ModelKind::Correlated: {
        std::string out = "correlated";
        if (!map.rowWeights.empty())
            out += " roww=" + weightsToString(map.rowWeights);
        if (!map.colWeights.empty())
            out += " colw=" + weightsToString(map.colWeights);
        return out;
      }
      case ModelKind::Targeted: {
        std::string out = "targeted";
        if (filter.entryLo != 0 ||
            filter.entryHi != TargetFilter::kNoLimit)
            out += strfmt(" entry=%u:%u", filter.entryLo,
                          filter.entryHi);
        if (filter.bitLo != 0 ||
            filter.bitHi != TargetFilter::kNoLimit)
            out += strfmt(" bit=%u:%u", filter.bitLo, filter.bitHi);
        if (filter.cycleLo != 0 ||
            filter.cycleHi != TargetFilter::kNoCycleLimit)
            out += strfmt(
                " cycle=%llu:%llu",
                static_cast<unsigned long long>(filter.cycleLo),
                static_cast<unsigned long long>(filter.cycleHi));
        if (filter.hasPc())
            out += strfmt(
                " pc=0x%llx:0x%llx",
                static_cast<unsigned long long>(filter.pcLo),
                static_cast<unsigned long long>(filter.pcHi));
        return out;
      }
    }
    fatal("fault model: unhandled kind %d", static_cast<int>(kind));
}

FaultModelSpec
FaultModelSpec::parse(const std::string &text)
{
    FaultModelSpec spec;
    std::istringstream in(text);
    std::string kindName;
    if (!(in >> kindName))
        return spec; // empty/blank = legacy Single
    spec.kind = modelKindFromName(kindName);
    std::string kv;
    while (in >> kv) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("fault model: bad token '%s'", kv.c_str());
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "k" && (spec.kind == ModelKind::Burst ||
                           spec.kind == ModelKind::Scatter)) {
            spec.k = static_cast<unsigned>(parseNumber(value, "k"));
        } else if (key == "roww" &&
                   spec.kind == ModelKind::Correlated) {
            spec.map.rowWeights = parseWeights(value, "roww");
        } else if (key == "colw" &&
                   spec.kind == ModelKind::Correlated) {
            spec.map.colWeights = parseWeights(value, "colw");
        } else if (key == "entry" &&
                   spec.kind == ModelKind::Targeted) {
            u64 lo, hi;
            parseRange(value, "entry", lo, hi);
            spec.filter.entryLo = static_cast<u32>(lo);
            spec.filter.entryHi = static_cast<u32>(hi);
        } else if (key == "bit" && spec.kind == ModelKind::Targeted) {
            u64 lo, hi;
            parseRange(value, "bit", lo, hi);
            spec.filter.bitLo = static_cast<u32>(lo);
            spec.filter.bitHi = static_cast<u32>(hi);
        } else if (key == "cycle" &&
                   spec.kind == ModelKind::Targeted) {
            parseRange(value, "cycle", spec.filter.cycleLo,
                       spec.filter.cycleHi);
        } else if (key == "pc" && spec.kind == ModelKind::Targeted) {
            parseRange(value, "pc", spec.filter.pcLo,
                       spec.filter.pcHi);
        } else {
            fatal("fault model: unknown key '%s' for kind '%s'",
                  key.c_str(), modelKindName(spec.kind));
        }
    }
    if ((spec.kind == ModelKind::Burst ||
         spec.kind == ModelKind::Scatter) &&
        spec.k == 0)
        fatal("fault model: k must be >= 1");
    if (spec.kind == ModelKind::Correlated && spec.map.empty())
        fatal("fault model: correlated needs roww and/or colw");
    if (spec.kind == ModelKind::Targeted &&
        !spec.filter.constrained())
        fatal("fault model: targeted needs at least one of "
              "entry/bit/cycle/pc");
    return spec;
}

FaultModelSpec
FaultModelSpec::fromConfig(const ConfigFile &config)
{
    const ConfigFile::Section *section = config.first("fault_model");
    if (!section)
        return {};
    // Build the canonical token stream and reuse the string parser so
    // config files and --fault-model share one validation path.
    std::string text = section->get("kind", "single");
    if (section->has("k"))
        text += " k=" + section->get("k");
    if (section->has("map")) {
        const CorrelatedMap map =
            CorrelatedMap::parseFile(section->get("map"));
        if (!map.rowWeights.empty())
            text += " roww=" + weightsToString(map.rowWeights);
        if (!map.colWeights.empty())
            text += " colw=" + weightsToString(map.colWeights);
    }
    for (const char *key : {"roww", "colw", "entry", "bit", "cycle",
                            "pc"})
        if (section->has(key))
            text += strfmt(" %s=%s", key,
                           section->get(key).c_str());
    FaultModelSpec spec = parse(text);
    if (spec.legacy() && text != "single")
        fatal("fault model: [fault_model] keys need kind != single");
    return spec;
}

u64
weightedIndex(Rng &rng, u64 n, const std::vector<u32> &weights)
{
    if (n == 0)
        fatal("weightedIndex: empty domain");
    if (weights.empty())
        return rng.below(n);
    const u64 r = weights.size();
    u64 total = 0;
    for (u64 i = 0; i < r && i < n; ++i) {
        const u64 cnt = n / r + (i < n % r ? 1 : 0);
        total += cnt * weights[i];
    }
    if (total == 0)
        fatal("weightedIndex: all weights zero over the domain");
    u64 x = rng.below(total);
    for (u64 i = 0; i < r && i < n; ++i) {
        const u64 cnt = n / r + (i < n % r ? 1 : 0);
        const u64 share = cnt * weights[i];
        if (weights[i] > 0 && x < share)
            return (x / weights[i]) * r + i;
        x -= share;
    }
    fatal("weightedIndex: draw out of range"); // unreachable
}

FaultMask
FaultSampler::sample(Rng &rng, const TargetRef &target,
                     const TargetGeometry &geometry,
                     Cycle windowCycles) const
{
    if (geometry.entries == 0 || geometry.bitsPerEntry == 0)
        fatal("fault model: empty target geometry");
    FaultMask mask;
    auto drawCycle = [&]() -> Cycle {
        return windowCycles > 0 ? rng.below(windowCycles) : 0;
    };
    auto push = [&](u32 entry, u32 bit, Cycle when) {
        FaultSpec f;
        f.target = target;
        f.entry = entry;
        f.bit = bit;
        f.model = base;
        f.injectCycle = when;
        mask.faults.push_back(f);
    };
    switch (spec.kind) {
      case ModelKind::Single:
        mask.faults.push_back(randomFault(rng, target, geometry,
                                          windowCycles, base));
        return mask;
      case ModelKind::Burst: {
        const u32 entry =
            static_cast<u32>(rng.below(geometry.entries));
        const u32 start =
            static_cast<u32>(rng.below(geometry.bitsPerEntry));
        const Cycle when = drawCycle();
        // Wrapping past the entry width would flip a bit twice (a
        // net no-op for transients), so the burst caps at the width.
        const unsigned width =
            std::min<u64>(spec.k, geometry.bitsPerEntry);
        for (unsigned i = 0; i < width; ++i)
            push(entry, (start + i) % geometry.bitsPerEntry, when);
        return mask;
      }
      case ModelKind::Scatter: {
        const Cycle when = drawCycle();
        for (unsigned i = 0; i < spec.k; ++i)
            push(static_cast<u32>(rng.below(geometry.entries)),
                 static_cast<u32>(rng.below(geometry.bitsPerEntry)),
                 when);
        return mask;
      }
      case ModelKind::Correlated: {
        const u32 entry = static_cast<u32>(weightedIndex(
            rng, geometry.entries, spec.map.rowWeights));
        const u32 bit = static_cast<u32>(weightedIndex(
            rng, geometry.bitsPerEntry, spec.map.colWeights));
        push(entry, bit, drawCycle());
        return mask;
      }
      case ModelKind::Targeted: {
        const TargetFilter &f = spec.filter;
        const u32 entryHi =
            std::min(f.entryHi, geometry.entries - 1);
        const u32 bitHi =
            std::min(f.bitHi, geometry.bitsPerEntry - 1);
        if (f.entryLo > entryHi)
            fatal("fault model: entry filter %u:%u misses the "
                  "target (%u entries)",
                  f.entryLo, f.entryHi, geometry.entries);
        if (f.bitLo > bitHi)
            fatal("fault model: bit filter %u:%u misses the target "
                  "(%u bits/entry)",
                  f.bitLo, f.bitHi, geometry.bitsPerEntry);
        const u32 entry =
            f.entryLo + static_cast<u32>(
                            rng.below(entryHi - f.entryLo + 1));
        const u32 bit =
            f.bitLo +
            static_cast<u32>(rng.below(bitHi - f.bitLo + 1));
        Cycle when = 0;
        if (f.hasPc()) {
            if (pcCycles.empty())
                fatal("fault model: pc filter 0x%llx:0x%llx matched "
                      "no commit in the window",
                      static_cast<unsigned long long>(f.pcLo),
                      static_cast<unsigned long long>(f.pcHi));
            when = pcCycles[rng.below(pcCycles.size())];
        } else if (windowCycles > 0) {
            const Cycle hi =
                std::min(f.cycleHi, windowCycles - 1);
            if (f.cycleLo > hi)
                fatal("fault model: cycle filter %llu:%llu misses "
                      "the window (%llu cycles)",
                      static_cast<unsigned long long>(f.cycleLo),
                      static_cast<unsigned long long>(f.cycleHi),
                      static_cast<unsigned long long>(windowCycles));
            when = f.cycleLo + rng.below(hi - f.cycleLo + 1);
        }
        push(entry, bit, when);
        return mask;
      }
    }
    fatal("fault model: unhandled kind %d",
          static_cast<int>(spec.kind));
}

} // namespace marvel::fi
