/**
 * @file
 * Fault models and fault masks (paper Table III).
 *
 * A FaultMask describes one injection experiment: one or more faults,
 * each pinning a target structure, an entry, a bit, a model
 * (transient bit-flip or permanent stuck-at) and, for transients, the
 * injection cycle relative to the start of the injection window (the
 * window is delimited by the workload's Checkpoint / SwitchCpu magic
 * instructions, exactly like the paper's m5 pseudo-instructions).
 */

#ifndef MARVEL_FI_FAULT_HH
#define MARVEL_FI_FAULT_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace marvel::fi
{

/** Fault models (Table III). */
enum class FaultModel : u8
{
    Transient, ///< one-cycle bit flip
    StuckAt0,  ///< permanent stuck-at-0
    StuckAt1,  ///< permanent stuck-at-1
};

const char *faultModelName(FaultModel model);

/** Injectable hardware structures. */
enum class TargetId : u8
{
    PrfInt,     ///< integer physical register file
    PrfFp,      ///< floating-point physical register file
    L1I,        ///< L1 instruction cache data array
    L1D,        ///< L1 data cache data array
    L2,         ///< L2 cache data array
    LoadQueue,
    StoreQueue,
    Rob,        ///< reorder-buffer control image (pointers + pc)
    RenameMap,  ///< integer rename table
    Btb,        ///< branch target buffer (negative control: never ACE)
    AccelMem,   ///< accelerator SPM / register bank (qualified)
};

const char *targetIdName(TargetId id);

/** Full reference to one injectable structure. */
struct TargetRef
{
    TargetId id = TargetId::PrfInt;
    u8 accelIdx = 0; ///< AccelMem: compute unit index
    u8 memIdx = 0;   ///< AccelMem: component index

    bool
    operator==(const TargetRef &other) const
    {
        return id == other.id && accelIdx == other.accelIdx &&
               memIdx == other.memIdx;
    }
};

/** One fault. */
struct FaultSpec
{
    TargetRef target;
    u32 entry = 0;
    u32 bit = 0;
    FaultModel model = FaultModel::Transient;
    Cycle injectCycle = 0; ///< window-relative (transients)
};

/** One injection experiment (possibly multi-bit / multi-structure). */
struct FaultMask
{
    std::vector<FaultSpec> faults;

    bool empty() const { return faults.empty(); }

    /** Serialize to a single-line text form (the "fault mask file"). */
    std::string toString() const;

    /** Parse the text form; fatal() on malformed input. */
    static FaultMask parse(const std::string &text);
};

/** Geometry of one injectable structure. */
struct TargetGeometry
{
    u32 entries = 0;
    u32 bitsPerEntry = 0;

    u64
    totalBits() const
    {
        return static_cast<u64>(entries) * bitsPerEntry;
    }
};

/**
 * Draw one uniformly random single-bit fault over (entries x bits x
 * window cycles) — the paper's sampling per Leveugle et al.
 */
FaultSpec randomFault(Rng &rng, const TargetRef &target,
                      const TargetGeometry &geometry,
                      Cycle windowCycles, FaultModel model);

/**
 * Multi-bit masks (paper SIV-A1): spatial combinations mimic the
 * physical behaviour of upsets.
 */

/** n-bit burst: adjacent bits of one entry flipping together. */
FaultMask adjacentBurst(Rng &rng, const TargetRef &target,
                        const TargetGeometry &geometry,
                        Cycle windowCycles, unsigned burstLength);

/** Independent flips spread over one structure (same cycle). */
FaultMask scatteredMultiBit(Rng &rng, const TargetRef &target,
                            const TargetGeometry &geometry,
                            Cycle windowCycles, unsigned count);

/** One flip in each of several structures (spatial multi-structure). */
FaultMask multiStructure(Rng &rng,
                         const std::vector<std::pair<TargetRef,
                                                     TargetGeometry>>
                             &targets,
                         Cycle windowCycles);

} // namespace marvel::fi

#endif // MARVEL_FI_FAULT_HH
