#include "fi/campaign.hh"

#include <algorithm>
#include <mutex>
#include <thread>

#include "common/log.hh"
#include "common/stats.hh"
#include "sched/workqueue.hh"

namespace marvel::fi
{

GoldenRun
runGolden(const soc::SystemConfig &config, const isa::Program &program,
          u64 maxCycles)
{
    GoldenRun golden;
    soc::System sys(config);
    sys.loadProgram(program);

    // Phase 1: run to the Checkpoint magic instruction.
    soc::RunExit exit = sys.run(maxCycles);
    if (exit != soc::RunExit::Checkpoint)
        fatal("golden run: expected a checkpoint, got %s (%s)",
              soc::runExitName(exit), sys.crashReason().c_str());
    golden.preCycles = sys.totalCycles;
    golden.checkpoint = soc::Checkpoint::take(sys);

    // Phase 2: record the commit trace through the injection window
    // and on to completion.
    sys.cpu.traceOut = &golden.trace;
    const Cycle cpCycle = sys.totalCycles;
    exit = sys.run(maxCycles);
    if (exit == soc::RunExit::SwitchCpu) {
        golden.windowCycles = sys.totalCycles - cpCycle;
        exit = sys.run(maxCycles);
    }
    if (exit != soc::RunExit::Exited)
        fatal("golden run: expected clean exit, got %s (%s)",
              soc::runExitName(exit), sys.crashReason().c_str());
    golden.totalCycles = sys.totalCycles - cpCycle;
    if (golden.windowCycles == 0)
        golden.windowCycles = golden.totalCycles;
    golden.output = sys.outputWindow();
    golden.exitCode = sys.exitCode;
    golden.console = sys.console;
    return golden;
}

namespace
{

OutcomeDetail
crashDetail(const soc::System &sys)
{
    if (sys.accelCrashed)
        return OutcomeDetail::CrashAccelError;
    switch (sys.cpu.crashKind) {
      case cpu::CrashKind::IllegalInstruction:
        return OutcomeDetail::CrashIllegal;
      case cpu::CrashKind::BusError:
        return OutcomeDetail::CrashBusError;
      case cpu::CrashKind::Misaligned:
        return OutcomeDetail::CrashMisaligned;
      case cpu::CrashKind::DivideByZero:
        return OutcomeDetail::CrashDivZero;
      case cpu::CrashKind::FetchError:
        return OutcomeDetail::CrashFetch;
      default:
        return OutcomeDetail::None;
    }
}

} // namespace

RunVerdict
runWithFault(const GoldenRun &golden, const FaultMask &mask,
             const InjectionOptions &options)
{
    RunVerdict verdict;
    soc::System sys = golden.checkpoint.restore();
    if (options.computeHvf) {
        sys.cpu.traceRef = &golden.trace;
        sys.cpu.traceRefPos = 0;
    }
    if (options.lineage) {
        *options.lineage = obs::PropagationTrace{};
        sys.cpu.lineageOut = options.lineage;
    }

    // Apply permanent faults at the window start; order transients by
    // injection cycle.
    std::vector<FaultSpec> pending;
    for (const FaultSpec &f : mask.faults) {
        if (f.model == FaultModel::Transient) {
            pending.push_back(f);
        } else {
            injectFault(sys, f);
            if (options.lineage)
                seedLineage(sys, f);
        }
    }
    std::sort(pending.begin(), pending.end(),
              [](const FaultSpec &a, const FaultSpec &b) {
                  return a.injectCycle < b.injectCycle;
              });

    const Cycle timeoutAt = static_cast<Cycle>(
        static_cast<double>(golden.totalCycles) *
            options.timeoutFactor +
        200'000.0);
    const bool transientMask = !pending.empty();
    Cycle cursor = 0;
    std::size_t nextFault = 0;
    bool anyHitInvalid = false;

    // Inject one transient fault, noting the paper's invalid-entry
    // optimization: a flip into an invalid/unused entry is dead on
    // arrival (the next fill overwrites it), so mark it vanished and
    // let the early-termination check cash the verdict in.
    auto placeFault = [&](const FaultSpec &fault) {
        const bool live = entryLive(sys, fault);
        injectFault(sys, fault);
        if (options.lineage)
            seedLineage(sys, fault);
        if (!live) {
            anyHitInvalid = true;
            if (options.earlyTermination)
                faultStateOf(sys, fault.target).noteGone(fault.entry);
        }
    };

    // Lineage outcome: the architectural-divergence fields mirror the
    // HVF verdict once it is known.
    auto finishLineage = [&]() {
        if (!options.lineage)
            return;
        options.lineage->diverged = verdict.hvfCorruption;
        options.lineage->firstDivergence = verdict.hvfCorruptCycle;
        sys.cpu.lineageOut = nullptr;
    };

    // Runs on every exit path; snapshots the faulty system's stats
    // tree for the golden-vs-faulty divergence report, and digests
    // the architectural end state for determinism audits.
    auto finishStats = [&]() {
        if (options.statsOut)
            *options.statsOut = sys.statsSnapshot();
        if (options.archDigestOut)
            *options.archDigestOut = soc::archStateDigest(sys);
    };

    auto finishExit = [&]() {
        verdict.cyclesRun = cursor;
        verdict.hvfCorruption = sys.cpu.hvfCorrupted;
        verdict.hvfCorruptCycle = sys.cpu.hvfCorruptCycle;
        if (sys.exitCode != golden.exitCode ||
            sys.console != golden.console) {
            verdict.outcome = Outcome::SDC;
            verdict.detail = OutcomeDetail::SdcExitCode;
            return;
        }
        if (sys.outputWindow() != golden.output) {
            verdict.outcome = Outcome::SDC;
            verdict.detail = OutcomeDetail::SdcOutput;
            return;
        }
        verdict.outcome = Outcome::Masked;
        verdict.detail = OutcomeDetail::MaskedIdentical;
    };

    for (;;) {
        // Inject any transient faults scheduled for this cycle.
        while (nextFault < pending.size() &&
               pending[nextFault].injectCycle <= cursor) {
            placeFault(pending[nextFault]);
            ++nextFault;
        }

        sys.tick();
        ++cursor;
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;

        if (sys.exited) {
            finishExit();
            finishStats();
            finishLineage();
            return verdict;
        }
        if (sys.cpu.crashed() || sys.cluster.errored()) {
            if (sys.cluster.errored())
                sys.accelCrashed = true;
            verdict.outcome = Outcome::Crash;
            verdict.detail = crashDetail(sys);
            verdict.cyclesRun = cursor;
            verdict.hvfCorruption = true; // reached the software layer
            verdict.hvfCorruptCycle = sys.cpu.hvfCorrupted
                                          ? sys.cpu.hvfCorruptCycle
                                          : cursor;
            finishStats();
            finishLineage();
            return verdict;
        }
        if (cursor >= timeoutAt) {
            verdict.outcome = Outcome::Crash;
            verdict.detail = OutcomeDetail::CrashTimeout;
            verdict.cyclesRun = cursor;
            verdict.hvfCorruption = true;
            verdict.hvfCorruptCycle = cursor;
            finishStats();
            finishLineage();
            return verdict;
        }

        // Early termination: every watched bit is dead and unread.
        if (options.earlyTermination && transientMask &&
            nextFault == pending.size() && (cursor & 63) == 0) {
            bool allDead = true;
            for (const FaultSpec &f : pending) {
                auto &state = faultStateOf(sys, f.target);
                if (!state.allNeutralized()) {
                    allDead = false;
                    break;
                }
            }
            if (allDead) {
                verdict.outcome = Outcome::Masked;
                verdict.detail = anyHitInvalid
                                     ? OutcomeDetail::MaskedInvalidEntry
                                     : OutcomeDetail::MaskedEarly;
                verdict.terminatedEarly = true;
                verdict.cyclesRun = cursor;
                finishStats();
                finishLineage();
                return verdict;
            }
        }
    }
}

stats::Snapshot
goldenStats(const GoldenRun &golden)
{
    soc::System sys = golden.checkpoint.restore();
    const u64 maxCycles = golden.totalCycles * 2 + 1'000'000;
    for (u64 i = 0; i < maxCycles && !sys.exited; ++i) {
        sys.tick();
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
        if (sys.cpu.crashed() || sys.cluster.errored())
            fatal("goldenStats: fault-free replay crashed (%s)",
                  sys.crashReason().c_str());
    }
    if (!sys.exited)
        fatal("goldenStats: fault-free replay did not exit");
    return sys.statsSnapshot();
}

double
CampaignResult::population() const
{
    return static_cast<double>(target.geometry.totalBits()) *
           static_cast<double>(std::max<Cycle>(windowCycles, 1));
}

double
CampaignResult::errorMargin() const
{
    if (total() == 0)
        return 1.0;
    return marginOfError(static_cast<double>(total()), population());
}

void
CampaignResult::tally(const RunVerdict &verdict)
{
    switch (verdict.outcome) {
      case Outcome::Masked:
        ++masked;
        if (verdict.detail == OutcomeDetail::MaskedEarly)
            ++maskedEarly;
        if (verdict.detail == OutcomeDetail::MaskedInvalidEntry)
            ++maskedInvalid;
        break;
      case Outcome::SDC:
        ++sdc;
        break;
      case Outcome::Crash:
        ++crash;
        if (verdict.detail == OutcomeDetail::CrashTimeout)
            ++timeouts;
        break;
    }
    if (verdict.hvfCorruption)
        ++hvfCorruptions;
}

void
CampaignResult::addCounts(const CampaignResult &other)
{
    masked += other.masked;
    sdc += other.sdc;
    crash += other.crash;
    maskedEarly += other.maskedEarly;
    maskedInvalid += other.maskedInvalid;
    timeouts += other.timeouts;
    hvfCorruptions += other.hvfCorruptions;
}

CampaignResult
runCampaign(const soc::SystemConfig &config,
            const isa::Program &program, const TargetRef &target,
            const CampaignOptions &options)
{
    const GoldenRun golden =
        runGolden(config, program, options.goldenMaxCycles);
    return runCampaignOnGolden(golden, target, options);
}

CampaignResult
runCampaignOnGolden(const GoldenRun &golden, const TargetRef &target,
                    const CampaignOptions &options)
{
    CampaignResult result;
    result.target = targetInfo(golden.checkpoint.view(), target);
    result.goldenCycles = golden.totalCycles;
    result.windowCycles = golden.windowCycles;
    if (options.keepVerdicts)
        result.verdicts.resize(options.numFaults);

    InjectionOptions runOpts;
    runOpts.earlyTermination = options.earlyTermination;
    runOpts.computeHvf = options.computeHvf;
    runOpts.timeoutFactor = options.timeoutFactor;

    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, options.numFaults ? options.numFaults : 1);

    // Atomic work queue instead of the old fixed-stride split: each
    // worker claims the next unclaimed fault index, so one stride
    // accumulating the slow (timeout-bound) runs can no longer leave
    // the other workers idle. Results stay deterministic because each
    // index derives its own RNG stream and the counters commute.
    sched::WorkQueue queue(options.numFaults);
    std::mutex mergeMutex;
    auto worker = [&](unsigned) {
        CampaignResult local;
        std::vector<std::pair<u64, RunVerdict>> kept;
        while (const auto slot = queue.next()) {
            const u64 i = *slot;
            Rng rng = Rng::forStream(options.seed, i);
            FaultMask mask;
            mask.faults.push_back(randomFault(
                rng, target, result.target.geometry,
                golden.windowCycles, options.model));
            const RunVerdict verdict =
                runWithFault(golden, mask, runOpts);
            local.tally(verdict);
            if (options.keepVerdicts)
                kept.emplace_back(i, verdict);
        }
        std::lock_guard<std::mutex> lock(mergeMutex);
        result.addCounts(local);
        for (auto &[idx, verdict] : kept)
            result.verdicts[idx] = verdict;
    };

    sched::runWorkers(threads, worker);
    return result;
}

} // namespace marvel::fi
