#include "fi/campaign.hh"

#include <algorithm>
#include <mutex>
#include <optional>
#include <thread>

#include "common/log.hh"
#include "common/stats.hh"
#include "obs/profiler.hh"
#include "sched/workqueue.hh"
#include "soc/converge.hh"

namespace marvel::fi
{

namespace prof = obs::profiler;

const LadderRung *
GoldenRun::rungAtOrBefore(Cycle cycle) const
{
    const LadderRung *best = nullptr;
    for (const LadderRung &rung : ladder) {
        if (rung.cycle > cycle)
            break;
        best = &rung;
    }
    return best;
}

namespace
{

/**
 * Capture the intra-window checkpoint ladder with one deterministic
 * replay of the injection window. Each rung is the system state after
 * exactly `cycle` ticks from the window-start checkpoint — the same
 * tick/flag-clear sequence runWithFault executes before its first
 * injection — so restoring a rung is bit-identical to ticking there.
 */
void
captureLadder(GoldenRun &golden, unsigned rungs)
{
    if (rungs == kLadderAuto)
        rungs = static_cast<unsigned>(
            std::min<u64>(64, golden.windowCycles / 50'000));
    if (rungs == 0 || golden.windowCycles < 2)
        return;

    // Evenly spaced capture cycles, strictly inside the window (a
    // rung at cycle 0 would duplicate the window-start checkpoint).
    std::vector<Cycle> cycles;
    for (unsigned i = 1; i <= rungs; ++i) {
        const Cycle c = golden.windowCycles /
                        static_cast<Cycle>(rungs + 1) *
                        static_cast<Cycle>(i);
        if (c == 0 || c >= golden.windowCycles)
            continue;
        if (!cycles.empty() && cycles.back() == c)
            continue;
        cycles.push_back(c);
    }

    soc::System replay = golden.checkpoint.restore();
    std::vector<cpu::CommitRecord> replayTrace;
    replay.cpu.traceOut = &replayTrace;
    Cycle cursor = 0;
    for (Cycle target : cycles) {
        while (cursor < target) {
            replay.tick();
            ++cursor;
            replay.cpu.checkpointRequest = false;
            replay.cpu.switchCpuRequest = false;
            if (replay.exited || replay.cpu.crashed() ||
                replay.cluster.errored())
                fatal("golden ladder: fault-free replay ended at "
                      "cycle %llu inside the injection window (%s)",
                      (unsigned long long)cursor,
                      replay.crashReason().c_str());
        }
        LadderRung rung;
        rung.cycle = cursor;
        rung.traceIndex = replayTrace.size();
        rung.checkpoint = soc::Checkpoint::take(replay);
        golden.ladder.push_back(std::move(rung));
    }
}

} // namespace

GoldenRun
runGolden(const soc::SystemConfig &config, const isa::Program &program,
          u64 maxCycles, unsigned ladderRungs)
{
    GoldenRun golden;
    {
        // The golden-build and rung-capture phases stay sequential
        // (not nested) so the profiler's totals partition wall time.
        const prof::ScopedPhase timer(prof::Phase::GoldenBuild);
        soc::System sys(config);
        sys.loadProgram(program);

        // Phase 1: run to the Checkpoint magic instruction.
        soc::RunExit exit = sys.run(maxCycles);
        if (exit != soc::RunExit::Checkpoint)
            fatal("golden run: expected a checkpoint, got %s (%s)",
                  soc::runExitName(exit), sys.crashReason().c_str());
        golden.preCycles = sys.totalCycles;
        golden.checkpoint = soc::Checkpoint::take(sys);

        // Phase 2: record the commit trace through the injection
        // window and on to completion.
        sys.cpu.traceOut = &golden.trace;
        const Cycle cpCycle = sys.totalCycles;
        exit = sys.run(maxCycles);
        if (exit == soc::RunExit::SwitchCpu) {
            golden.windowCycles = sys.totalCycles - cpCycle;
            exit = sys.run(maxCycles);
        }
        if (exit != soc::RunExit::Exited)
            fatal("golden run: expected clean exit, got %s (%s)",
                  soc::runExitName(exit), sys.crashReason().c_str());
        golden.totalCycles = sys.totalCycles - cpCycle;
        if (golden.windowCycles == 0)
            golden.windowCycles = golden.totalCycles;
        golden.output = sys.outputWindow();
        golden.exitCode = sys.exitCode;
        golden.console = sys.console;
    }
    {
        const prof::ScopedPhase timer(prof::Phase::RungCapture);
        captureLadder(golden, ladderRungs);
    }
    return golden;
}

namespace
{

OutcomeDetail
crashDetail(const soc::System &sys)
{
    if (sys.accelCrashed)
        return OutcomeDetail::CrashAccelError;
    switch (sys.cpu.crashKind) {
      case cpu::CrashKind::IllegalInstruction:
        return OutcomeDetail::CrashIllegal;
      case cpu::CrashKind::BusError:
        return OutcomeDetail::CrashBusError;
      case cpu::CrashKind::Misaligned:
        return OutcomeDetail::CrashMisaligned;
      case cpu::CrashKind::DivideByZero:
        return OutcomeDetail::CrashDivZero;
      case cpu::CrashKind::FetchError:
        return OutcomeDetail::CrashFetch;
      default:
        return OutcomeDetail::None;
    }
}

} // namespace

RunVerdict
runWithFault(const GoldenRun &golden, const FaultMask &mask,
             const InjectionOptions &options)
{
    RunVerdict verdict;

    // Order every fault by its injection (onset) cycle. Transients
    // flip once at that cycle; stuck-at faults apply their constraint
    // from it onward. Legacy Single-kind stuck-at faults carry cycle
    // 0 and so still act from the window start.
    std::vector<FaultSpec> pending = mask.faults;
    std::stable_sort(pending.begin(), pending.end(),
                     [](const FaultSpec &a, const FaultSpec &b) {
                         return a.injectCycle < b.injectCycle;
                     });
    bool hasPermanent = false;
    for (const FaultSpec &f : pending)
        hasPermanent |= f.model != FaultModel::Transient;

    // Fast-forward: restore the latest rung at-or-before the first
    // injection (equality included — the fault lands before the tick
    // of its cycle). The rung state is bit-identical to ticking there
    // from the window start, and no fault — transient flip or
    // stuck-at onset — has acted before its injection cycle, so every
    // verdict field below is unaffected; lineage runs stay on the
    // slow path so taint setup sees the whole window. Cycle-0 faults
    // (all legacy stuck-ats) precede every rung and never
    // fast-forward.
    const LadderRung *rung = nullptr;
    if (options.useLadder && !options.lineage && !pending.empty())
        rung = golden.rungAtOrBefore(pending.front().injectCycle);

    soc::System sys = [&]() {
        const prof::ScopedPhase timer(prof::Phase::FastForward);
        return rung ? rung->checkpoint.restore()
                    : golden.checkpoint.restore();
    }();
    Cycle cursor = rung ? rung->cycle : 0;
    verdict.fastForwarded = cursor;
    if (options.computeHvf) {
        sys.cpu.traceRef = &golden.trace;
        sys.cpu.traceRefPos = rung ? rung->traceIndex : 0;
    }

    // Convergence short-circuit precondition: exact golden state at a
    // rung implies an exact golden future. Permanent faults violate
    // that (the stuck bit keeps re-applying), lineage runs must
    // observe the full window, and without a ladder there is nothing
    // to compare against. The commit tap feeds the O(1) prefilter:
    // a stop-check only pays for the full structural comparison when
    // the faulty run's commit count matches the golden rung's.
    const bool stopChecks = options.earlyStop != EarlyStopMode::Off &&
                            !options.lineage && !hasPermanent &&
                            !golden.ladder.empty();
    std::size_t nextRung = 0;
    if (stopChecks) {
        sys.cpu.tapRef = &golden.trace;
        sys.cpu.tapPos = rung ? rung->traceIndex : 0;
        // Only rungs strictly after the restore point are candidates.
        while (nextRung < golden.ladder.size() &&
               golden.ladder[nextRung].cycle <= cursor)
            ++nextRung;
    }
    bool auditDone = false;
    if (options.lineage) {
        *options.lineage = obs::PropagationTrace{};
        sys.cpu.lineageOut = options.lineage;
        sys.cluster.setLineage(options.lineage);
    }
    const Cycle timeoutAt = static_cast<Cycle>(
        static_cast<double>(golden.totalCycles) *
            options.timeoutFactor +
        200'000.0);
    const bool transientMask = !pending.empty() && !hasPermanent;
    std::size_t nextFault = 0;
    bool anyHitInvalid = false;

    // Inject one fault when its cycle comes due. Stuck-at onsets
    // apply their constraint from here on with no liveness check (a
    // stuck bit in a dead entry still pins every later fill). For
    // transients, note the paper's invalid-entry optimization: a flip
    // into an invalid/unused entry is dead on arrival (the next fill
    // overwrites it), so mark it vanished and let the
    // early-termination check cash the verdict in.
    auto placeFault = [&](const FaultSpec &fault) {
        if (fault.model != FaultModel::Transient) {
            injectFault(sys, fault);
            if (options.lineage)
                seedLineage(sys, fault);
            return;
        }
        const bool live = entryLive(sys, fault);
        injectFault(sys, fault);
        if (options.lineage)
            seedLineage(sys, fault);
        if (!live) {
            anyHitInvalid = true;
            if (options.earlyTermination)
                faultStateOf(sys, fault.target).noteGone(fault.entry);
        }
    };

    // Lineage outcome: the architectural-divergence fields mirror the
    // HVF verdict once it is known.
    auto finishLineage = [&]() {
        if (!options.lineage)
            return;
        options.lineage->diverged = verdict.hvfCorruption;
        options.lineage->firstDivergence = verdict.hvfCorruptCycle;
        sys.cpu.lineageOut = nullptr;
        sys.cluster.setLineage(nullptr);
    };

    // Runs on every exit path; snapshots the faulty system's stats
    // tree for the golden-vs-faulty divergence report, and digests
    // the architectural end state for determinism audits.
    auto finishStats = [&]() {
        // Divergence telemetry rides along on every exit path; it is
        // zero whenever the stop-check tap was off or never tripped.
        verdict.divergedAt = sys.cpu.tapDivergedAt;
        if (options.statsOut)
            *options.statsOut = sys.statsSnapshot();
        if (options.archDigestOut)
            *options.archDigestOut = soc::archStateDigest(sys);
    };

    auto finishExit = [&]() {
        verdict.cyclesRun = cursor;
        verdict.hvfCorruption = sys.cpu.hvfCorrupted;
        verdict.hvfCorruptCycle = sys.cpu.hvfCorruptCycle;
        if (sys.exitCode != golden.exitCode ||
            sys.console != golden.console) {
            verdict.outcome = Outcome::SDC;
            verdict.detail = OutcomeDetail::SdcExitCode;
            return;
        }
        if (sys.outputWindow() != golden.output) {
            verdict.outcome = Outcome::SDC;
            verdict.detail = OutcomeDetail::SdcOutput;
            return;
        }
        verdict.outcome = Outcome::Masked;
        verdict.detail = OutcomeDetail::MaskedIdentical;
        // Accelerator-contained corruption: every fault sat in an
        // accelerator component, at least one flipped bit was actually
        // consumed by the engine (unread faults classify as plain
        // masked), and nothing leaked into CPU-visible state — the
        // run's commit trace never diverged and the outputs above are
        // identical. Read faults never early-terminate, so this
        // classification is independent of the early-term setting.
        if (!verdict.hvfCorruption && !mask.faults.empty()) {
            bool allAccel = true;
            bool anyRead = false;
            for (const FaultSpec &f : mask.faults) {
                if (f.target.id != TargetId::AccelMem) {
                    allAccel = false;
                    break;
                }
                anyRead |= faultStateOf(sys, f.target).anyRead();
            }
            if (allAccel && anyRead)
                verdict.detail = OutcomeDetail::MaskedInAccel;
        }
    };

    // The simulate timer covers the tick loop and hands off to the
    // classify timer once the run's fate is known — the scopes stay
    // sequential per thread, so the phase totals partition the run's
    // wall time instead of double-counting the classification tail.
    std::optional<prof::ScopedPhase> simTimer(
        std::in_place, prof::Phase::Simulate);
    auto classify = [&]() {
        simTimer.reset();
        return prof::ScopedPhase(prof::Phase::Classify);
    };

    for (;;) {
        // Inject any transient faults scheduled for this cycle.
        while (nextFault < pending.size() &&
               pending[nextFault].injectCycle <= cursor) {
            placeFault(pending[nextFault]);
            ++nextFault;
        }

        sys.tick();
        ++cursor;
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;

        if (sys.exited) {
            const prof::ScopedPhase timer = classify();
            finishExit();
            finishStats();
            finishLineage();
            return verdict;
        }
        if (sys.cpu.crashed() || sys.cluster.errored()) {
            const prof::ScopedPhase timer = classify();
            if (sys.cluster.errored())
                sys.accelCrashed = true;
            verdict.outcome = Outcome::Crash;
            verdict.detail = crashDetail(sys);
            verdict.cyclesRun = cursor;
            verdict.hvfCorruption = true; // reached the software layer
            verdict.hvfCorruptCycle = sys.cpu.hvfCorrupted
                                          ? sys.cpu.hvfCorruptCycle
                                          : cursor;
            finishStats();
            finishLineage();
            return verdict;
        }
        if (cursor >= timeoutAt) {
            const prof::ScopedPhase timer = classify();
            verdict.outcome = Outcome::Crash;
            verdict.detail = OutcomeDetail::CrashTimeout;
            verdict.cyclesRun = cursor;
            verdict.hvfCorruption = true;
            verdict.hvfCorruptCycle = cursor;
            finishStats();
            finishLineage();
            return verdict;
        }

        // Early termination: every watched bit is dead and unread.
        if (options.earlyTermination && transientMask &&
            nextFault == pending.size() && (cursor & 63) == 0) {
            bool allDead = true;
            for (const FaultSpec &f : pending) {
                auto &state = faultStateOf(sys, f.target);
                if (!state.allNeutralized()) {
                    allDead = false;
                    break;
                }
            }
            if (allDead) {
                const prof::ScopedPhase timer = classify();
                verdict.outcome = Outcome::Masked;
                verdict.detail = anyHitInvalid
                                     ? OutcomeDetail::MaskedInvalidEntry
                                     : OutcomeDetail::MaskedEarly;
                verdict.terminatedEarly = true;
                verdict.cyclesRun = cursor;
                finishStats();
                finishLineage();
                return verdict;
            }
        }

        // Convergence short-circuit: at a rung boundary — after the
        // early-termination check, so a stop at a 64-aligned cycle can
        // never race it — once every fault is injected and every
        // watch's fate is settled, compare the faulty system against
        // the golden rung snapshot. An exact match means the rest of
        // the run IS the golden run, so the verdict the full window
        // would produce is known here.
        if (stopChecks && nextRung < golden.ladder.size() &&
            cursor == golden.ladder[nextRung].cycle) {
            const LadderRung &boundary = golden.ladder[nextRung];
            ++nextRung;
            bool converged = false;
            if (nextFault == pending.size() && !auditDone) {
                bool resolved = true;
                for (const FaultSpec &f : pending) {
                    if (!faultStateOf(sys, f.target).allResolved()) {
                        resolved = false;
                        break;
                    }
                }
                // Prefilter: a faulty run that committed a different
                // number of uops than golden did by this rung cannot
                // be in the golden state.
                if (resolved &&
                    sys.cpu.tapPos == boundary.traceIndex) {
                    simTimer.reset();
                    {
                        const prof::ScopedPhase timer(
                            prof::Phase::StopCheck);
                        converged = soc::stateConverged(
                            sys, boundary.checkpoint.view());
                    }
                    simTimer.emplace(prof::Phase::Simulate);
                }
            }
            if (converged) {
                // Fabricate the verdict of the counterfactual full
                // run. Two cases, mirroring the loop's own ordering:
                // had every watch been neutralized unread, the real
                // run would have early-terminated at the next
                // 64-aligned check after this rung (the checks up to
                // here already declined, and dead watches stay dead)
                // — unless the golden exit lands first. Otherwise it
                // runs to the golden exit with golden outputs:
                // Masked, with the accelerator-containment detail
                // decided by the now-frozen read bits.
                RunVerdict fab = verdict; // carries fastForwarded
                fab.stoppedAt = cursor;
                fab.divergedAt = sys.cpu.tapDivergedAt;
                const Cycle termAt = (cursor | 63) + 1;
                bool neutralized = options.earlyTermination &&
                                   transientMask &&
                                   termAt < golden.totalCycles;
                if (neutralized) {
                    for (const FaultSpec &f : pending) {
                        if (!faultStateOf(sys, f.target)
                                 .allNeutralized()) {
                            neutralized = false;
                            break;
                        }
                    }
                }
                if (neutralized) {
                    fab.outcome = Outcome::Masked;
                    fab.detail =
                        anyHitInvalid
                            ? OutcomeDetail::MaskedInvalidEntry
                            : OutcomeDetail::MaskedEarly;
                    fab.terminatedEarly = true;
                    fab.cyclesRun = termAt;
                    // The real early-termination path never writes
                    // the HVF latches; leave them default.
                } else {
                    fab.outcome = Outcome::Masked;
                    fab.cyclesRun = golden.totalCycles;
                    fab.hvfCorruption = sys.cpu.hvfCorrupted;
                    fab.hvfCorruptCycle = sys.cpu.hvfCorruptCycle;
                    fab.detail = OutcomeDetail::MaskedIdentical;
                    if (!fab.hvfCorruption && !mask.faults.empty()) {
                        bool allAccel = true;
                        bool anyRead = false;
                        for (const FaultSpec &f : mask.faults) {
                            if (f.target.id != TargetId::AccelMem) {
                                allAccel = false;
                                break;
                            }
                            anyRead |=
                                faultStateOf(sys, f.target).anyRead();
                        }
                        if (allAccel && anyRead)
                            fab.detail = OutcomeDetail::MaskedInAccel;
                    }
                }
                if (options.earlyStop == EarlyStopMode::Audit) {
                    // Record what WOULD have happened, then keep
                    // simulating; the battery cross-checks this
                    // prediction against the real verdict.
                    auditDone = true;
                    if (options.auditOut) {
                        options.auditOut->stopped = true;
                        options.auditOut->stoppedAt = cursor;
                        options.auditOut->predicted = fab;
                    }
                } else {
                    const prof::ScopedPhase timer = classify();
                    verdict = fab;
                    finishStats();
                    finishLineage();
                    return verdict;
                }
            }
        }
    }
}

stats::Snapshot
goldenStats(const GoldenRun &golden)
{
    soc::System sys = golden.checkpoint.restore();
    const u64 maxCycles = golden.totalCycles * 2 + 1'000'000;
    for (u64 i = 0; i < maxCycles && !sys.exited; ++i) {
        sys.tick();
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
        if (sys.cpu.crashed() || sys.cluster.errored())
            fatal("goldenStats: fault-free replay crashed (%s)",
                  sys.crashReason().c_str());
    }
    if (!sys.exited)
        fatal("goldenStats: fault-free replay did not exit");
    return sys.statsSnapshot();
}

bool
TargetProfile::prunable(const FaultSpec &fault) const
{
    if (!profiler_ || fault.model != FaultModel::Transient)
        return false;
    return profiler_->fateOf(fault.entry, fault.bit,
                             fault.injectCycle) ==
           AccessProfiler::Fate::Dead;
}

bool
TargetProfile::prunable(const FaultMask &mask) const
{
    if (!profiler_ || mask.empty())
        return false;
    for (const FaultSpec &fault : mask.faults)
        if (!prunable(fault))
            return false;
    return true;
}

TargetProfile
profileTargetAccesses(const GoldenRun &golden, const TargetRef &target)
{
    const prof::ScopedPhase timer(prof::Phase::Prune);
    soc::System sys = golden.checkpoint.restore();
    const TargetInfo info = targetInfo(sys, target);
    auto profiler = std::make_shared<AccessProfiler>(
        info.geometry.entries, nullptr);
    Cycle cursor = 0;
    profiler->setNow(&cursor);
    faultStateOf(sys, target).setProfiler(profiler.get());

    // Same tick/flag-clear sequence as a faulty run, so recorded
    // cycles line up with FaultSpec::injectCycle: an access during the
    // tick at cursor c already sees a fault injected at cycle c.
    const u64 maxCycles = golden.totalCycles * 2 + 1'000'000;
    while (!sys.exited) {
        if (cursor >= maxCycles)
            fatal("profileTargetAccesses: replay did not exit");
        sys.tick();
        ++cursor;
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
        if (sys.cpu.crashed() || sys.cluster.errored())
            fatal("profileTargetAccesses: fault-free replay crashed "
                  "(%s)",
                  sys.crashReason().c_str());
    }
    faultStateOf(sys, target).setProfiler(nullptr);
    profiler->setNow(nullptr);
    return TargetProfile(std::move(profiler));
}

RunVerdict
prunedVerdict()
{
    RunVerdict verdict;
    verdict.outcome = Outcome::Masked;
    verdict.detail = OutcomeDetail::MaskedPruned;
    verdict.terminatedEarly = true;
    verdict.cyclesRun = 0;
    return verdict;
}

double
CampaignResult::population() const
{
    return static_cast<double>(target.geometry.totalBits()) *
           static_cast<double>(std::max<Cycle>(windowCycles, 1));
}

double
CampaignResult::errorMargin() const
{
    if (total() == 0)
        return 1.0;
    return marginOfError(static_cast<double>(total()), population());
}

void
CampaignResult::tally(const RunVerdict &verdict)
{
    switch (verdict.outcome) {
      case Outcome::Masked:
        ++masked;
        if (verdict.detail == OutcomeDetail::MaskedEarly)
            ++maskedEarly;
        if (verdict.detail == OutcomeDetail::MaskedInvalidEntry)
            ++maskedInvalid;
        if (verdict.detail == OutcomeDetail::MaskedPruned)
            ++pruned;
        if (verdict.detail == OutcomeDetail::MaskedInAccel)
            ++maskedInAccel;
        break;
      case Outcome::SDC:
        ++sdc;
        break;
      case Outcome::Crash:
        ++crash;
        if (verdict.detail == OutcomeDetail::CrashTimeout)
            ++timeouts;
        break;
    }
    if (verdict.hvfCorruption)
        ++hvfCorruptions;
}

void
CampaignResult::addCounts(const CampaignResult &other)
{
    masked += other.masked;
    sdc += other.sdc;
    crash += other.crash;
    maskedEarly += other.maskedEarly;
    maskedInvalid += other.maskedInvalid;
    pruned += other.pruned;
    maskedInAccel += other.maskedInAccel;
    timeouts += other.timeouts;
    hvfCorruptions += other.hvfCorruptions;
}

std::vector<Cycle>
resolvePcCycles(const GoldenRun &golden, u64 pcLo, u64 pcHi)
{
    std::vector<Cycle> cycles;
    soc::System sys = golden.checkpoint.restore();
    std::vector<cpu::CommitRecord> trace;
    sys.cpu.traceOut = &trace;
    std::size_t seen = 0;
    Cycle cursor = 0;
    while (cursor < golden.windowCycles) {
        sys.tick();
        ++cursor;
        sys.cpu.checkpointRequest = false;
        sys.cpu.switchCpuRequest = false;
        if (sys.exited || sys.cpu.crashed() || sys.cluster.errored())
            fatal("resolvePcCycles: fault-free replay ended at cycle "
                  "%llu inside the injection window (%s)",
                  (unsigned long long)cursor,
                  sys.crashReason().c_str());
        bool hit = false;
        for (; seen < trace.size(); ++seen)
            hit |= trace[seen].pc >= pcLo && trace[seen].pc <= pcHi;
        // The tick that just ran sees faults injected at cursor - 1,
        // so that cycle is the last chance to corrupt the matching
        // instruction while it is still in flight.
        if (hit)
            cycles.push_back(cursor - 1);
    }
    return cycles;
}

FaultSampler
makeSampler(const GoldenRun &golden, FaultModel base,
            const FaultModelSpec &spec)
{
    FaultSampler sampler;
    sampler.base = base;
    sampler.spec = spec;
    if (spec.kind == ModelKind::Targeted && spec.filter.hasPc()) {
        sampler.pcCycles = resolvePcCycles(golden, spec.filter.pcLo,
                                           spec.filter.pcHi);
        if (sampler.pcCycles.empty())
            fatal("fault model: pc filter 0x%llx:0x%llx matched no "
                  "commit in the injection window",
                  (unsigned long long)spec.filter.pcLo,
                  (unsigned long long)spec.filter.pcHi);
    }
    return sampler;
}

CampaignResult
runCampaign(const soc::SystemConfig &config,
            const isa::Program &program, const TargetRef &target,
            const CampaignOptions &options)
{
    const GoldenRun golden = runGolden(
        config, program, options.goldenMaxCycles, options.ladderRungs);
    return runCampaignOnGolden(golden, target, options);
}

CampaignResult
runCampaignOnGolden(const GoldenRun &golden, const TargetRef &target,
                    const CampaignOptions &options)
{
    CampaignResult result;
    result.target = targetInfo(golden.checkpoint.view(), target);
    result.goldenCycles = golden.totalCycles;
    result.windowCycles = golden.windowCycles;
    if (options.keepVerdicts)
        result.verdicts.resize(options.numFaults);

    InjectionOptions runOpts;
    runOpts.earlyTermination = options.earlyTermination;
    runOpts.computeHvf = options.computeHvf;
    runOpts.timeoutFactor = options.timeoutFactor;
    runOpts.useLadder = options.useLadder;
    runOpts.earlyStop = resolveEarlyStop(options.earlyStop, golden);

    // One profiling replay amortized over every pruned fault; only
    // transient models can prune (stuck-at faults are never dead).
    TargetProfile profile;
    if (options.prune && options.model == FaultModel::Transient)
        profile = profileTargetAccesses(golden, target);

    const FaultSampler sampler =
        makeSampler(golden, options.model, options.modelSpec);

    unsigned threads = options.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, options.numFaults ? options.numFaults : 1);

    // Atomic work queue instead of the old fixed-stride split: each
    // worker claims the next unclaimed fault index, so one stride
    // accumulating the slow (timeout-bound) runs can no longer leave
    // the other workers idle. Results stay deterministic because each
    // index derives its own RNG stream and the counters commute.
    sched::WorkQueue queue(options.numFaults);
    std::mutex mergeMutex;
    auto worker = [&](unsigned) {
        CampaignResult local;
        std::vector<std::pair<u64, RunVerdict>> kept;
        while (const auto slot = queue.next()) {
            const u64 i = *slot;
            Rng rng = Rng::forStream(options.seed, i);
            const FaultMask mask =
                sampler.sample(rng, target, result.target.geometry,
                               golden.windowCycles);
            const RunVerdict verdict =
                profile.valid() && profile.prunable(mask)
                    ? prunedVerdict()
                    : runWithFault(golden, mask, runOpts);
            local.tally(verdict);
            if (options.keepVerdicts)
                kept.emplace_back(i, verdict);
        }
        std::lock_guard<std::mutex> lock(mergeMutex);
        result.addCounts(local);
        for (auto &[idx, verdict] : kept)
            result.verdicts[idx] = verdict;
    };

    sched::runWorkers(threads, worker);
    return result;
}

} // namespace marvel::fi
