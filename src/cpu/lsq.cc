// The load/store queue machinery is header-only (templates + small
// inline methods); this translation unit exists to anchor the library.
#include "cpu/lsq.hh"
