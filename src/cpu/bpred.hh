/**
 * @file
 * Branch prediction: bimodal direction predictor, branch target buffer
 * for indirect branches, and a return address stack.
 */

#ifndef MARVEL_CPU_BPRED_HH
#define MARVEL_CPU_BPRED_HH

#include <vector>

#include "common/faultwatch.hh"
#include "common/types.hh"

namespace marvel::cpu
{

/** Branch predictor parameters. */
struct BPredParams
{
    unsigned bimodalEntries = 4096;
    unsigned btbEntries = 512;
    unsigned rasEntries = 16;
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(const BPredParams &params = BPredParams{});

    /** Predicted direction of a conditional branch at pc. */
    bool predictTaken(Addr pc) const;

    /** Update the direction predictor. */
    void update(Addr pc, bool taken);

    /** Predicted target for an indirect branch (0 = no entry). */
    Addr btbLookup(Addr pc) const;

    /** Record an indirect branch target. */
    void btbUpdate(Addr pc, Addr target);

    /** Push a return address (on calls). */
    void pushRas(Addr returnAddr);

    /** Pop a predicted return address (0 when empty). */
    Addr popRas();

    void reset();

    // --- fault injection (negative-control target) -----------------
    /** Entries = BTB slots; bits = 32 target-address bits. */
    u32 numEntries() const { return btbTarget.size(); }
    u32 bitsPerEntry() const { return 32; }

    /** Flip a BTB target bit: worst case a wrong-path excursion that
     *  the branch unit corrects - never an architectural error. */
    void
    flipBit(u32 entry, u32 bit)
    {
        btbTarget[entry] ^= 1ull << bit;
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

    /**
     * True when future predictions are indistinguishable: bimodal
     * counters, BTB tags/targets, and the live RAS window compared
     * relative to the top of stack. The physical rasTop value itself is
     * NOT compared — push/pop only ever address the stack relative to
     * it, so two stacks rotated against each other but holding the same
     * live window predict identically. Hit/miss counters are stats.
     */
    bool
    convergedWith(const BranchPredictor &other) const
    {
        if (bimodal != other.bimodal || btbTag != other.btbTag ||
            btbTarget != other.btbTarget ||
            rasCount != other.rasCount)
            return false;
        const unsigned n = params_.rasEntries;
        for (unsigned i = 0; i < rasCount; ++i) {
            if (ras[(rasTop + n - i) % n] !=
                other.ras[(other.rasTop + n - i) % n])
                return false;
        }
        return true;
    }

    u64 lookups = 0;
    u64 mispredicts = 0;

  private:
    BPredParams params_;
    std::vector<u8> bimodal;  ///< 2-bit saturating counters
    std::vector<Addr> btbTag;
    std::vector<Addr> btbTarget;
    std::vector<Addr> ras;
    unsigned rasTop = 0;
    unsigned rasCount = 0;
    FaultState faults_;
};

} // namespace marvel::cpu

#endif // MARVEL_CPU_BPRED_HH
