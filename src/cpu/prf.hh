/**
 * @file
 * Physical register file: renamed storage with value + ready bits.
 *
 * A primary fault-injection target (Fig. 4/9/15/18 of the paper): each
 * entry is a 64-bit injectable image; reads/writes feed the
 * early-termination and HVF bookkeeping.
 */

#ifndef MARVEL_CPU_PRF_HH
#define MARVEL_CPU_PRF_HH

#include <vector>

#include "common/faultwatch.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace marvel::cpu
{

/** One physical register file (integer or floating point). */
class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned numRegs = 128)
        : values(numRegs, 0), ready_(numRegs, true)
    {
    }

    unsigned size() const { return values.size(); }

    /** Operand read (register-read stage). */
    u64
    read(unsigned idx)
    {
        reads.inc();
        if (faults_.active())
            faults_.noteRead(idx, 0, 63);
        return values[idx];
    }

    /** Writeback. */
    void
    write(unsigned idx, u64 value)
    {
        writes.inc();
        values[idx] = value;
        if (faults_.active()) {
            faults_.noteWrite(idx, 0, 63);
            applyStuck(idx);
        }
        ready_[idx] = true;
    }

    bool ready(unsigned idx) const { return ready_[idx]; }
    void markNotReady(unsigned idx) { ready_[idx] = false; }
    void markReady(unsigned idx) { ready_[idx] = true; }

    /** Side-effect-free value inspection (architectural state dump). */
    u64 peek(unsigned idx) const { return values[idx]; }

    /** Direct write without fault bookkeeping (reset / state load). */
    void
    poke(unsigned idx, u64 value)
    {
        values[idx] = value;
        ready_[idx] = true;
    }

    // --- fault injection -------------------------------------------------
    u32 numEntries() const { return values.size(); }
    u32 bitsPerEntry() const { return 64; }

    void
    flipBit(u32 entry, u32 bit)
    {
        values[entry] ^= 1ull << bit;
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

    // --- statistics ------------------------------------------------------
    stats::Counter reads;  ///< operand reads (register-read stage)
    stats::Counter writes; ///< writebacks

    void
    applyStuck(u32 entry)
    {
        for (const StuckBit &s : faults_.stuck()) {
            if (s.entry != entry)
                continue;
            if (s.value)
                values[entry] |= 1ull << s.bit;
            else
                values[entry] &= ~(1ull << s.bit);
        }
    }

  private:
    std::vector<u64> values;
    std::vector<bool> ready_;
    FaultState faults_;
};

} // namespace marvel::cpu

#endif // MARVEL_CPU_PRF_HH
