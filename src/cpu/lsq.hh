/**
 * @file
 * Load and store queues.
 *
 * Both are circular, age-ordered queues and fault-injection targets
 * (Figs. 7/8). The injectable bit image of a load entry is its 48-bit
 * effective address; a store entry's image is its 48-bit address plus
 * 64 bits of store data. Flips before the entry is consumed change the
 * accessed location / written value; flips into empty or already-
 * consumed entries are masked, which the early-termination bookkeeping
 * detects.
 */

#ifndef MARVEL_CPU_LSQ_HH
#define MARVEL_CPU_LSQ_HH

#include <vector>

#include "common/faultwatch.hh"
#include "common/types.hh"

namespace marvel::cpu
{

/** One load queue entry. */
struct LqEntry
{
    bool valid = false;
    u64 seq = 0;
    Addr addr = 0;
    u8 size = 0;
    bool addrReady = false;
    bool issued = false;
    bool completed = false;
    bool mmio = false;
    bool tainted = false; ///< obs lineage: address derives from the fault

    bool operator==(const LqEntry &other) const = default;
};

/** One store queue entry. */
struct SqEntry
{
    bool valid = false;
    u64 seq = 0;
    Addr addr = 0;
    u64 data = 0;
    u8 size = 0;
    bool ready = false;   ///< address and data available
    bool retired = false; ///< committed, awaiting drain
    bool mmio = false;
    bool tainted = false; ///< obs lineage: addr/data derive from the fault

    bool operator==(const SqEntry &other) const = default;
};

/**
 * Common circular-queue machinery for the two queues.
 */
template <typename Entry>
class AgeQueue
{
  public:
    explicit AgeQueue(unsigned capacity = 32)
        : entries_(capacity)
    {
    }

    unsigned capacity() const { return entries_.size(); }
    unsigned size() const { return count_; }
    bool full() const { return count_ == entries_.size(); }
    bool empty() const { return count_ == 0; }

    /** Allocate the youngest slot; returns its index. */
    int
    allocate(u64 seq)
    {
        if (full())
            return -1;
        const unsigned idx = (head_ + count_) % entries_.size();
        entries_[idx] = Entry{};
        entries_[idx].valid = true;
        entries_[idx].seq = seq;
        ++count_;
        return static_cast<int>(idx);
    }

    /** Free the oldest slot (it must be index head()). */
    void
    popOldest()
    {
        entries_[head_].valid = false;
        head_ = (head_ + 1) % entries_.size();
        --count_;
    }

    /** Squash all entries younger than seq. Returns indices removed. */
    void
    squashYoungerThan(u64 seq, FaultState &faults)
    {
        while (count_ > 0) {
            const unsigned idx = (head_ + count_ - 1) % entries_.size();
            if (entries_[idx].seq <= seq)
                break;
            faults.noteGone(idx);
            entries_[idx].valid = false;
            --count_;
        }
    }

    unsigned head() const { return head_; }

    Entry &operator[](unsigned idx) { return entries_[idx]; }
    const Entry &operator[](unsigned idx) const { return entries_[idx]; }

    /** Iterate oldest-to-youngest: idx = indexAt(i), i in [0, size). */
    unsigned
    indexAt(unsigned i) const
    {
        return (head_ + i) % entries_.size();
    }

    void
    reset()
    {
        for (Entry &e : entries_)
            e = Entry{};
        head_ = 0;
        count_ = 0;
    }

    /**
     * True when the two queues hold identical live state: same physical
     * head and occupancy (RobEntry records physical lq/sq slot indices,
     * so slot positions are architectural here), and every valid slot
     * field-identical. Invalid slots are skipped: allocate() resets a
     * slot to Entry{} before any field is read again, so stale residue
     * in a free slot can never influence future behaviour.
     */
    bool
    convergedWith(const AgeQueue &other) const
    {
        if (entries_.size() != other.entries_.size() ||
            head_ != other.head_ || count_ != other.count_)
            return false;
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].valid != other.entries_[i].valid)
                return false;
            if (entries_[i].valid &&
                !(entries_[i] == other.entries_[i]))
                return false;
        }
        return true;
    }

  private:
    std::vector<Entry> entries_;
    unsigned head_ = 0;
    unsigned count_ = 0;
};

/** Load queue with its injectable address image. */
class LoadQueue : public AgeQueue<LqEntry>
{
  public:
    using AgeQueue::AgeQueue;

    u32 numEntries() const { return capacity(); }
    u32 bitsPerEntry() const { return 48; }

    void
    flipBit(u32 entry, u32 bit)
    {
        (*this)[entry].addr ^= 1ull << bit;
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

  private:
    FaultState faults_;
};

/** Store queue with its injectable address+data image. */
class StoreQueue : public AgeQueue<SqEntry>
{
  public:
    using AgeQueue::AgeQueue;

    u32 numEntries() const { return capacity(); }
    u32 bitsPerEntry() const { return 112; }

    void
    flipBit(u32 entry, u32 bit)
    {
        if (bit < 48)
            (*this)[entry].addr ^= 1ull << bit;
        else
            (*this)[entry].data ^= 1ull << (bit - 48);
    }

    FaultState &faults() { return faults_; }
    const FaultState &faults() const { return faults_; }

  private:
    FaultState faults_;
};

} // namespace marvel::cpu

#endif // MARVEL_CPU_LSQ_HH
