#include "cpu/ooo_core.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/bits.hh"
#include "common/log.hh"
#include "common/memmap.hh"
#include "isa/encoding.hh"

namespace marvel::cpu
{

using isa::BrKind;
using isa::Cond;
using isa::ExecOp;
using isa::FuClass;
using isa::MagicOp;
using isa::MicroOp;
using isa::RegClass;

const char *
crashKindName(CrashKind kind)
{
    switch (kind) {
      case CrashKind::None: return "none";
      case CrashKind::IllegalInstruction: return "illegal-instruction";
      case CrashKind::BusError: return "bus-error";
      case CrashKind::Misaligned: return "misaligned-access";
      case CrashKind::DivideByZero: return "divide-by-zero";
      case CrashKind::FetchError: return "fetch-error";
    }
    return "?";
}

namespace
{

double
asF64(u64 w)
{
    double d;
    std::memcpy(&d, &w, sizeof(d));
    return d;
}

u64
fromF64(double d)
{
    u64 w;
    std::memcpy(&w, &d, sizeof(w));
    return w;
}

bool
isMmio(Addr addr)
{
    return addr >= kMmioBase && addr < kMmioEnd;
}

} // namespace

OooCore::OooCore(const CpuParams &params)
    : intPrf(params.numIntPregs), fpPrf(params.numFpPregs),
      lq(params.lqSize), sq(params.sqSize), bpred(params.bpred),
      params_(params), spec_(&isa::isaSpec(params.isa))
{
    if (params_.numIntPregs < spec_->numIntRenameRegs() + 8)
        fatal("cpu: too few integer physical registers");
    if (params_.numFpPregs < spec_->numFpRenameRegs() + 8)
        fatal("cpu: too few FP physical registers");
    drainInterval_ = params_.storeDrainOverride >= 0
                         ? static_cast<unsigned>(params_.storeDrainOverride)
                         : spec_->storeDrainInterval;

    // Width histograms: one unit-wide bucket per possible count.
    stats.fetchWidthUsed.init(0, params_.fetchWidth + 1,
                              params_.fetchWidth + 1);
    stats.issueWidthUsed.init(0, params_.issueWidth + 1,
                              params_.issueWidth + 1);
    stats.commitWidthUsed.init(0, params_.commitWidth + 1,
                               params_.commitWidth + 1);
    // Occupancy histograms: 16 buckets across the structure size.
    auto occInit = [](stats::Histogram &h, unsigned cap) {
        h.init(0, cap + 1, std::min(cap + 1, 16u));
    };
    occInit(stats.robOccupancy, params_.robSize);
    occInit(stats.iqOccupancy, params_.iqSize);
    occInit(stats.lqOccupancy, params_.lqSize);
    occInit(stats.sqOccupancy, params_.sqSize);
    occInit(stats.intRegsLive, params_.numIntPregs);
    occInit(stats.fpRegsLive, params_.numFpPregs);

    reset(0);
}

void
OooCore::statsSampleOccupancy()
{
    stats.robOccupancy.sample(static_cast<double>(rob.size()));
    stats.iqOccupancy.sample(static_cast<double>(iq.size()));
    stats.lqOccupancy.sample(static_cast<double>(lq.size()));
    stats.sqOccupancy.sample(static_cast<double>(sq.size()));
    stats.intRegsLive.sample(
        static_cast<double>(params_.numIntPregs - intFree.size()));
    stats.fpRegsLive.sample(
        static_cast<double>(params_.numFpPregs - fpFree.size()));
}

void
OooCore::regStats(stats::Group &g)
{
    g.addFormula(
        "cycles", [this]() { return static_cast<double>(cycles); },
        "clock cycles simulated");
    g.addFormula(
        "committed_uops",
        [this]() { return static_cast<double>(committedUops); },
        "micro-ops committed");
    g.addFormula(
        "committed_insts",
        [this]() { return static_cast<double>(committedInsts); },
        "instructions committed");
    g.addFormula(
        "squashes", [this]() { return static_cast<double>(squashes); },
        "pipeline squashes (mispredicts + replays)");
    g.addFormula(
        "ipc",
        [this]() {
            return cycles ? static_cast<double>(committedInsts) /
                                static_cast<double>(cycles)
                          : 0.0;
        },
        "committed instructions per cycle");

    stats::Group &fetch = g.subgroup("fetch");
    fetch.addCounter("uops", &stats.fetchedUops,
                     "uops pushed into the fetch queue");
    fetch.addHistogram("width_used", &stats.fetchWidthUsed,
                       "uops fetched per cycle");

    stats::Group &issue = g.subgroup("issue");
    issue.addCounter("uops", &stats.issuedUops,
                     "uops issued from the IQ");
    issue.addCounter("loads", &stats.loadIssues,
                     "loads that accessed memory or forwarded");
    issue.addCounter("store_drains", &stats.storeDrains,
                     "retired stores drained to memory");
    issue.addHistogram("width_used", &stats.issueWidthUsed,
                       "uops issued per cycle");

    stats::Group &commit = g.subgroup("commit");
    commit.addHistogram("width_used", &stats.commitWidthUsed,
                        "uops committed per cycle");

    g.subgroup("rob").addHistogram("occupancy", &stats.robOccupancy,
                                   "ROB entries in use (sampled)");
    g.subgroup("iq").addHistogram("occupancy", &stats.iqOccupancy,
                                  "IQ entries in use (sampled)");
    g.subgroup("lq").addHistogram("occupancy", &stats.lqOccupancy,
                                  "LQ entries in use (sampled)");
    g.subgroup("sq").addHistogram("occupancy", &stats.sqOccupancy,
                                  "SQ entries in use (sampled)");

    stats::Group &iprf = g.subgroup("int_prf");
    iprf.addCounter("reads", &intPrf.reads, "operand reads");
    iprf.addCounter("writes", &intPrf.writes, "writebacks");
    iprf.addHistogram("live", &stats.intRegsLive,
                      "allocated physical registers (sampled)");
    stats::Group &fprf = g.subgroup("fp_prf");
    fprf.addCounter("reads", &fpPrf.reads, "operand reads");
    fprf.addCounter("writes", &fpPrf.writes, "writebacks");
    fprf.addHistogram("live", &stats.fpRegsLive,
                      "allocated physical registers (sampled)");

    stats::Group &bp = g.subgroup("bpred");
    bp.addFormula(
        "lookups",
        [this]() { return static_cast<double>(bpred.lookups); },
        "conditional branches resolved");
    bp.addFormula(
        "mispredicts",
        [this]() { return static_cast<double>(bpred.mispredicts); },
        "mispredicted branches");
    bp.addFormula(
        "mispredict_rate",
        [this]() {
            return bpred.lookups
                       ? static_cast<double>(bpred.mispredicts) /
                             static_cast<double>(bpred.lookups)
                       : 0.0;
        },
        "mispredicts / lookups");
}

void
OooCore::reset(Addr pc)
{
    fetchPc = pc;
    fetchStallUntil = 0;
    serializeStall = false;
    fetchQueue.clear();
    rob.clear();
    iq.clear();
    inflight.clear();
    nextSeq = 1;
    crashKind = CrashKind::None;
    crashPc = 0;
    checkpointRequest = false;
    switchCpuRequest = false;
    cycles = 0;
    committedUops = 0;
    committedInsts = 0;
    squashes = 0;
    stats.reset();
    intPrf.reads.reset();
    intPrf.writes.reset();
    fpPrf.reads.reset();
    fpPrf.writes.reset();
    hvfCorrupted = false;
    traceRefPos = 0;
    intDivBusyUntil = 0;
    fpDivBusyUntil = 0;
    nextDrainAllowed = 0;

    const unsigned numIntArch = spec_->numIntRenameRegs();
    const unsigned numFpArch = spec_->numFpRenameRegs();
    intMap.assign(numIntArch, 0);
    fpMap.assign(numFpArch, 0);
    intFree.clear();
    fpFree.clear();
    for (unsigned i = 0; i < numIntArch; ++i)
        intMap[i] = static_cast<i16>(i);
    for (unsigned i = numIntArch; i < params_.numIntPregs; ++i)
        intFree.push_back(static_cast<i16>(i));
    for (unsigned i = 0; i < numFpArch; ++i)
        fpMap[i] = static_cast<i16>(i);
    for (unsigned i = numFpArch; i < params_.numFpPregs; ++i)
        fpFree.push_back(static_cast<i16>(i));
    for (unsigned i = 0; i < params_.numIntPregs; ++i)
        intPrf.poke(i, 0);
    for (unsigned i = 0; i < params_.numFpPregs; ++i)
        fpPrf.poke(i, 0);
    lq.reset();
    sq.reset();
    bpred.reset();
    intTaint_.assign(params_.numIntPregs, 0);
    fpTaint_.assign(params_.numFpPregs, 0);
    memTaint_.clear();
}

// =====================================================================
// Fault-propagation lineage (taint tracking)
// =====================================================================

void
OooCore::lineageTaintIntReg(unsigned phys)
{
    intTaint_.resize(params_.numIntPregs, 0);
    intTaint_[phys] = 1;
}

void
OooCore::lineageTaintFpReg(unsigned phys)
{
    fpTaint_.resize(params_.numFpPregs, 0);
    fpTaint_[phys] = 1;
}

void
OooCore::lineageTaintLoad(unsigned lqIdx)
{
    lq[lqIdx].tainted = true;
}

void
OooCore::lineageTaintStore(unsigned sqIdx)
{
    sq[sqIdx].tainted = true;
}

void
OooCore::lineageTaintMem(Addr lo, Addr hi)
{
    memTaint_.emplace_back(lo, hi);
}

bool
OooCore::lineageSrcTainted(const RobEntry &entry) const
{
    const isa::RegRef refs[3] = {entry.uop.srcA, entry.uop.srcB,
                                 entry.uop.srcC};
    for (unsigned s = 0; s < 3; ++s) {
        if (refs[s].cls == RegClass::None)
            continue;
        const i16 phys = entry.srcPhys[s];
        if (phys < 0)
            continue; // hardwired zero
        if (refs[s].cls == RegClass::Fp ? fpTaint_[phys]
                                        : intTaint_[phys])
            return true;
    }
    return false;
}

/**
 * Source-operand taint check at an execution site: marks the entry and
 * the lineage counters when the uop consumes fault-derived data.
 * Returns the taint of the consumed operands.
 */
bool
OooCore::lineageUopConsumes(RobEntry &entry)
{
    if (!lineageSrcTainted(entry))
        return false;
    lineageNoteConsume();
    if (!entry.tainted) {
        entry.tainted = true;
        ++lineageOut->taintedUops;
    }
    return true;
}

void
OooCore::lineageNoteConsume()
{
    if (!lineageOut->faultRead) {
        lineageOut->faultRead = true;
        lineageOut->firstReadCycle = cycles;
    }
}

void
OooCore::lineageSetDstTaint(const RobEntry &entry, bool tainted)
{
    if (entry.dstPhys < 0)
        return;
    if (entry.uop.dst.cls == RegClass::Fp)
        fpTaint_[entry.dstPhys] = tainted;
    else
        intTaint_[entry.dstPhys] = tainted;
}

bool
OooCore::lineageMemTainted(Addr lo, Addr hi) const
{
    for (const auto &[rLo, rHi] : memTaint_)
        if (rLo < hi && lo < rHi)
            return true;
    return false;
}

u64
OooCore::archIntReg(unsigned idx) const
{
    return intPrf.peek(intMap[idx]);
}

u64
OooCore::archRegDigest() const
{
    u64 hash = kFnvOffset;
    for (unsigned i = 0; i < spec_->numIntArchRegs; ++i)
        hash = fnv1aWord(intPrf.peek(intMap[i]), hash);
    for (unsigned i = 0; i < spec_->numFpArchRegs; ++i)
        hash = fnv1aWord(fpPrf.peek(fpMap[i]), hash);
    return hash;
}

namespace
{

/**
 * PRF comparison skipping free-listed registers: in-order commit frees
 * a physical register only after its last consumer read it (and squash
 * frees regs only squashed uops referenced), so a free register's value
 * and ready bit are dead by construction — comparing them would cause
 * spurious missed convergences, never a wrong one.
 */
bool
prfConverged(const PhysRegFile &a, const PhysRegFile &b,
             const std::vector<i16> &freeList)
{
    if (a.size() != b.size())
        return false;
    std::vector<bool> dead(a.size(), false);
    for (const i16 r : freeList)
        dead[static_cast<unsigned>(r)] = true;
    for (unsigned i = 0; i < a.size(); ++i) {
        if (dead[i])
            continue;
        if (a.peek(i) != b.peek(i) || a.ready(i) != b.ready(i))
            return false;
    }
    return true;
}

} // namespace

bool
OooCore::convergedWith(const OooCore &other) const
{
    // Cheap scalar state first.
    if (cycles != other.cycles ||
        committedUops != other.committedUops ||
        committedInsts != other.committedInsts ||
        nextSeq != other.nextSeq || fetchPc != other.fetchPc ||
        fetchStallUntil != other.fetchStallUntil ||
        serializeStall != other.serializeStall ||
        intDivBusyUntil != other.intDivBusyUntil ||
        fpDivBusyUntil != other.fpDivBusyUntil ||
        nextDrainAllowed != other.nextDrainAllowed ||
        crashKind != other.crashKind || crashPc != other.crashPc ||
        checkpointRequest != other.checkpointRequest ||
        switchCpuRequest != other.switchCpuRequest)
        return false;
    // Rename state: maps and free lists as exact sequences. Free-list
    // ORDER is architectural — allocation pops from a fixed end, so
    // equal sets in different orders still rename differently later.
    if (intMap != other.intMap || fpMap != other.fpMap ||
        intFree != other.intFree || fpFree != other.fpFree)
        return false;
    if (fetchQueue != other.fetchQueue || rob != other.rob ||
        iq != other.iq || inflight != other.inflight)
        return false;
    if (!prfConverged(intPrf, other.intPrf, intFree) ||
        !prfConverged(fpPrf, other.fpPrf, fpFree))
        return false;
    if (!lq.convergedWith(other.lq) || !sq.convergedWith(other.sq))
        return false;
    return bpred.convergedWith(other.bpred);
}

std::string
OooCore::debugState() const
{
    std::string head = "-";
    if (!rob.empty()) {
        const RobEntry &h = rob.front();
        auto rdy = [&](unsigned k) -> int {
            const isa::RegRef refs[3] = {h.uop.srcA, h.uop.srcB,
                                         h.uop.srcC};
            if (refs[k].cls == RegClass::None)
                return -1;
            if (h.srcPhys[k] == -2)
                return 1;
            return refs[k].cls == RegClass::Fp
                       ? fpPrf.ready(h.srcPhys[k])
                       : intPrf.ready(h.srcPhys[k]);
        };
        head = strfmt("pc=%llx op=%d done=%d iss=%d ld=%d st=%d br=%d "
                      "src=[%d@%d %d@%d %d@%d] seq=%llu",
                      (unsigned long long)h.pc, (int)h.uop.op,
                      (int)h.completed, (int)h.issued,
                      (int)h.uop.isLoad,
                      (int)h.uop.isStore, (int)h.uop.isBranch(),
                      rdy(0), (int)h.srcPhys[0], rdy(1),
                      (int)h.srcPhys[1], rdy(2), (int)h.srcPhys[2],
                      (unsigned long long)h.seq);
    }
    std::string iqs;
    for (u64 q : iq)
        iqs += strfmt("%llu,", (unsigned long long)q);
    head += " iq{" + iqs + "}";
    return strfmt(
        "cyc=%llu insts=%llu sq=%llu fetchPc=%llx fq=%zu rob=%zu "
        "iq=%zu lq=%u sqz=%u infl=%zu head[%s]",
        (unsigned long long)cycles, (unsigned long long)committedUops,
        (unsigned long long)squashes, (unsigned long long)fetchPc,
        fetchQueue.size(), rob.size(), iq.size(), lq.size(),
        sq.size(), inflight.size(), head.c_str());
}

bool
OooCore::robFlipBit(u32 entry, u32 bit)
{
    if (entry >= rob.size())
        return false;
    RobEntry &re = rob[entry];
    auto flipPtr = [&](i16 &field, unsigned fieldBit,
                       unsigned limit) {
        if (field < 0)
            return; // unused pointer: flip masked
        field = static_cast<i16>(
            (static_cast<u32>(field) ^ (1u << fieldBit)) %
            limit);
    };
    if (bit < 21) {
        flipPtr(re.srcPhys[bit / 7], bit % 7, params_.numIntPregs);
    } else if (bit < 28) {
        flipPtr(re.dstPhys, bit - 21, params_.numIntPregs);
    } else if (bit < 35) {
        flipPtr(re.oldPhys, bit - 28, params_.numIntPregs);
    } else {
        // pc bits 1..13: corrupt the recorded instruction address.
        re.pc ^= 1ull << (bit - 35 + 1);
    }
    return true;
}

void
OooCore::renameFlipBit(u32 entry, u32 bit)
{
    intMap[entry] = static_cast<i16>(
        (static_cast<u32>(intMap[entry]) ^ (1u << bit)) %
        params_.numIntPregs);
}

RobEntry *
OooCore::findRob(u64 seq)
{
    if (rob.empty())
        return nullptr;
    const u64 headSeq = rob.front().seq;
    if (seq < headSeq || seq >= headSeq + rob.size())
        return nullptr;
    RobEntry &entry = rob[seq - headSeq];
    return entry.seq == seq ? &entry : nullptr;
}

bool
OooCore::operandsReady(const RobEntry &entry) const
{
    const RegClass clss[3] = {entry.uop.srcA.cls, entry.uop.srcB.cls,
                              entry.uop.srcC.cls};
    for (unsigned s = 0; s < 3; ++s) {
        if (clss[s] == RegClass::None)
            continue;
        const i16 phys = entry.srcPhys[s];
        if (phys == -2)
            continue; // hardwired zero
        if (clss[s] == RegClass::Fp) {
            if (!fpPrf.ready(phys))
                return false;
        } else if (!intPrf.ready(phys)) {
            return false;
        }
    }
    return true;
}

u64
OooCore::readSrc(const RobEntry &entry, unsigned which)
{
    const isa::RegRef refs[3] = {entry.uop.srcA, entry.uop.srcB,
                                 entry.uop.srcC};
    const isa::RegRef &ref = refs[which];
    if (ref.cls == RegClass::None)
        return 0;
    const i16 phys = entry.srcPhys[which];
    if (phys == -2)
        return 0;
    return ref.cls == RegClass::Fp ? fpPrf.read(phys)
                                   : intPrf.read(phys);
}

void
OooCore::writeResult(const RobEntry &entry, u64 value)
{
    if (entry.dstPhys < 0)
        return;
    if (entry.uop.dst.cls == RegClass::Fp)
        fpPrf.write(entry.dstPhys, value);
    else
        intPrf.write(entry.dstPhys, value);
}

// =====================================================================
// Fetch
// =====================================================================

void
OooCore::doFetch(mem::Hierarchy &memory)
{
    if (cycles < fetchStallUntil || serializeStall)
        return;
    unsigned budget = params_.fetchWidth;
    while (budget > 0) {
        if (fetchQueue.size() + 3 > 4 * params_.fetchWidth)
            return;
        const Addr pc = fetchPc;

        if (pc + isa::kMaxInstLength > kMemSize || isMmio(pc)) {
            // Fetch wandered outside DRAM.
            FetchedUop fu;
            fu.uop.op = ExecOp::Illegal;
            fu.pc = pc;
            fu.len = 4;
            fu.lastUop = true;
            fu.fault = CrashKind::FetchError;
            fu.predNextPc = pc;
            fetchQueue.push_back(fu);
            return;
        }

        u8 buf[isa::kMaxInstLength];
        const mem::MemResult fr =
            memory.fetch(pc, buf, isa::kMaxInstLength);
        if (fr.fault) {
            FetchedUop fu;
            fu.uop.op = ExecOp::Illegal;
            fu.pc = pc;
            fu.len = 4;
            fu.lastUop = true;
            fu.fault = CrashKind::FetchError;
            fu.predNextPc = pc;
            fetchQueue.push_back(fu);
            return;
        }
        const bool missed =
            fr.latency > memory.params().l1i.hitLatency;

        const isa::DecodedInst di = isa::decodeAndExpand(
            *spec_, buf, isa::kMaxInstLength, pc);
        stats.fetchedUops.inc(di.numUops);
        MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Fetch,
                        pc, di.numUops);

        Addr nextPc = pc + di.length;
        Addr predNextPc = nextPc;
        const MicroOp &last = di.uops[di.numUops - 1];
        if (last.isBranch()) {
            bool taken = false;
            Addr target = nextPc;
            switch (last.brKind) {
              case BrKind::Uncond:
                taken = true;
                target = pc + last.imm;
                break;
              case BrKind::CallDir:
                taken = true;
                target = pc + last.imm;
                bpred.pushRas(pc + di.length);
                break;
              case BrKind::CondReg:
              case BrKind::CondFlag:
                taken = bpred.predictTaken(pc);
                target = pc + last.imm;
                break;
              case BrKind::RetInd: {
                const Addr ras = bpred.popRas();
                taken = true;
                target = ras ? ras : nextPc;
                break;
              }
              case BrKind::Indirect: {
                const Addr btb = bpred.btbLookup(pc);
                taken = btb != 0;
                target = btb ? btb : nextPc;
                break;
              }
              default:
                break;
            }
            if (taken)
                predNextPc = target;
        }

        for (unsigned u = 0; u < di.numUops; ++u) {
            FetchedUop fu;
            fu.uop = di.uops[u];
            fu.pc = pc;
            fu.len = di.length;
            fu.lastUop = (u + 1 == di.numUops);
            fu.fault = di.illegal ? CrashKind::IllegalInstruction
                                  : CrashKind::None;
            fu.predNextPc = predNextPc;
            fetchQueue.push_back(fu);
        }
        budget = budget > di.numUops ? budget - di.numUops : 0;
        fetchPc = predNextPc;

        // Magic pseudo-ops are serializing: nothing younger may issue
        // (a WaitIrq must not let later loads read stale device data).
        if (di.uops[di.numUops - 1].op == ExecOp::Magic) {
            serializeStall = true;
            return;
        }

        if (missed) {
            fetchStallUntil = cycles + fr.latency;
            return;
        }
        if (predNextPc != nextPc)
            return; // taken branch ends the fetch group
        if (di.illegal)
            return;
    }
}

// =====================================================================
// Dispatch (rename + allocate)
// =====================================================================

void
OooCore::doDispatch()
{
    unsigned budget = params_.dispatchWidth;
    while (budget-- > 0 && !fetchQueue.empty()) {
        if (rob.size() >= params_.robSize)
            return;
        const FetchedUop &fu = fetchQueue.front();
        const MicroOp &uop = fu.uop;
        const bool needsIq = fu.fault == CrashKind::None &&
                             uop.op != ExecOp::Nop &&
                             uop.op != ExecOp::Magic &&
                             uop.op != ExecOp::Illegal;
        if (needsIq && iq.size() >= params_.iqSize)
            return;
        if (uop.isLoad && lq.full())
            return;
        if (uop.isStore && sq.full())
            return;
        if (uop.dst.valid()) {
            if (uop.dst.cls == RegClass::Fp && fpFree.empty())
                return;
            if (uop.dst.cls == RegClass::Int && intFree.empty())
                return;
        }

        RobEntry entry;
        entry.uop = uop;
        entry.pc = fu.pc;
        entry.len = fu.len;
        entry.lastUop = fu.lastUop;
        entry.seq = nextSeq++;
        entry.predNextPc = fu.predNextPc;
        entry.fault = fu.fault;

        // Rename sources.
        const isa::RegRef srcs[3] = {uop.srcA, uop.srcB, uop.srcC};
        for (unsigned s = 0; s < 3; ++s) {
            if (!srcs[s].valid())
                continue;
            if (srcs[s].cls == RegClass::Int && spec_->hasZeroReg &&
                srcs[s].idx == 0) {
                entry.srcPhys[s] = -2;
            } else if (srcs[s].cls == RegClass::Fp) {
                entry.srcPhys[s] = fpMap[srcs[s].idx];
            } else {
                entry.srcPhys[s] = intMap[srcs[s].idx];
            }
        }
        // Rename destination.
        if (uop.dst.valid()) {
            if (uop.dst.cls == RegClass::Fp) {
                entry.oldPhys = fpMap[uop.dst.idx];
                entry.dstPhys = fpFree.back();
                fpFree.pop_back();
                fpMap[uop.dst.idx] = entry.dstPhys;
                fpPrf.markNotReady(entry.dstPhys);
            } else {
                entry.oldPhys = intMap[uop.dst.idx];
                entry.dstPhys = intFree.back();
                intFree.pop_back();
                intMap[uop.dst.idx] = entry.dstPhys;
                intPrf.markNotReady(entry.dstPhys);
            }
        }

        if (uop.isLoad) {
            entry.lqIdx = lq.allocate(entry.seq);
            lq[entry.lqIdx].size = uop.memSize;
        }
        if (uop.isStore)
            entry.sqIdx = sq.allocate(entry.seq);

        if (!needsIq)
            entry.completed = true;
        else
            iq.push_back(entry.seq);

        MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Rename,
                        entry.pc, entry.seq);
        rob.push_back(entry);
        fetchQueue.pop_front();
    }
}

// =====================================================================
// Execute
// =====================================================================

void
OooCore::resolveBranch(RobEntry &entry)
{
    if (getenv("MARVEL_TRACE_SQUASH"))
        std::fprintf(stderr,
                     "BR cyc=%llu pc=%llx kind=%d pred=%llx\n",
                     (unsigned long long)cycles,
                     (unsigned long long)entry.pc,
                     (int)entry.uop.brKind,
                     (unsigned long long)entry.predNextPc);
    const MicroOp &uop = entry.uop;
    bool taken = false;
    Addr target = entry.pc + entry.len;
    u64 linkValue = 0;
    bool writesLink = entry.dstPhys >= 0;

    switch (uop.brKind) {
      case BrKind::Uncond:
        taken = true;
        target = entry.pc + uop.imm;
        break;
      case BrKind::CallDir: {
        taken = true;
        target = entry.pc + uop.imm;
        if (spec_->linkViaStack)
            linkValue = readSrc(entry, 1) - 8; // sp -= 8
        else
            linkValue = entry.pc + entry.len;
        break;
      }
      case BrKind::CondReg: {
        const u64 a = readSrc(entry, 0);
        const u64 b = readSrc(entry, 1);
        taken = isa::evalCond(uop.cond, a, b);
        target = entry.pc + uop.imm;
        break;
      }
      case BrKind::CondFlag: {
        const u64 flags = readSrc(entry, 0);
        taken = isa::testFlags(flags, uop.cond);
        target = entry.pc + uop.imm;
        break;
      }
      case BrKind::Indirect:
        taken = true;
        target = readSrc(entry, 0);
        break;
      case BrKind::RetInd:
        taken = true;
        target = readSrc(entry, 0);
        if (spec_->linkViaStack)
            linkValue = readSrc(entry, 1) + uop.imm; // sp += 8
        break;
      default:
        break;
    }

    entry.brTaken = taken;
    entry.brTarget = target;
    entry.result = target;
    const bool tainted = lineageOut && lineageUopConsumes(entry);
    if (writesLink) {
        writeResult(entry, linkValue);
        if (lineageOut)
            lineageSetDstTaint(entry, tainted);
    }
    entry.completed = true;

    const Addr actualNext = taken ? target : entry.pc + entry.len;
    if (actualNext != entry.predNextPc) {
        ++bpred.mispredicts;
        squashAfter(entry.seq, actualNext);
    }
}

void
OooCore::executeUop(RobEntry &entry, mem::Hierarchy &memory,
                    MmioBus &bus)
{
    (void)memory;
    (void)bus;
    const MicroOp &uop = entry.uop;
    const u64 a = readSrc(entry, 0);
    const u64 b = uop.useImm ? static_cast<u64>(uop.imm)
                             : readSrc(entry, 1);
    u64 value = 0;
    switch (uop.op) {
      case ExecOp::Add: value = a + b; break;
      case ExecOp::Sub: value = a - b; break;
      case ExecOp::Mul: value = a * b; break;
      case ExecOp::Div:
        if (b == 0) {
            if (spec_->kind == isa::IsaKind::X86) {
                entry.fault = CrashKind::DivideByZero;
                entry.completed = true;
                return;
            }
            value = ~0ull;
        } else if (static_cast<i64>(a) == INT64_MIN &&
                   static_cast<i64>(b) == -1) {
            value = a;
        } else {
            value = static_cast<u64>(static_cast<i64>(a) /
                                     static_cast<i64>(b));
        }
        break;
      case ExecOp::DivU:
        if (b == 0) {
            if (spec_->kind == isa::IsaKind::X86) {
                entry.fault = CrashKind::DivideByZero;
                entry.completed = true;
                return;
            }
            value = ~0ull;
        } else {
            value = a / b;
        }
        break;
      case ExecOp::Rem:
        if (b == 0) {
            if (spec_->kind == isa::IsaKind::X86) {
                entry.fault = CrashKind::DivideByZero;
                entry.completed = true;
                return;
            }
            value = a;
        } else if (static_cast<i64>(a) == INT64_MIN &&
                   static_cast<i64>(b) == -1) {
            value = 0;
        } else {
            value = static_cast<u64>(static_cast<i64>(a) %
                                     static_cast<i64>(b));
        }
        break;
      case ExecOp::RemU:
        if (b == 0) {
            if (spec_->kind == isa::IsaKind::X86) {
                entry.fault = CrashKind::DivideByZero;
                entry.completed = true;
                return;
            }
            value = a;
        } else {
            value = a % b;
        }
        break;
      case ExecOp::And: value = a & b; break;
      case ExecOp::Or: value = a | b; break;
      case ExecOp::Xor: value = a ^ b; break;
      case ExecOp::Shl: value = a << (b & 63); break;
      case ExecOp::Shr: value = a >> (b & 63); break;
      case ExecOp::Sra:
        value = static_cast<u64>(static_cast<i64>(a) >> (b & 63));
        break;
      case ExecOp::SetCmp:
        value = isa::evalCond(uop.cond, a, b);
        break;
      case ExecOp::CmpFlags:
        value = isa::packFlags(a, b);
        break;
      case ExecOp::CmpFlagsF:
        value = isa::packFlagsF(asF64(a), asF64(b));
        break;
      case ExecOp::SetFlagsCC:
        value = isa::testFlags(a, uop.cond);
        break;
      case ExecOp::SelFlags:
        value = isa::testFlags(a, uop.cond) ? b : readSrc(entry, 2);
        break;
      case ExecOp::SetCmpF: {
        const double fa = asF64(a);
        const double fb = asF64(b);
        if (uop.cond == Cond::Eq)
            value = fa == fb;
        else if (uop.cond == Cond::Lt)
            value = fa < fb;
        else
            value = fa <= fb;
        break;
      }
      case ExecOp::FAdd: value = fromF64(asF64(a) + asF64(b)); break;
      case ExecOp::FSub: value = fromF64(asF64(a) - asF64(b)); break;
      case ExecOp::FMul: value = fromF64(asF64(a) * asF64(b)); break;
      case ExecOp::FDiv: value = fromF64(asF64(a) / asF64(b)); break;
      case ExecOp::FSqrt: value = fromF64(std::sqrt(asF64(a))); break;
      case ExecOp::ItoF:
        value = fromF64(static_cast<double>(static_cast<i64>(a)));
        break;
      case ExecOp::FtoI:
        value = static_cast<u64>(static_cast<i64>(asF64(a)));
        break;
      case ExecOp::MovA: value = a; break;
      case ExecOp::MovImm: value = static_cast<u64>(uop.imm); break;
      case ExecOp::AddImm: value = a + static_cast<u64>(uop.imm); break;
      default:
        value = 0;
        break;
    }
    entry.result = value;
    const bool tainted = lineageOut && lineageUopConsumes(entry);
    const unsigned lat = isa::execLatency(uop);
    inflight.push_back({cycles + lat, entry.seq, value,
                        uop.dst.cls == RegClass::Fp, tainted});
}

void
OooCore::doIssue(mem::Hierarchy &memory, MmioBus &bus)
{
    unsigned budget = params_.issueWidth;
    unsigned fuUsed[isa::kNumFuClasses] = {};
    for (std::size_t i = 0; i < iq.size() && budget > 0;) {
        RobEntry *entry = findRob(iq[i]);
        if (!entry) {
            // Stale entry (squashed); drop it.
            iq.erase(iq.begin() + i);
            continue;
        }
        if (!operandsReady(*entry)) {
            ++i;
            continue;
        }
        const FuClass fu = isa::fuClassOf(entry->uop);
        const unsigned fuIdx = static_cast<unsigned>(fu);
        if (fuUsed[fuIdx] >= params_.fuCounts[fuIdx]) {
            ++i;
            continue;
        }
        if (fu == FuClass::IntDiv && cycles < intDivBusyUntil) {
            ++i;
            continue;
        }
        if (fu == FuClass::FpDiv && cycles < fpDivBusyUntil) {
            ++i;
            continue;
        }

        ++fuUsed[fuIdx];
        --budget;
        entry->issued = true;
        stats.issuedUops.inc();
        MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Issue,
                        entry->pc, entry->seq);

        if (entry->uop.isLoad) {
            // Address generation; the memory access happens in
            // doLoadIssue once ordering allows.
            const u64 base = readSrc(*entry, 0);
            const Addr addr = base + static_cast<u64>(entry->uop.imm);
            entry->effAddr = addr;
            LqEntry &lqe = lq[entry->lqIdx];
            lqe.addr = addr;
            lqe.size = entry->uop.memSize;
            lqe.addrReady = true;
            lqe.mmio = isMmio(addr);
            if (lineageOut)
                lqe.tainted = lineageUopConsumes(*entry);
            if (lq.faults().active())
                lq.faults().noteWrite(entry->lqIdx, 0, 47);
            iq.erase(iq.begin() + i);
            continue;
        }
        if (entry->uop.isStore) {
            const u64 base = readSrc(*entry, 0);
            const u64 data = readSrc(*entry, 1);
            const Addr addr = base + static_cast<u64>(entry->uop.imm);
            entry->effAddr = addr;
            entry->storeData = data;
            SqEntry &sqe = sq[entry->sqIdx];
            const unsigned size = entry->uop.memSize;
            sqe.mmio = isMmio(addr);
            const bool storeTaint =
                lineageOut && lineageUopConsumes(*entry);
            if (!spec_->allowsUnaligned && !sqe.mmio &&
                (addr & (size - 1)) != 0) {
                entry->fault = CrashKind::Misaligned;
                entry->completed = true;
            } else if (!sqe.mmio &&
                       !memory.dram().ok(addr, size)) {
                entry->fault = CrashKind::BusError;
                entry->completed = true;
            } else {
                sqe.addr = addr;
                sqe.data = data;
                sqe.size = static_cast<u8>(size);
                sqe.ready = true;
                if (storeTaint) {
                    sqe.tainted = true;
                    ++lineageOut->taintedStores;
                }
                if (sq.faults().active()) {
                    sq.faults().noteWrite(entry->sqIdx, 0, 111);
                }
                entry->completed = true;
            }
            iq.erase(iq.begin() + i);
            continue;
        }
        if (entry->uop.isBranch()) {
            resolveBranch(*entry);
            // The IQ may have been rebuilt by a squash: restart scan.
            if (!entry->completed)
                panic("branch did not complete");
            // Remove this seq if still present.
            for (std::size_t j = 0; j < iq.size(); ++j) {
                if (iq[j] == entry->seq) {
                    iq.erase(iq.begin() + j);
                    break;
                }
            }
            i = 0;
            continue;
        }

        executeUop(*entry, memory, bus);
        if (fu == FuClass::IntDiv)
            intDivBusyUntil = cycles + isa::execLatency(entry->uop);
        if (fu == FuClass::FpDiv)
            fpDivBusyUntil = cycles + isa::execLatency(entry->uop);
        iq.erase(iq.begin() + i);
    }
}

void
OooCore::doLoadIssue(mem::Hierarchy &memory, MmioBus &bus)
{
    unsigned ports = params_.fuCounts[static_cast<unsigned>(
        FuClass::MemPort)];
    for (unsigned k = 0; k < lq.size() && ports > 0; ++k) {
        const unsigned idx = lq.indexAt(k);
        LqEntry &lqe = lq[idx];
        if (!lqe.valid || !lqe.addrReady || lqe.issued)
            continue;
        RobEntry *entry = findRob(lqe.seq);
        if (!entry)
            continue;

        const Addr addr = lqe.addr;
        const unsigned size = lqe.size;

        // Store-queue ordering/forwarding: find the youngest older
        // store overlapping this load.
        bool stall = false;
        const SqEntry *fwd = nullptr;
        int fwdIdx = -1;
        for (unsigned s = sq.size(); s-- > 0;) {
            const unsigned si = sq.indexAt(s);
            const SqEntry &sqe = sq[si];
            if (!sqe.valid || sqe.seq > lqe.seq)
                continue;
            if (!sqe.ready) {
                // Older store with unknown address: conservative stall.
                stall = true;
                break;
            }
            const Addr sLo = sqe.addr;
            const Addr sHi = sqe.addr + sqe.size;
            const Addr lLo = addr;
            const Addr lHi = addr + size;
            if (sLo < lHi && lLo < sHi) {
                if (sLo <= lLo && lHi <= sHi) {
                    fwd = &sqe;
                    fwdIdx = static_cast<int>(si);
                } else {
                    stall = true; // partial overlap
                }
                break;
            }
        }
        if (stall)
            continue;

        if (lq.faults().active())
            lq.faults().noteRead(idx, 0, 47);

        // Lineage: a load is tainted when its address derives from
        // the fault, when it forwards from a tainted store, or when
        // it reads a fault-tainted memory range.
        bool loadTaint = false;
        if (lineageOut && lqe.tainted) {
            lineageNoteConsume();
            loadTaint = true;
        }

        // MMIO loads execute only at the head of the ROB.
        if (lqe.mmio) {
            if (rob.empty() || rob.front().seq != lqe.seq)
                continue;
            const u64 raw = bus.mmioRead(addr, size);
            lqe.issued = true;
            lqe.completed = true;
            --ports;
            if (lineageOut && loadTaint)
                ++lineageOut->taintedLoads;
            inflight.push_back({cycles + 20, lqe.seq, raw,
                                entry->uop.fpMem, loadTaint});
            continue;
        }

        if (!spec_->allowsUnaligned && (addr & (size - 1)) != 0) {
            entry->fault = CrashKind::Misaligned;
            entry->completed = true;
            lqe.issued = true;
            lqe.completed = true;
            continue;
        }

        u64 raw = 0;
        u32 latency = 1;
        if (fwd) {
            // Full containment: forward from the store's data.
            if (sq.faults().active())
                sq.faults().noteRead(fwdIdx, 0, 111);
            MARVEL_OBS_EMIT(obs::Component::Cpu,
                            obs::EventKind::Forward, addr, fwd->seq);
            if (lineageOut && fwd->tainted) {
                lineageNoteConsume();
                ++lineageOut->forwardedTaints;
                loadTaint = true;
            }
            const unsigned shift =
                static_cast<unsigned>(addr - fwd->addr) * 8;
            raw = fwd->data >> shift;
            if (size < 8)
                raw &= maskBits(size * 8);
            latency = 2;
        } else {
            u8 buf[8] = {};
            const mem::MemResult mr = memory.read(addr, buf, size);
            if (mr.fault) {
                entry->fault = CrashKind::BusError;
                entry->completed = true;
                lqe.issued = true;
                lqe.completed = true;
                continue;
            }
            std::memcpy(&raw, buf, 8);
            if (size < 8)
                raw &= maskBits(size * 8);
            latency = mr.latency;
            if (lineageOut && lineageMemTainted(addr, addr + size)) {
                lineageNoteConsume();
                loadTaint = true;
            }
        }
        if (entry->uop.memSigned && size < 8)
            raw = static_cast<u64>(sext(raw, size * 8));

        entry->effAddr = addr;
        lqe.issued = true;
        lqe.completed = true;
        --ports;
        stats.loadIssues.inc();
        if (lineageOut && loadTaint)
            ++lineageOut->taintedLoads;
        inflight.push_back({cycles + latency, lqe.seq, raw,
                            entry->uop.fpMem, loadTaint});
    }
}

void
OooCore::doComplete()
{
    for (std::size_t i = 0; i < inflight.size();) {
        if (inflight[i].doneAt > cycles) {
            ++i;
            continue;
        }
        RobEntry *entry = findRob(inflight[i].seq);
        if (entry) {
            entry->result = inflight[i].value;
            writeResult(*entry, inflight[i].value);
            if (lineageOut) {
                if (inflight[i].tainted && !entry->tainted) {
                    // Tainted loads reach here without a prior
                    // source-operand consume.
                    entry->tainted = true;
                    ++lineageOut->taintedUops;
                }
                lineageSetDstTaint(*entry, inflight[i].tainted);
            }
            entry->completed = true;
            MARVEL_OBS_EMIT(obs::Component::Cpu,
                            obs::EventKind::Complete, entry->pc,
                            entry->seq);
        }
        inflight.erase(inflight.begin() + i);
    }
}

// =====================================================================
// Commit
// =====================================================================

void
OooCore::doCommit(MmioBus &bus)
{
    unsigned budget = params_.commitWidth;
    while (budget-- > 0 && !rob.empty()) {
        RobEntry &head = rob.front();
        if (!head.completed)
            return;

        if (head.fault != CrashKind::None) {
            crashKind = head.fault;
            crashPc = head.pc;
            return;
        }

        if (head.uop.op == ExecOp::Magic) {
            switch (head.uop.magic) {
              case MagicOp::Checkpoint:
                checkpointRequest = true;
                break;
              case MagicOp::SwitchCpu:
                switchCpuRequest = true;
                break;
              case MagicOp::WaitIrq:
                if (!bus.irqPending())
                    return; // stall at commit until the IRQ fires
                break;
              case MagicOp::Nop:
                break;
            }
            serializeStall = false; // resume fetch past the magic op
        }

        if (head.uop.isStore && head.sqIdx >= 0) {
            SqEntry &sqe = sq[head.sqIdx];
            sqe.retired = true;
        }
        if (head.uop.isLoad && head.lqIdx >= 0) {
            // The head of the LQ must be this load.
            lq.popOldest();
        }
        if (head.uop.isBranch()) {
            if (head.uop.brKind == BrKind::CondReg ||
                head.uop.brKind == BrKind::CondFlag) {
                ++bpred.lookups;
                bpred.update(head.pc, head.brTaken);
            }
            if (head.uop.brKind == BrKind::Indirect)
                bpred.btbUpdate(head.pc, head.brTarget);
        }

        // Free the previous mapping of the destination register.
        if (head.dstPhys >= 0) {
            if (head.uop.dst.cls == RegClass::Fp)
                fpFree.push_back(head.oldPhys);
            else
                intFree.push_back(head.oldPhys);
        }

        // HVF commit trace.
        if (traceOut || traceRef || tapRef) {
            CommitRecord rec;
            rec.pc = head.pc;
            rec.op = static_cast<u8>(head.uop.op);
            rec.dstCls = static_cast<u8>(head.uop.dst.cls);
            rec.dstIdx = head.uop.dst.idx;
            rec.result = head.result;
            rec.memAddr = head.effAddr;
            rec.storeData = head.storeData;
            if (traceOut)
                traceOut->push_back(rec);
            if (traceRef && !hvfCorrupted) {
                if (traceRefPos >= traceRef->size() ||
                    !((*traceRef)[traceRefPos] == rec)) {
                    hvfCorrupted = true;
                    hvfCorruptCycle = cycles;
                }
                ++traceRefPos;
            }
            if (tapRef) {
                // tapPos advances even after divergence: the rung
                // stop-check uses the commit count itself as its O(1)
                // prefilter against the golden rung's trace index.
                if (tapDivergedAt == 0 &&
                    (tapPos >= tapRef->size() ||
                     !((*tapRef)[tapPos] == rec)))
                    tapDivergedAt = cycles;
                ++tapPos;
            }
        }

        MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Commit,
                        head.pc, head.seq);
        if (lineageOut && head.tainted) {
            if (lineageOut->taintedCommits == 0)
                lineageOut->firstTaintedCommit = cycles;
            ++lineageOut->taintedCommits;
        }

        ++committedUops;
        if (head.lastUop)
            ++committedInsts;

        const bool wasCheckpoint =
            head.uop.op == ExecOp::Magic &&
            (head.uop.magic == MagicOp::Checkpoint ||
             head.uop.magic == MagicOp::SwitchCpu);
        rob.pop_front();
        if (wasCheckpoint)
            return; // let the owner observe the request precisely
    }
}

void
OooCore::doStoreDrain(mem::Hierarchy &memory, MmioBus &bus)
{
    unsigned maxPerCycle = drainInterval_ == 0 ? 4 : 1;
    while (maxPerCycle > 0 && !sq.empty()) {
        const unsigned idx = sq.head();
        SqEntry &sqe = sq[idx];
        if (!sqe.valid || !sqe.retired || !sqe.ready)
            return;
        if (cycles < nextDrainAllowed)
            return;
        if (sq.faults().active())
            sq.faults().noteRead(idx, 0, 111);
        if (lineageOut && sqe.tainted) {
            lineageNoteConsume();
            lineageTaintMem(sqe.addr, sqe.addr + sqe.size);
        }
        if (sqe.mmio) {
            bus.mmioWrite(sqe.addr, sqe.data, sqe.size);
        } else {
            u8 buf[8];
            std::memcpy(buf, &sqe.data, 8);
            const mem::MemResult mr =
                memory.write(sqe.addr, buf, sqe.size);
            if (mr.fault) {
                crashKind = CrashKind::BusError;
                return;
            }
        }
        sq.popOldest();
        stats.storeDrains.inc();
        nextDrainAllowed = cycles + drainInterval_;
        --maxPerCycle;
    }
}

// =====================================================================
// Squash
// =====================================================================

void
OooCore::squashAfter(u64 seq, Addr redirectPc)
{
    ++squashes;
    MARVEL_OBS_EMIT(obs::Component::Cpu, obs::EventKind::Squash,
                    redirectPc, seq);
    if (getenv("MARVEL_TRACE_SQUASH"))
        std::fprintf(stderr,
                     "SQUASH cyc=%llu after=%llu redirect=%llx\n",
                     (unsigned long long)cycles,
                     (unsigned long long)seq,
                     (unsigned long long)redirectPc);
    while (!rob.empty() && rob.back().seq > seq) {
        RobEntry &entry = rob.back();
        if (entry.dstPhys >= 0) {
            if (entry.uop.dst.cls == RegClass::Fp) {
                fpMap[entry.uop.dst.idx] = entry.oldPhys;
                fpFree.push_back(entry.dstPhys);
                fpPrf.markReady(entry.dstPhys);
            } else {
                intMap[entry.uop.dst.idx] = entry.oldPhys;
                intFree.push_back(entry.dstPhys);
                intPrf.markReady(entry.dstPhys);
            }
        }
        rob.pop_back();
    }
    lq.squashYoungerThan(seq, lq.faults());
    sq.squashYoungerThan(seq, sq.faults());
    std::erase_if(iq, [&](u64 s) { return s > seq; });
    std::erase_if(inflight,
                  [&](const InFlight &f) { return f.seq > seq; });
    fetchQueue.clear();
    fetchPc = redirectPc;
    fetchStallUntil = cycles + 2; // redirect penalty
    serializeStall = false; // a squashed magic op will be refetched
    // Recycle the squashed sequence numbers so the ROB stays seq-
    // contiguous (findRob indexes by seq - headSeq). Nothing else
    // retains squashed seqs: IQ, LQ/SQ, in-flight events and the fetch
    // queue were all purged above.
    nextSeq = seq + 1;
}

// =====================================================================
// Top-level cycle
// =====================================================================

void
OooCore::cycle(mem::Hierarchy &memory, MmioBus &bus)
{
    if (crashed())
        return;
#ifndef MARVEL_STATS_DISABLED
    const u64 commitsBefore = committedUops;
    const u64 issuesBefore = stats.issuedUops.value();
    const u64 fetchesBefore = stats.fetchedUops.value();
    // Strided occupancy sampling: per-cycle sampling of six
    // histograms would blow the <=5% instrumentation budget.
    constexpr u64 kStatsStride = 8;
    if ((cycles & (kStatsStride - 1)) == 0)
        statsSampleOccupancy();
#endif
    doComplete();
    doCommit(bus);
    if (crashed())
        return;
    doStoreDrain(memory, bus);
    if (crashed())
        return;
    doLoadIssue(memory, bus);
    doIssue(memory, bus);
    doDispatch();
    doFetch(memory);
#ifndef MARVEL_STATS_DISABLED
    if ((cycles & (kStatsStride - 1)) == 0) {
        stats.commitWidthUsed.sample(
            static_cast<double>(committedUops - commitsBefore));
        stats.issueWidthUsed.sample(static_cast<double>(
            stats.issuedUops.value() - issuesBefore));
        stats.fetchWidthUsed.sample(static_cast<double>(
            stats.fetchedUops.value() - fetchesBefore));
    }
#endif
    ++cycles;
}

} // namespace marvel::cpu
