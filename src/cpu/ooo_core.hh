/**
 * @file
 * The out-of-order CPU model (Table II configuration by default):
 * 8-issue, 128-entry ROB, 64-entry IQ, 32/32 LQ/SQ, 128+128 physical
 * registers, bimodal+BTB+RAS prediction, precise exceptions, and a
 * per-ISA post-commit store-drain policy.
 *
 * The model is cycle-level: fetch reads actual encoded bytes through
 * the L1I, decode cracks them into micro-ops, rename allocates physical
 * registers, and faults injected anywhere in the PRF / caches / LQ / SQ
 * propagate through real data and control paths.
 */

#ifndef MARVEL_CPU_OOO_CORE_HH
#define MARVEL_CPU_OOO_CORE_HH

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/faultwatch.hh"
#include "cpu/bpred.hh"
#include "cpu/lsq.hh"
#include "cpu/prf.hh"
#include "isa/uop.hh"
#include "mem/hierarchy.hh"
#include "obs/lineage.hh"

namespace marvel::cpu
{

/**
 * Core statistics: value members copied with the core so restored
 * faulty runs diverge from the same golden baseline. Histograms are
 * sized from CpuParams at construction; occupancy signals are sampled
 * every 8th cycle (kStatsStride) to stay inside the <=5% overhead
 * budget enforced by bench_simspeed.
 */
struct CpuStats
{
    stats::Counter fetchedUops;  ///< uops pushed into the fetch queue
    stats::Counter issuedUops;   ///< uops leaving the IQ (incl. AGEN)
    stats::Counter loadIssues;   ///< loads that accessed memory/forward
    stats::Counter storeDrains;  ///< retired stores drained to memory
    stats::Histogram fetchWidthUsed;  ///< uops fetched per cycle
    stats::Histogram issueWidthUsed;  ///< uops issued per cycle
    stats::Histogram commitWidthUsed; ///< uops committed per cycle
    stats::Histogram robOccupancy;
    stats::Histogram iqOccupancy;
    stats::Histogram lqOccupancy;
    stats::Histogram sqOccupancy;
    stats::Histogram intRegsLive; ///< allocated integer physregs
    stats::Histogram fpRegsLive;  ///< allocated fp physregs

    /** Zero all counts (histogram geometry is preserved). */
    void
    reset()
    {
        fetchedUops.reset();
        issuedUops.reset();
        loadIssues.reset();
        storeDrains.reset();
        fetchWidthUsed.reset();
        issueWidthUsed.reset();
        commitWidthUsed.reset();
        robOccupancy.reset();
        iqOccupancy.reset();
        lqOccupancy.reset();
        sqOccupancy.reset();
        intRegsLive.reset();
        fpRegsLive.reset();
    }
};

/** Core configuration. */
struct CpuParams
{
    isa::IsaKind isa = isa::IsaKind::RISCV;
    unsigned fetchWidth = 8;
    unsigned dispatchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned robSize = 128;
    unsigned iqSize = 64;
    unsigned lqSize = 32;
    unsigned sqSize = 32;
    unsigned numIntPregs = 128;
    unsigned numFpPregs = 128;
    BPredParams bpred;
    /** Per-FuClass unit counts (IntAlu, IntMul, IntDiv, FpAlu, FpMul,
     *  FpDiv, MemPort, BranchUnit). */
    unsigned fuCounts[isa::kNumFuClasses] = {4, 2, 1, 2, 2, 1, 2, 2};
    /** Override the ISA's store drain interval (-1 = use ISA spec). */
    int storeDrainOverride = -1;
};

/** Architectural crash causes (any of these ends the run as a Crash). */
enum class CrashKind : u8
{
    None,
    IllegalInstruction,
    BusError,
    Misaligned,
    DivideByZero,
    FetchError,
};

const char *crashKindName(CrashKind kind);

/** One committed micro-op, for HVF commit-trace comparison. */
struct CommitRecord
{
    Addr pc = 0;
    u8 op = 0;
    u8 dstCls = 0;
    u8 dstIdx = 0;
    u64 result = 0;
    Addr memAddr = 0;
    u64 storeData = 0;

    bool
    operator==(const CommitRecord &other) const
    {
        return pc == other.pc && op == other.op &&
               dstCls == other.dstCls && dstIdx == other.dstIdx &&
               result == other.result && memAddr == other.memAddr &&
               storeData == other.storeData;
    }
};

/** Uncached device access interface provided by the SoC. */
class MmioBus
{
  public:
    virtual ~MmioBus() = default;
    virtual u64 mmioRead(Addr addr, unsigned size) = 0;
    virtual void mmioWrite(Addr addr, u64 value, unsigned size) = 0;
    /** An external interrupt line is asserted (wakes WaitIrq). */
    virtual bool irqPending() = 0;
};

/** Reorder buffer entry. */
struct RobEntry
{
    isa::MicroOp uop;
    Addr pc = 0;
    u8 len = 0;
    bool lastUop = true;
    u64 seq = 0;
    i16 dstPhys = -1;
    i16 oldPhys = -1;
    i16 srcPhys[3] = {-1, -1, -1};
    bool issued = false;
    bool completed = false;
    CrashKind fault = CrashKind::None;
    // Branch state
    Addr predNextPc = 0;
    bool brTaken = false;
    Addr brTarget = 0;
    // Memory state
    int lqIdx = -1;
    int sqIdx = -1;
    u64 result = 0;
    Addr effAddr = 0;
    u64 storeData = 0;
    bool tainted = false; ///< obs lineage: consumed fault-derived data

    bool operator==(const RobEntry &other) const = default;
};

/**
 * The out-of-order core. Value-semantic: copying a core snapshots its
 * full microarchitectural state (the checkpointing mechanism), except
 * the trace pointers, which the owner must re-set after copying.
 */
class OooCore
{
  public:
    explicit OooCore(const CpuParams &params = CpuParams{});

    /** Reset architectural + microarchitectural state; start at pc. */
    void reset(Addr pc);

    /** Advance one clock cycle. */
    void cycle(mem::Hierarchy &memory, MmioBus &bus);

    const CpuParams &params() const { return params_; }

    // --- status -----------------------------------------------------------
    bool crashed() const { return crashKind != CrashKind::None; }
    CrashKind crashKind = CrashKind::None;
    Addr crashPc = 0;

    /** Set when a Checkpoint magic op commits; caller clears. */
    bool checkpointRequest = false;
    /** Set when a SwitchCpu magic op commits; caller clears. */
    bool switchCpuRequest = false;

    Cycle cycles = 0;
    u64 committedUops = 0;
    u64 committedInsts = 0;
    u64 squashes = 0;

    // --- statistics -------------------------------------------------------
    CpuStats stats;

    /**
     * Register the core's counters, occupancy histograms and derived
     * formulas (ipc, mispredict rate, PRF activity) under g.
     */
    void regStats(stats::Group &g);

    // --- injectable structures ---------------------------------------------
    PhysRegFile intPrf;
    PhysRegFile fpPrf;
    LoadQueue lq;
    StoreQueue sq;
    BranchPredictor bpred;

    // --- HVF commit-trace hooks (not owned; re-set after copying) ---------
    std::vector<CommitRecord> *traceOut = nullptr;
    const std::vector<CommitRecord> *traceRef = nullptr;
    u64 traceRefPos = 0;
    bool hvfCorrupted = false;
    Cycle hvfCorruptCycle = 0;

    // --- convergence tap (not owned; re-set after copying) ----------------
    /**
     * Early-stop commit-trace tap: when set, every committed uop is
     * compared against the golden trace at tapPos. The first mismatch
     * (or overrun) latches tapDivergedAt; tapPos keeps advancing so the
     * rung stop-check can compare commit counts in O(1) before paying
     * for a full structural comparison. Independent of the HVF fields:
     * the tap never influences classification, only when the stop-check
     * bothers to look.
     */
    const std::vector<CommitRecord> *tapRef = nullptr;
    u64 tapPos = 0;
    Cycle tapDivergedAt = 0;

    // --- fault-propagation lineage (not owned; re-set after copying) ------
    /**
     * When set, the core tracks a taint bit alongside fault-derived
     * values — through register reads/writebacks, store-to-load
     * forwarding, drained stores and the commit stream — and records
     * the spread in *lineageOut. Null (the campaign default) skips all
     * taint work. The fi layer seeds taint right after placing a fault
     * via the lineageTaint* calls below.
     */
    obs::PropagationTrace *lineageOut = nullptr;

    void lineageTaintIntReg(unsigned phys);
    void lineageTaintFpReg(unsigned phys);
    void lineageTaintLoad(unsigned lqIdx);
    void lineageTaintStore(unsigned sqIdx);
    /** Taint the byte range [lo, hi) of memory (over-approximate:
     *  ranges are never cleared). */
    void lineageTaintMem(Addr lo, Addr hi);

    /** Architectural integer register peek (tests). */
    u64 archIntReg(unsigned idx) const;

    /**
     * FNV-1a digest of the architecturally visible register state
     * (every architectural integer and FP register through the rename
     * maps). Two runs of the same binary on the same flavor must end
     * with identical digests — the fuzz differential executor and
     * determinism audit compare exactly this.
     */
    u64 archRegDigest() const;

    /** One-line pipeline state summary (debugging aid). */
    std::string debugState() const;

    // --- reorder-buffer injection image (paper SIV-E) ----------------
    /** ROB capacity (injection entries). */
    u32 robNumEntries() const { return params_.robSize; }

    /** Bits per ROB entry image: 5x7-bit physical-register pointers
     *  plus 13 pc bits (see robFlipBit). */
    u32 robBitsPerEntry() const { return 48; }

    /** Occupied ROB entries right now. */
    u32 robOccupancy() const { return rob.size(); }

    /**
     * Flip one bit of the i-th oldest ROB entry's control image.
     * Returns false (masked) when the slot is empty. Register-pointer
     * bits wrap within the physical register file, as a real 7-bit
     * pointer field would.
     */
    bool robFlipBit(u32 entry, u32 bit);

    // --- rename-map injection image -----------------------------------
    u32 renameNumEntries() const { return intMap.size(); }
    u32 renameBitsPerEntry() const { return 7; }
    void renameFlipBit(u32 entry, u32 bit);

    FaultState &robFaults() { return robFaults_; }
    const FaultState &robFaults() const { return robFaults_; }
    FaultState &renameFaults() { return renameFaults_; }
    const FaultState &renameFaults() const { return renameFaults_; }

    /**
     * Exact structural comparison of every state element that can
     * influence future execution: pipeline contents, rename maps and
     * free lists, ROB/IQ/LSQ, in-flight results, divider occupancy,
     * drain pacing, cycle and sequence counters, and the branch
     * predictor. Statistics, squash counts, trace/tap/lineage hooks,
     * fault bookkeeping, and HVF latches are excluded — none of them
     * feed back into the datapath. PRF values and ready bits of
     * free-listed registers are also skipped: in-order commit frees a
     * physical register only after its last consumer read it, so a
     * free register's value is dead by construction.
     */
    bool convergedWith(const OooCore &other) const;

  private:
    struct InFlight
    {
        Cycle doneAt;
        u64 seq;
        u64 value;
        bool writesFp;
        bool tainted = false;

        bool operator==(const InFlight &other) const = default;
    };

    /** Sample occupancy histograms (call on the kStatsStride grid). */
    void statsSampleOccupancy();

    RobEntry *findRob(u64 seq);
    bool operandsReady(const RobEntry &entry) const;
    u64 readSrc(const RobEntry &entry, unsigned which);
    void doFetch(mem::Hierarchy &memory);
    void doDispatch();
    void doIssue(mem::Hierarchy &memory, MmioBus &bus);
    void doLoadIssue(mem::Hierarchy &memory, MmioBus &bus);
    void doComplete();
    void doCommit(MmioBus &bus);
    void doStoreDrain(mem::Hierarchy &memory, MmioBus &bus);
    void executeUop(RobEntry &entry, mem::Hierarchy &memory,
                    MmioBus &bus);
    void resolveBranch(RobEntry &entry);
    void squashAfter(u64 seq, Addr redirectPc);
    void writeResult(const RobEntry &entry, u64 value);

    // Lineage taint plumbing (all no-ops while lineageOut is null).
    bool lineageSrcTainted(const RobEntry &entry) const;
    bool lineageUopConsumes(RobEntry &entry);
    void lineageNoteConsume();
    void lineageSetDstTaint(const RobEntry &entry, bool tainted);
    bool lineageMemTainted(Addr lo, Addr hi) const;

    CpuParams params_;
    const isa::IsaSpec *spec_;

    // Fetch
    Addr fetchPc = 0;
    Cycle fetchStallUntil = 0;
    /** Magic ops serialize: fetch halts until the op commits. */
    bool serializeStall = false;
    struct FetchedUop
    {
        isa::MicroOp uop;
        Addr pc;
        u8 len;
        bool lastUop;
        CrashKind fault;
        Addr predNextPc;

        bool operator==(const FetchedUop &other) const = default;
    };
    std::deque<FetchedUop> fetchQueue;

    // Rename
    std::vector<i16> intMap;
    std::vector<i16> fpMap;
    std::vector<i16> intFree;
    std::vector<i16> fpFree;

    // Window
    std::deque<RobEntry> rob;
    u64 nextSeq = 1;
    std::vector<u64> iq; ///< seqs of un-issued uops
    std::vector<InFlight> inflight;

    // Divider occupancy (unpipelined units)
    Cycle intDivBusyUntil = 0;
    Cycle fpDivBusyUntil = 0;

    // Store drain pacing
    Cycle nextDrainAllowed = 0;
    unsigned drainInterval_ = 1;

    // Fault bookkeeping for the meta-state targets (no early-
    // termination hooks: these faults always run to completion).
    FaultState robFaults_;
    FaultState renameFaults_;

    // Lineage taint state (value-semantic; copied with the core so a
    // checkpoint restore starts from a clean, untainted image).
    std::vector<u8> intTaint_;
    std::vector<u8> fpTaint_;
    std::vector<std::pair<Addr, Addr>> memTaint_;
};

} // namespace marvel::cpu

#endif // MARVEL_CPU_OOO_CORE_HH
