#include "cpu/bpred.hh"

#include "common/bits.hh"
#include "common/log.hh"

namespace marvel::cpu
{

BranchPredictor::BranchPredictor(const BPredParams &params)
    : params_(params)
{
    if (!isPow2(params_.bimodalEntries) || !isPow2(params_.btbEntries))
        fatal("bpred: table sizes must be powers of two");
    bimodal.assign(params_.bimodalEntries, 1); // weakly not-taken
    btbTag.assign(params_.btbEntries, 0);
    btbTarget.assign(params_.btbEntries, 0);
    ras.assign(params_.rasEntries, 0);
}

bool
BranchPredictor::predictTaken(Addr pc) const
{
    const unsigned idx =
        static_cast<unsigned>(pc >> 1) & (params_.bimodalEntries - 1);
    return bimodal[idx] >= 2;
}

void
BranchPredictor::update(Addr pc, bool taken)
{
    const unsigned idx =
        static_cast<unsigned>(pc >> 1) & (params_.bimodalEntries - 1);
    u8 &ctr = bimodal[idx];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
}

Addr
BranchPredictor::btbLookup(Addr pc) const
{
    const unsigned idx =
        static_cast<unsigned>(pc >> 1) & (params_.btbEntries - 1);
    return btbTag[idx] == pc ? btbTarget[idx] : 0;
}

void
BranchPredictor::btbUpdate(Addr pc, Addr target)
{
    const unsigned idx =
        static_cast<unsigned>(pc >> 1) & (params_.btbEntries - 1);
    btbTag[idx] = pc;
    btbTarget[idx] = target;
}

void
BranchPredictor::pushRas(Addr returnAddr)
{
    rasTop = (rasTop + 1) % params_.rasEntries;
    ras[rasTop] = returnAddr;
    if (rasCount < params_.rasEntries)
        ++rasCount;
}

Addr
BranchPredictor::popRas()
{
    if (rasCount == 0)
        return 0;
    const Addr top = ras[rasTop];
    rasTop = (rasTop + params_.rasEntries - 1) % params_.rasEntries;
    --rasCount;
    return top;
}

void
BranchPredictor::reset()
{
    std::fill(bimodal.begin(), bimodal.end(), 1);
    std::fill(btbTag.begin(), btbTag.end(), 0);
    std::fill(btbTarget.begin(), btbTarget.end(), 0);
    rasTop = 0;
    rasCount = 0;
}

} // namespace marvel::cpu
