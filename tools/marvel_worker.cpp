/**
 * @file
 * marvel-worker — the distributed-campaign lease-running client.
 *
 * Connects to a marvel-campaignd dispatch socket, learns the campaign
 * identity (target, model, seed, ladder geometry, prune flag) from
 * the daemon's HelloAck, builds the matching golden run locally,
 * validates the identity (any mismatch fatals with both values — the
 * same messages a bad `marvel-campaign resume` prints), then leases
 * fault ranges and streams verdicts until the campaign completes.
 *
 * The worker owns no durable state: if it dies, its leases expire and
 * another worker re-runs them; if the daemon dies, the worker backs
 * off exponentially (with per-worker jitter) and reconnects.
 *
 * Usage:
 *   marvel-worker --connect unix:/tmp/m.sock --workload sha
 *                 [--name w0] [--lease N]
 *                 [--preset P | --config F] [--driver D]
 *
 * The workload/system flags must rebuild the daemon's golden run;
 * campaign parameters are NOT flags here — they come from the daemon.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "accel/designs/designs.hh"
#include "common/cli.hh"
#include "common/config.hh"
#include "net/worker.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

const cli::Tool kTool = {
    "marvel-worker",
    "usage: marvel-worker --connect ADDR --workload W|--driver D\n"
    "  ADDR: unix:/path/to.sock | host:port\n"
    "  [--name NAME]   worker name (default: worker-<pid>)\n"
    "  [--lease N]     ask for at most N faults per lease\n"
    "  [--preset P] [--config F]   system description\n"
    "  campaign parameters (seed, faults, model, target, ladder,\n"
    "  prune) come from the daemon, not from flags\n",
};

struct Options
{
    std::string connect;
    std::string name;
    std::string preset = "riscv";
    std::string configFile;
    std::string workload;
    std::string driver;
    u64 leaseFaults = 0;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                cli::usageError(kTool, "flag needs a value:", arg);
            return argv[++i];
        };
        if (arg == "--connect")
            opts.connect = next();
        else if (arg == "--name")
            opts.name = next();
        else if (arg == "--preset")
            opts.preset = next();
        else if (arg == "--config")
            opts.configFile = next();
        else if (arg == "--workload")
            opts.workload = next();
        else if (arg == "--driver")
            opts.driver = next();
        else if (arg == "--lease")
            opts.leaseFaults =
                std::strtoull(next().c_str(), nullptr, 10);
        else
            cli::usageError(kTool, "unknown flag", arg);
    }
    if (opts.connect.empty())
        cli::usageError(kTool, "missing --connect", "");
    if (opts.name.empty())
        opts.name = strfmt("worker-%d", static_cast<int>(getpid()));
    return opts;
}

int
runWorkerTool(const Options &opts)
{
    soc::SystemConfig cfg =
        opts.configFile.empty()
            ? soc::preset(opts.preset)
            : soc::configFromFile(opts.configFile);
    if (!opts.driver.empty() && cfg.cluster.designs.empty())
        cfg.cluster.designs.push_back(accel::designs::makeByName(
            opts.driver, kAccelSpaceBase));

    workloads::Workload wl;
    if (!opts.driver.empty())
        wl = workloads::accelDriver(opts.driver, 0);
    else if (!opts.workload.empty())
        wl = workloads::get(opts.workload);
    else
        fatal("marvel-worker: need --workload or --driver");

    net::WorkerConfig wcfg;
    wcfg.endpoint = net::parseEndpoint(opts.connect);
    wcfg.name = opts.name;
    wcfg.maxLeaseFaults = opts.leaseFaults;

    // The golden run is built lazily, once the daemon's meta tells us
    // the ladder geometry the campaign was recorded with.
    fi::GoldenRun golden;
    const net::GoldenSource goldenFor =
        [&](const store::JournalMeta &meta) -> const fi::GoldenRun & {
        if (!meta.workload.empty() && meta.workload != wl.name)
            fatal("marvel-worker: daemon dispatches workload '%s' "
                  "but this worker was launched with '%s'",
                  meta.workload.c_str(), wl.name.c_str());
        const isa::Program prog =
            isa::compile(wl.module, cfg.cpu.isa);
        std::printf("%s: golden run (%s, %s, ladder %u)...\n",
                    wcfg.name.c_str(), wl.name.c_str(),
                    isa::isaName(cfg.cpu.isa), meta.ladderRungs);
        std::fflush(stdout);
        golden = fi::runGolden(cfg, prog, 500'000'000,
                               meta.ladderRungs);
        return golden;
    };

    const net::WorkerReport report =
        net::runWorker(wcfg, goldenFor);
    std::printf("%s: %llu verdict(s) over %llu lease(s), "
                "%llu reconnect(s)%s\n",
                wcfg.name.c_str(),
                static_cast<unsigned long long>(
                    report.verdictsStreamed),
                static_cast<unsigned long long>(
                    report.leasesCompleted),
                static_cast<unsigned long long>(report.reconnects),
                report.campaignComplete ? ", campaign complete"
                                        : "");
    return report.campaignComplete ? 0 : 3;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runWorkerTool(parseArgs(argc, argv));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
