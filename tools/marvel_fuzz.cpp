/**
 * @file
 * marvel-fuzz — differential fuzzing of the compile + execute stack.
 *
 * Sweeps a seed range of randomly generated MIR programs. Each one is
 * executed by the reference interpreter and by codegen + the
 * out-of-order core on every requested ISA flavor; exit codes, OUTPUT
 * windows, console bytes and (optionally) bit-exact re-runs are
 * compared. Failing seeds are greedily shrunk to a minimal module and
 * written as reproducers to the output directory. A determinism audit
 * additionally re-runs fault injections (through checkpoint restore)
 * on a cadence of seeds, requiring identical verdicts, stats
 * snapshots, and architectural digests.
 *
 * Usage:
 *   marvel-fuzz [run] --seeds A:B [--flavors all|riscv,arm,x86]
 *               [--audit-every N] [--no-shrink] [--no-determinism]
 *               [--statements N] [--max-cycles N] [--out DIR]
 *               [--ladder N] [--early-stop] [--quiet]
 *   marvel-fuzz dump --seed N
 *   marvel-fuzz --help | --version
 *
 * Exit status: 0 all seeds clean, 1 divergence or audit failure
 * found, 2 usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hh"
#include "fuzz/fuzz.hh"
#include "mir/mir.hh"

using namespace marvel;

namespace
{

struct Options
{
    std::string command = "run";
    u64 seedBegin = 0;
    u64 seedEnd = 16;
    u64 dumpSeed = 0;
    std::vector<isa::IsaKind> flavors; ///< empty = all
    unsigned auditEvery = 16;
    bool shrink = true;
    bool determinism = true;
    unsigned statements = 24;
    u64 maxCycles = 4'000'000;
    unsigned ladderRungs = 0;
    bool earlyStop = false;
    std::vector<std::string> faultModels; ///< extra audit specs
    std::string outDir = "results/fuzz";
    unsigned threads = 0; ///< 0 = hardware concurrency
    bool quiet = false;
};

const cli::Tool kTool = {
    "marvel-fuzz",
    "usage: marvel-fuzz [run] --seeds A:B\n"
    "             [--flavors all|riscv,arm,x86] [--audit-every N]\n"
    "             [--no-shrink] [--no-determinism]\n"
    "             [--statements N] [--max-cycles N] [--out DIR]\n"
    "             [--ladder N] [--early-stop] [--threads N]\n"
    "             [--fault-model SPEC ...] [--quiet]\n"
    "       marvel-fuzz dump --seed N\n"
    "       marvel-fuzz --help | --version\n",
};

[[noreturn]] void
usageError(const char *what, const std::string &token)
{
    cli::usageError(kTool, what, token);
}

u64
parseU64(const std::string &token)
{
    char *end = nullptr;
    const u64 value = std::strtoull(token.c_str(), &end, 0);
    if (end == token.c_str() || *end != '\0')
        usageError("expected a number, got", token);
    return value;
}

/** "A:B" -> [A, B); "N" -> [N, N+1). */
void
parseSeedRange(const std::string &token, Options &opts)
{
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos) {
        opts.seedBegin = parseU64(token);
        opts.seedEnd = opts.seedBegin + 1;
        return;
    }
    opts.seedBegin = parseU64(token.substr(0, colon));
    opts.seedEnd = parseU64(token.substr(colon + 1));
    if (opts.seedEnd <= opts.seedBegin)
        usageError("empty seed range", token);
}

void
parseFlavors(const std::string &token, Options &opts)
{
    opts.flavors.clear();
    if (token == "all")
        return;
    std::size_t pos = 0;
    while (pos < token.size()) {
        std::size_t comma = token.find(',', pos);
        if (comma == std::string::npos)
            comma = token.size();
        opts.flavors.push_back(
            isa::isaFromName(token.substr(pos, comma - pos)));
        pos = comma + 1;
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    int i = 1;
    if (i < argc && argv[i][0] != '-') {
        opts.command = argv[i];
        ++i;
        if (opts.command != "run" && opts.command != "dump")
            usageError("unknown command", opts.command);
    }
    auto next = [&](const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError("missing value for", flag);
        return argv[++i];
    };
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg)) {
            continue;
        } else if (arg == "--seeds") {
            parseSeedRange(next("--seeds"), opts);
        } else if (arg == "--seed") {
            opts.dumpSeed = parseU64(next("--seed"));
        } else if (arg == "--flavors") {
            parseFlavors(next("--flavors"), opts);
        } else if (arg == "--audit-every") {
            opts.auditEvery =
                static_cast<unsigned>(parseU64(next("--audit-every")));
        } else if (arg == "--no-shrink") {
            opts.shrink = false;
        } else if (arg == "--no-determinism") {
            opts.determinism = false;
        } else if (arg == "--statements") {
            opts.statements =
                static_cast<unsigned>(parseU64(next("--statements")));
        } else if (arg == "--max-cycles") {
            opts.maxCycles = parseU64(next("--max-cycles"));
        } else if (arg == "--ladder") {
            opts.ladderRungs =
                static_cast<unsigned>(parseU64(next("--ladder")));
        } else if (arg == "--early-stop") {
            opts.earlyStop = true;
        } else if (arg == "--fault-model") {
            opts.faultModels.push_back(next("--fault-model"));
        } else if (arg == "--out") {
            opts.outDir = next("--out");
        } else if (arg == "--threads") {
            opts.threads =
                static_cast<unsigned>(parseU64(next("--threads")));
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else {
            usageError("unknown option", arg);
        }
    }
    return opts;
}

int
cmdDump(const Options &opts)
{
    fuzz::GenOptions gen;
    gen.statements = opts.statements;
    const mir::Module module = fuzz::generate(opts.dumpSeed, gen);
    std::printf("; seed %llu, digest %016llx\n%s",
                (unsigned long long)opts.dumpSeed,
                (unsigned long long)mir::moduleDigest(module),
                mir::toString(module).c_str());
    return 0;
}

int
cmdRun(const Options &opts)
{
    fuzz::FuzzOptions fo;
    fo.seedBegin = opts.seedBegin;
    fo.seedEnd = opts.seedEnd;
    fo.gen.statements = opts.statements;
    fo.diff.flavors = opts.flavors;
    fo.diff.maxCycles = opts.maxCycles;
    fo.diff.checkDeterminism = opts.determinism;
    fo.shrinkFailures = opts.shrink;
    fo.auditEvery = opts.determinism ? opts.auditEvery : 0;
    fo.audit.flavors = opts.flavors;
    fo.audit.ladderRungs = opts.ladderRungs;
    fo.audit.earlyStop = opts.earlyStop;
    fo.audit.faultModels = opts.faultModels;
    fo.outDir = opts.outDir;
    fo.threads = opts.threads;
    if (!opts.quiet) {
        fo.progress = [](u64 seed, const std::string &status) {
            if (status == "ok") {
                if (seed % 25 == 0)
                    std::printf("seed %llu: ok\n",
                                (unsigned long long)seed);
            } else {
                std::printf("seed %llu: %s\n",
                            (unsigned long long)seed, status.c_str());
            }
            std::fflush(stdout);
        };
    }

    const fuzz::FuzzSummary summary = fuzz::runFuzz(fo);
    std::printf(
        "fuzz: %llu seeds ran, %llu skipped, %llu audited, "
        "%zu failures\n",
        (unsigned long long)summary.ran,
        (unsigned long long)summary.skipped,
        (unsigned long long)summary.audited,
        summary.failures.size());
    for (const fuzz::FuzzFailure &failure : summary.failures) {
        std::printf("  %s\n", failure.summary().c_str());
        if (!failure.reproPath.empty())
            std::printf("    reproducer: %s\n",
                        failure.reproPath.c_str());
    }
    return summary.clean() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts = parseArgs(argc, argv);
    if (opts.command == "dump")
        return cmdDump(opts);
    return cmdRun(opts);
}
