/**
 * @file
 * marvel-trace — replay one journaled fault with full observability.
 *
 * A campaign journal records a verdict per fault index; marvel-trace
 * answers "what actually happened in run #i?". It rebuilds the golden
 * run, re-derives fault i from the journal's (seed, index) RNG stream,
 * and replays it twice:
 *
 *   1. a *verification* replay with the exact options the journal
 *      records — its verdict must match the journaled one
 *      bit-identically, proving the replay is looking at the same
 *      execution the campaign saw (exit 1 if not);
 *   2. an *instrumented* replay with event tracing and fault-
 *      propagation lineage enabled, producing the human-readable
 *      propagation story and (with --trace) a Chrome trace_event JSON
 *      file for chrome://tracing / Perfetto.
 *
 * Usage:
 *   marvel-trace replay --journal camp.jsonl --index 17
 *                [--trace out.json] [--preset P] [--config F]
 *                [--workload W] [--driver D] [--ring N]
 *   marvel-trace --help | --version
 *
 * The workload defaults to the journal's recorded workload name; pass
 * --workload/--driver only when the journal predates that field or the
 * workload was an accelerator driver.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "accel/designs/designs.hh"
#include "common/cli.hh"
#include "obs/chrome_trace.hh"
#include "obs/lineage.hh"
#include "obs/trace.hh"
#include "sched/replay.hh"
#include "soc/builder.hh"
#include "stats/diff.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

struct Options
{
    std::string command;
    std::string journal;
    std::string tracePath;
    std::string preset = "riscv";
    std::string configFile;
    std::string workload;
    std::string driver;
    u64 index = 0;
    bool haveIndex = false;
    std::size_t ringCapacity = 1 << 16;
};

const cli::Tool kTool = {
    "marvel-trace",
    "usage: marvel-trace replay --journal FILE --index N\n"
    "             [--trace out.json] [--preset P] [--config F]\n"
    "             [--workload W] [--driver D] [--ring N]\n"
    "       marvel-trace --help | --version\n",
};

/** Complain about one specific bad token, then the usage text. */
[[noreturn]] void
usageError(const char *what, const std::string &token)
{
    cli::usageError(kTool, what, token);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    if (argc < 2)
        usageError("missing subcommand", "");
    opts.command = argv[1];
    cli::handleStandardFlag(kTool, opts.command);
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("flag needs a value:", arg);
            return argv[++i];
        };
        if (arg == "--journal")
            opts.journal = next();
        else if (arg == "--trace")
            opts.tracePath = next();
        else if (arg == "--preset")
            opts.preset = next();
        else if (arg == "--config")
            opts.configFile = next();
        else if (arg == "--workload")
            opts.workload = next();
        else if (arg == "--driver")
            opts.driver = next();
        else if (arg == "--index") {
            opts.index = std::strtoull(next().c_str(), nullptr, 0);
            opts.haveIndex = true;
        } else if (arg == "--ring")
            opts.ringCapacity =
                std::strtoull(next().c_str(), nullptr, 0);
        else
            usageError("unknown flag", arg);
    }
    return opts;
}

soc::SystemConfig
systemFor(const Options &opts)
{
    soc::SystemConfig cfg =
        opts.configFile.empty() ? soc::preset(opts.preset)
                                : soc::configFromFile(opts.configFile);
    if (!opts.driver.empty() && cfg.cluster.designs.empty())
        cfg.cluster.designs.push_back(accel::designs::makeByName(
            opts.driver, kAccelSpaceBase));
    return cfg;
}

workloads::Workload
workloadFor(const Options &opts, const store::JournalMeta &meta)
{
    if (!opts.driver.empty())
        return workloads::accelDriver(opts.driver, 0);
    if (!opts.workload.empty())
        return workloads::get(opts.workload);
    if (!meta.workload.empty())
        return workloads::get(meta.workload);
    fatal("marvel-trace: journal records no workload; "
          "pass --workload or --driver");
}

int
cmdReplay(const Options &opts)
{
    if (opts.journal.empty())
        usageError("replay needs --journal", "");
    if (!opts.haveIndex)
        usageError("replay needs --index", "");

    const store::Journal journal = store::readJournal(opts.journal);
    if (!journal.hasMeta)
        fatal("marvel-trace: '%s' has no journal meta record",
              opts.journal.c_str());
    const store::JournalMeta &meta = journal.meta;

    const workloads::Workload wl = workloadFor(opts, meta);
    const soc::SystemConfig cfg = systemFor(opts);
    std::printf("golden run (%s, %s)...\n", wl.name.c_str(),
                isa::isaName(cfg.cpu.isa));
    // Rebuild the golden with the journal's ladder geometry —
    // replaySetup rejects a mismatch, and a pruned verdict can only
    // be re-checked against the same golden window.
    const fi::GoldenRun golden =
        fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa),
                      500'000'000, meta.ladderRungs);

    const sched::ReplaySetup setup =
        sched::replaySetup(golden, meta, opts.index, opts.journal);
    const fi::FaultMask &mask = setup.mask;
    std::printf("fault #%llu: %s\n",
                static_cast<unsigned long long>(opts.index),
                mask.toString().c_str());

    const auto journaled = sched::findVerdict(journal, opts.index);

    // A pre-pruned fault was never simulated, so runWithFault cannot
    // reproduce its verdict record. Verify it the way the campaign
    // decided it — the golden access profile must still prove the
    // fault dead — then force-simulate: a sound pruner's fault always
    // comes back Masked.
    if (journaled &&
        journaled->detail == fi::OutcomeDetail::MaskedPruned) {
        const fi::TargetProfile profile =
            fi::profileTargetAccesses(golden, setup.target);
        if (!profile.prunable(setup.mask)) {
            std::fprintf(stderr,
                         "marvel-trace: journal says fault #%llu was "
                         "pruned, but the golden access profile no "
                         "longer proves it dead\n",
                         static_cast<unsigned long long>(opts.index));
            return 1;
        }
        std::printf("journal:  verdict Masked (masked-pruned) — "
                    "golden profile confirms the fault is "
                    "overwritten before any read\n");
        const fi::RunVerdict forced =
            fi::runWithFault(golden, mask, setup.options);
        std::printf("force-simulated: %s\n",
                    forced.toString().c_str());
        if (forced.outcome != fi::Outcome::Masked) {
            std::fprintf(stderr,
                         "marvel-trace: force-simulating the pruned "
                         "fault did NOT come back Masked — the "
                         "pruner is unsound\n");
            return 1;
        }
        return 0;
    }

    // Pass 1: verify the replay reproduces the journaled verdict
    // exactly, with the run options the journal recorded.
    const fi::RunVerdict verdict =
        fi::runWithFault(golden, mask, setup.options);
    std::printf("verdict: %s\n", verdict.toString().c_str());
    if (journaled) {
        if (!sched::verdictsIdentical(verdict, *journaled)) {
            std::fprintf(stderr,
                         "marvel-trace: replay DIVERGED from the "
                         "journal\n  journaled: %s\n  replayed:  %s\n",
                         journaled->toString().c_str(),
                         verdict.toString().c_str());
            return 1;
        }
        std::printf("journal:  verdict reproduced bit-identically\n");
    } else {
        std::printf("journal:  index %llu has no journaled verdict "
                    "(not yet run?)\n",
                    static_cast<unsigned long long>(opts.index));
    }

    // Pass 2: same fault, instrumented — event tracing on, lineage
    // seeded at the fault site, HVF divergence tracking forced on so
    // the lineage can report the architectural divergence point.
    obs::TraceSession session(opts.ringCapacity);
    obs::PropagationTrace lineage;
    stats::Snapshot faultyStats;
    fi::InjectionOptions instrumented = setup.options;
    instrumented.computeHvf = true;
    instrumented.lineage = &lineage;
    instrumented.statsOut = &faultyStats;
    fi::runWithFault(golden, mask, instrumented);

    std::printf("\n%s", lineage.summary().c_str());

    // Golden-vs-faulty stats divergence: which counters moved, ranked
    // by relative shift. The golden baseline replays the same
    // checkpoint fault-free so both trees cover identical windows.
    const stats::Snapshot goldenSnap = fi::goldenStats(golden);
    std::printf("\n%s",
                stats::diff(goldenSnap, faultyStats).format().c_str());
    std::printf("\ntrace: %zu events retained",
                session.totalEvents());
    if (session.totalDropped() > 0)
        std::printf(" (%llu overwritten; raise --ring)",
                    static_cast<unsigned long long>(
                        session.totalDropped()));
    std::printf("\n");
    for (unsigned c = 0; c < obs::kNumComponents; ++c) {
        const auto comp = static_cast<obs::Component>(c);
        if (session.ring(comp).size() > 0)
            std::printf("  %-6s %zu events\n",
                        obs::componentName(comp),
                        session.ring(comp).size());
    }
    if (!opts.tracePath.empty()) {
        // Overlay the replay's wall-clock phase spans (pid 1) next to
        // the simulated-cycle component lanes (pid 0).
        obs::writeChromeTrace(opts.tracePath, session,
                              obs::profiler::spans());
        std::printf("chrome trace written to %s "
                    "(chrome://tracing, Perfetto)\n",
                    opts.tracePath.c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        if (opts.command == "replay")
            return cmdReplay(opts);
        usageError("unknown subcommand", opts.command);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
