/**
 * @file
 * marvel-campaign — persistent, resumable, sharded batch campaigns.
 *
 * Where marvel-cli runs one in-memory campaign, marvel-campaign is
 * the batch front end to the store/sched subsystem: every verdict is
 * journaled to a crash-safe JSONL file, a killed run continues from
 * its journal, and a campaign can be split across processes by shard.
 *
 * Usage:
 *   marvel-campaign run    --workload sha --target l1d \
 *                          --journal camp.jsonl [--shard 0/4] [opts]
 *   marvel-campaign resume --workload sha --journal camp.jsonl [opts]
 *   marvel-campaign status --journal camp.jsonl [--journal ...]
 *                          [--follow] | --connect ADDR
 *   marvel-campaign merge  --journal s0.jsonl --journal s1.jsonl ...
 *                          [--out canonical.jsonl]
 *
 * Subcommands:
 *   run     start a (shard of a) campaign, journaling every verdict.
 *           Re-running over an existing journal refuses unless
 *           --resume / the resume subcommand is used.
 *   resume  re-execute the golden run, validate the journal identity
 *           (seed, sample, model, target, golden digest), and run
 *           only the fault indices the journal is missing. Campaign
 *           parameters (seed/faults/model/target) come from the
 *           journal meta, so only the system/workload flags are
 *           needed again.
 *   status  per-journal progress: done/expected, chunk commits,
 *           torn-tail note, the partial verdict counts, and the
 *           partial AVF with its achieved 95% error margin. With
 *           --follow, tails the scheduler's atomic heartbeat files
 *           (<journal>.progress), prints a live progress line per
 *           journal plus one campaign-wide aggregate (combined
 *           verdict mix, summed runs/sec, whole-campaign ETA), and
 *           exits once every journal is complete. With --connect, it
 *           is instead a live watcher on a marvel-campaignd dispatch
 *           socket: the daemon streams its heartbeat on every beat.
 *   merge   fold shard journals into one campaign-wide report;
 *           fatal()s on holes, overlap, or identity mismatch. With
 *           --out, also writes the canonical single-file journal —
 *           the byte-identical normal form any equivalent campaign
 *           (single-process, sharded, or distributed) reduces to.
 *   report  roll a finished journal's observability records into a
 *           wall-clock breakdown: the profiler phase table (from the
 *           journal's metrics record) and per-verdict-class wall-time
 *           percentiles (p50/p95/max, from the per-injection
 *           provenance fields). Accepts several --journal flags and
 *           pools them. Ends with machine-greppable
 *           `phase-total-seconds` / `campaign-wall-seconds` lines.
 *
 * Options (run/resume):
 *   --preset NAME      riscv | arm | x86 | *-soc     (default riscv)
 *   --config FILE      INI system description (overrides --preset)
 *   --workload W / --driver D   workload selection (as marvel-cli)
 *   --target T         injectable structure          (run only)
 *   --faults N         sample size                   (default 200)
 *   --model M          transient | stuck-at-0 | stuck-at-1
 *   --fault-model S    sampling spec: "burst k=3", "scatter k=2",
 *                      "correlated roww=1,3 colw=1,2,4,2",
 *                      "targeted entry=2:5 pc=0x1000:0x1040" (also
 *                      read from the [fault_model] config section;
 *                      default: the legacy uniform single-bit draw)
 *   --target-filter F  shorthand for --fault-model "targeted F"
 *   --seed N           campaign seed                 (default 0x5eed)
 *   --threads N        parallel workers              (default: hw)
 *   --shard I/N        own fault indices i with i%N == I
 *   --chunk N          verdicts per fsync'd chunk    (default 32)
 *   --save-golden F    also persist the golden-run record blob
 *   --hvf / --no-early-term     as marvel-cli
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include <unistd.h>

#include "accel/designs/designs.hh"
#include "common/cli.hh"
#include "common/config.hh"
#include "common/table.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "obs/metrics.hh"
#include "obs/openmetrics.hh"
#include "obs/profiler.hh"
#include "sched/heartbeat.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "store/serialize.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

struct Options
{
    std::string command;
    std::string preset = "riscv";
    std::string configFile;
    std::string workload;
    std::string driver;
    std::string target;
    std::vector<std::string> journals;
    std::string saveGolden;
    std::string connect; ///< status: watch a dispatch socket instead
    std::string outPath; ///< merge: write the canonical journal here
    unsigned faults = 200;
    fi::FaultModel model = fi::FaultModel::Transient;
    std::string faultModel;  ///< --fault-model canonical spec string
    bool faultModelSet = false;
    std::string targetFilter; ///< --target-filter constraint tokens
    u64 seed = 0x5eed;
    unsigned threads = 0;
    u32 shardIndex = 0;
    u32 shardCount = 1;
    unsigned chunkSize = 32;
    bool hvf = false;
    bool earlyTerm = true;
    bool follow = false;
    unsigned ladderRungs = 0; ///< fi::kLadderAuto for --ladder auto
    bool ladderSet = false;   ///< --ladder given (beats the INI)
    bool useLadder = true;
    bool prune = false;
    fi::CampaignOptions::EarlyStopSetting earlyStop =
        fi::CampaignOptions::EarlyStopSetting::Off;
};

const cli::Tool kTool = {
    "marvel-campaign",
    "usage: marvel-campaign {run|resume|status|merge|report} "
    "--journal FILE [--journal FILE ...]\n"
    "  run/resume: [--preset P] [--config F] [--workload W] "
    "[--driver D]\n"
    "              [--target T] [--faults N] [--model M] "
    "[--seed S]\n"
    "              [--fault-model SPEC | --target-filter FILTER]\n"
    "              [--threads N] [--shard I/N] [--chunk N]\n"
    "              [--save-golden F] [--hvf] [--no-early-term]\n"
    "              [--ladder N|auto|off] [--no-ladder] [--prune]\n"
    "              [--early-stop on|off|auto]\n"
    "  status:     [--follow] | [--connect unix:/path|host:port]\n"
    "  merge:      [--out FILE]   write the canonical journal\n"
    "  report:     phase/verdict wall-clock breakdown of finished\n"
    "              journals (profiler metrics + provenance fields)\n"
    "  any command: --help | --version\n"
    "  --ladder sets the golden checkpoint-ladder rung count\n"
    "  (campaign identity; also read from [campaign] "
    "ladder_rungs\n"
    "  in --config); --no-ladder keeps the geometry but restores\n"
    "  every run from the window start; --prune classifies\n"
    "  provably dead transient faults without simulating;\n"
    "  --early-stop ends a faulty run at the first golden ladder\n"
    "  rung whose state it matches (auto: on iff a ladder exists)\n",
};

/** Complain about one specific bad token, then the usage text. */
[[noreturn]] void
usageError(const char *what, const std::string &token)
{
    cli::usageError(kTool, what, token);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    if (argc < 2)
        usageError("missing subcommand", "");
    opts.command = argv[1];
    cli::handleStandardFlag(kTool, opts.command);
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("flag needs a value:", arg);
            return argv[++i];
        };
        if (arg == "--preset")
            opts.preset = next();
        else if (arg == "--config")
            opts.configFile = next();
        else if (arg == "--workload")
            opts.workload = next();
        else if (arg == "--driver")
            opts.driver = next();
        else if (arg == "--target")
            opts.target = next();
        else if (arg == "--journal")
            opts.journals.push_back(next());
        else if (arg == "--save-golden")
            opts.saveGolden = next();
        else if (arg == "--connect")
            opts.connect = next();
        else if (arg == "--out")
            opts.outPath = next();
        else if (arg == "--faults")
            opts.faults = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--seed")
            opts.seed = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--threads")
            opts.threads = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--chunk")
            opts.chunkSize =
                std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--shard") {
            const std::string spec = next();
            const std::size_t slash = spec.find('/');
            if (slash == std::string::npos)
                usageError("malformed --shard (want I/N):", spec);
            opts.shardIndex = static_cast<u32>(
                std::strtoul(spec.substr(0, slash).c_str(),
                             nullptr, 10));
            opts.shardCount = static_cast<u32>(std::strtoul(
                spec.substr(slash + 1).c_str(), nullptr, 10));
        } else if (arg == "--model") {
            const std::string m = next();
            if (m == "transient")
                opts.model = fi::FaultModel::Transient;
            else if (m == "stuck-at-0")
                opts.model = fi::FaultModel::StuckAt0;
            else if (m == "stuck-at-1")
                opts.model = fi::FaultModel::StuckAt1;
            else
                usageError("unknown fault model", m);
        } else if (arg == "--fault-model") {
            opts.faultModel = next();
            opts.faultModelSet = true;
        } else if (arg == "--target-filter") {
            opts.targetFilter = next();
        } else if (arg == "--ladder") {
            const std::string spec = next();
            opts.ladderSet = true;
            if (spec == "auto")
                opts.ladderRungs = fi::kLadderAuto;
            else if (spec == "off")
                opts.ladderRungs = 0;
            else {
                char *end = nullptr;
                opts.ladderRungs = static_cast<unsigned>(
                    std::strtoul(spec.c_str(), &end, 10));
                if (!end || *end != '\0')
                    usageError("malformed --ladder (want N, auto or "
                               "off):", spec);
            }
        } else if (arg == "--early-stop") {
            const std::string spec = next();
            if (spec == "on")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::On;
            else if (spec == "off")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::Off;
            else if (spec == "auto")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::Auto;
            else
                usageError("malformed --early-stop (want on, off or "
                           "auto):", spec);
        } else if (arg == "--no-ladder")
            opts.useLadder = false;
        else if (arg == "--prune")
            opts.prune = true;
        else if (arg == "--hvf")
            opts.hvf = true;
        else if (arg == "--no-early-term")
            opts.earlyTerm = false;
        else if (arg == "--follow")
            opts.follow = true;
        else
            usageError("unknown flag", arg);
    }
    return opts;
}

/**
 * The campaign's ladder-rung request: --ladder when given, otherwise
 * the `[campaign] ladder_rungs` key of the --config INI (the builder
 * ignores unknown sections, so the same file describes both). The
 * value "auto" maps to fi::kLadderAuto in both spellings.
 */
unsigned
ladderRungsFor(const Options &opts)
{
    if (opts.ladderSet || opts.configFile.empty())
        return opts.ladderRungs;
    const ConfigFile file = ConfigFile::parseFile(opts.configFile);
    const ConfigFile::Section *section = file.first("campaign");
    if (!section || !section->has("ladder_rungs"))
        return opts.ladderRungs;
    if (section->get("ladder_rungs", "") == "auto")
        return fi::kLadderAuto;
    return static_cast<unsigned>(section->getU64("ladder_rungs", 0));
}

/**
 * The campaign's fault-model spec: --fault-model wins, then
 * --target-filter (shorthand for a targeted spec built from its
 * constraint tokens), then the `[fault_model]` section of --config,
 * then the legacy single-bit default. The flags are exclusive —
 * --fault-model already carries any filter inline.
 */
fi::FaultModelSpec
modelSpecFor(const Options &opts)
{
    if (opts.faultModelSet && !opts.targetFilter.empty())
        usageError("--fault-model and --target-filter are exclusive "
                   "(fold the filter into the spec):",
                   opts.targetFilter);
    if (opts.faultModelSet)
        return fi::FaultModelSpec::parse(opts.faultModel);
    if (!opts.targetFilter.empty())
        return fi::FaultModelSpec::parse("targeted " +
                                         opts.targetFilter);
    if (!opts.configFile.empty())
        return fi::FaultModelSpec::fromConfig(
            ConfigFile::parseFile(opts.configFile));
    return fi::FaultModelSpec{};
}

soc::SystemConfig
systemFor(const Options &opts)
{
    soc::SystemConfig cfg =
        opts.configFile.empty() ? soc::preset(opts.preset)
                                : soc::configFromFile(opts.configFile);
    if (!opts.driver.empty() && cfg.cluster.designs.empty())
        cfg.cluster.designs.push_back(accel::designs::makeByName(
            opts.driver, kAccelSpaceBase));
    return cfg;
}

workloads::Workload
workloadFor(const Options &opts)
{
    if (!opts.driver.empty())
        return workloads::accelDriver(opts.driver, 0);
    if (!opts.workload.empty())
        return workloads::get(opts.workload);
    fatal("marvel-campaign: need --workload or --driver");
}

fi::FaultModel
modelFromName(const std::string &name)
{
    if (name == "transient")
        return fi::FaultModel::Transient;
    if (name == "stuck-at-0")
        return fi::FaultModel::StuckAt0;
    if (name == "stuck-at-1")
        return fi::FaultModel::StuckAt1;
    fatal("marvel-campaign: journal names unknown model '%s'",
          name.c_str());
}

void
printResult(const std::string &title, const fi::CampaignResult &res,
            bool hvf)
{
    TextTable table(title);
    table.header({"metric", "value"});
    table.row({"faults",
               strfmt("%llu", (unsigned long long)res.total())});
    table.row({"fault population",
               strfmt("%.3g bit-cycles", res.population())});
    const double margin = res.errorMargin() * 100;
    table.row({"error margin (95%)", strfmt("+/-%.2f%%", margin)});
    table.row({"AVF", strfmt("%.2f%% (+/-%.2f%%)",
                             res.avf() * 100, margin)});
    table.row({"SDC AVF", strfmt("%.2f%% (+/-%.2f%%)",
                                 res.sdcAvf() * 100, margin)});
    table.row({"Crash AVF", strfmt("%.2f%% (+/-%.2f%%)",
                                   res.crashAvf() * 100, margin)});
    if (hvf)
        table.row({"HVF", strfmt("%.2f%% (+/-%.2f%%)",
                                 res.hvf() * 100, margin)});
    table.row({"masked / early / invalid",
               strfmt("%llu / %llu / %llu",
                      (unsigned long long)res.masked,
                      (unsigned long long)res.maskedEarly,
                      (unsigned long long)res.maskedInvalid)});
    if (res.pruned)
        table.row({"pruned (no simulation)",
                   strfmt("%llu", (unsigned long long)res.pruned)});
    if (res.maskedInAccel)
        table.row({"masked in accelerator",
                   strfmt("%llu",
                          (unsigned long long)res.maskedInAccel)});
    table.row({"sdc", strfmt("%llu", (unsigned long long)res.sdc)});
    table.row({"crash / timeouts",
               strfmt("%llu / %llu",
                      (unsigned long long)res.crash,
                      (unsigned long long)res.timeouts)});
    table.print();
}

fi::GoldenRun
goldenFor(const Options &opts, const workloads::Workload &wl,
          const soc::SystemConfig &cfg, unsigned ladderRungs)
{
    const isa::Program prog = isa::compile(wl.module, cfg.cpu.isa);
    std::printf("golden run (%s, %s)...\n", wl.name.c_str(),
                isa::isaName(cfg.cpu.isa));
    fi::GoldenRun golden =
        fi::runGolden(cfg, prog, 500'000'000, ladderRungs);
    std::printf("  window %llu cycles, total %llu cycles, "
                "arch digest %016llx\n",
                static_cast<unsigned long long>(golden.windowCycles),
                static_cast<unsigned long long>(golden.totalCycles),
                static_cast<unsigned long long>(
                    soc::archStateDigest(golden.checkpoint.view())));
    if (!golden.ladder.empty())
        std::printf("  checkpoint ladder: %zu rung(s), first at "
                    "cycle %llu, last at %llu\n",
                    golden.ladder.size(),
                    static_cast<unsigned long long>(
                        golden.ladder.front().cycle),
                    static_cast<unsigned long long>(
                        golden.ladder.back().cycle));
    if (!opts.saveGolden.empty()) {
        store::saveGoldenRun(opts.saveGolden, golden);
        std::printf("  golden record saved to %s\n",
                    opts.saveGolden.c_str());
    }
    return golden;
}

int
cmdRun(const Options &opts, bool resume)
{
    if (opts.journals.size() != 1)
        fatal("marvel-campaign: %s needs exactly one --journal",
              resume ? "resume" : "run");
    const std::string &journalPath = opts.journals[0];

    const soc::SystemConfig cfg = systemFor(opts);
    const workloads::Workload wl = workloadFor(opts);

    fi::CampaignOptions copts;
    copts.numFaults = opts.faults;
    copts.model = opts.model;
    copts.modelSpec = modelSpecFor(opts);
    copts.seed = opts.seed;
    copts.threads = opts.threads;
    copts.computeHvf = opts.hvf;
    copts.earlyTermination = opts.earlyTerm;
    copts.journalPath = journalPath;
    copts.resume = resume;
    copts.shardIndex = opts.shardIndex;
    copts.shardCount = opts.shardCount;
    copts.chunkSize = opts.chunkSize;
    copts.workloadName = wl.name;
    copts.ladderRungs = ladderRungsFor(opts);
    copts.useLadder = opts.useLadder;
    copts.prune = opts.prune;
    copts.earlyStop = opts.earlyStop;

    std::string targetName = opts.target;
    if (resume) {
        // The journal's meta record is the campaign identity; the
        // command line only has to rebuild the same golden run.
        if (!store::journalExists(journalPath))
            fatal("marvel-campaign: no journal at '%s' to resume",
                  journalPath.c_str());
        const store::Journal journal =
            store::readJournal(journalPath);
        const store::JournalMeta &meta = journal.meta;
        copts.numFaults = static_cast<unsigned>(meta.numFaults);
        copts.seed = meta.seed;
        copts.model = modelFromName(meta.model);
        // The journaled spec wins over any flag/config: a resume
        // continues the recorded fault population (absent field =
        // legacy single-bit). checkJournalMatches would reject a
        // disagreement anyway; re-deriving from the meta makes the
        // launch flags optional.
        copts.modelSpec = fi::FaultModelSpec::parse(meta.faultModel);
        copts.shardIndex = meta.shardIndex;
        copts.shardCount = meta.shardCount;
        // Run options shape verdicts, so the journal's record wins
        // over the command line — a resume continues the campaign
        // that was started, not a subtly different one.
        copts.computeHvf = meta.optHvf != 0;
        copts.earlyTermination = meta.optEarlyTerm != 0;
        copts.timeoutFactor =
            static_cast<double>(meta.timeoutFactorMilli) / 1000.0;
        // The meta's ladder count is already resolved (never auto),
        // so rebuilding with it reproduces the journaled geometry;
        // pruning is likewise part of the campaign identity.
        copts.ladderRungs = meta.ladderRungs;
        copts.prune = meta.optPrune != 0;
        // The meta's early-stop mode is likewise resolved on/off.
        copts.earlyStop =
            meta.optEarlyStop
                ? fi::CampaignOptions::EarlyStopSetting::On
                : fi::CampaignOptions::EarlyStopSetting::Off;
        targetName = meta.target;
        std::printf("resuming %s: %llu/%llu verdicts journaled%s\n",
                    journalPath.c_str(),
                    static_cast<unsigned long long>(
                        sched::shardProgress(journalPath).done),
                    static_cast<unsigned long long>(sched::shardShare(
                        meta.numFaults, meta.shardIndex,
                        meta.shardCount)),
                    journal.droppedTornLine
                        ? " (dropped a torn final line)"
                        : "");
    } else {
        if (targetName.empty())
            fatal("marvel-campaign: run needs --target");
        if (store::journalExists(journalPath))
            fatal("marvel-campaign: journal '%s' already exists; "
                  "use `resume` to continue it or remove it first",
                  journalPath.c_str());
    }

    const fi::GoldenRun golden =
        goldenFor(opts, wl, cfg, copts.ladderRungs);
    const fi::TargetRef target =
        fi::targetByName(golden.checkpoint.view(), targetName);
    obs::CampaignTelemetry telemetry;
    copts.telemetry = &telemetry;
    const fi::CampaignResult res =
        sched::runCampaign(golden, target, copts);

    const std::string shardNote =
        copts.shardCount > 1
            ? strfmt(" [shard %u/%u]", copts.shardIndex,
                     copts.shardCount)
            : std::string();
    printResult("campaign: " + wl.name + " / " + targetName +
                    shardNote,
                res, copts.computeHvf);
    if (telemetry.runs > 0)
        std::fputs(obs::formatCampaignMetrics(telemetry).c_str(),
                   stdout);
    if (copts.shardCount > 1)
        std::printf("shard journals merge with: marvel-campaign "
                    "merge --journal ...\n");
    return 0;
}

int
cmdStatusFollow(const Options &opts)
{
    // Tail the heartbeat files until every journal reports complete.
    // A missing heartbeat is normal (campaign not started yet, or an
    // old journal): fall back to the journal itself when it exists.
    for (;;) {
        bool allComplete = true;
        std::vector<sched::Heartbeat> beats;
        for (const std::string &path : opts.journals) {
            sched::Heartbeat beat;
            if (sched::readHeartbeat(sched::heartbeatPath(path),
                                     beat)) {
                std::printf("%s: %s\n", path.c_str(),
                            sched::formatHeartbeat(beat).c_str());
                allComplete = allComplete && beat.complete;
                beats.push_back(beat);
            } else if (store::journalExists(path)) {
                const sched::ShardProgress p =
                    sched::shardProgress(path);
                std::printf(
                    "%s: %llu/%llu journaled (no heartbeat)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(p.done),
                    static_cast<unsigned long long>(p.expected));
                allComplete = allComplete && p.complete();
            } else {
                std::printf("%s: waiting for journal\n",
                            path.c_str());
                allComplete = false;
            }
        }
        // The campaign-wide line: every live shard folded into one
        // done/expected, one combined rate, one whole-campaign ETA.
        if (beats.size() > 1)
            std::printf("campaign: %s\n",
                        sched::formatHeartbeat(
                            sched::aggregateHeartbeats(beats))
                            .c_str());
        std::fflush(stdout);
        if (allComplete)
            return 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
}

/**
 * One indented row per worker from a Metrics scrape, so `status
 * --connect` shows WHO is doing the work, not just the aggregate
 * heartbeat line. Quietly does nothing on a scrape that fails to
 * parse — the feed's heartbeat lines are the load-bearing output.
 */
void
printWorkerRows(const std::string &scrape)
{
    std::vector<obs::MetricSample> samples;
    if (!obs::parseOpenMetrics(scrape, samples))
        return;
    std::vector<std::string> workers;
    for (const obs::MetricSample &s : samples)
        if (s.name == "marvel_worker_verdicts_total")
            workers.push_back(s.label("worker"));
    std::sort(workers.begin(), workers.end());
    for (const std::string &w : workers) {
        auto val = [&](const char *name) -> double {
            const obs::MetricSample *s =
                obs::findSample(samples, name, w);
            return s ? s->value : 0.0;
        };
        const double busy = val("marvel_worker_busy_seconds_total");
        const double verdicts = val("marvel_worker_verdicts_total");
        const u64 lease =
            static_cast<u64>(val("marvel_worker_current_lease"));
        const std::string leaseNote =
            lease ? strfmt("lease %llu",
                           static_cast<unsigned long long>(lease))
                  : std::string("idle");
        std::printf("  %-12s %6.0f verdicts  %5.1f/s  busy %.1fs  "
                    "%s  seen %.1fs ago\n",
                    w.c_str(), verdicts,
                    busy > 0 ? verdicts / busy : 0.0, busy,
                    leaseNote.c_str(),
                    val("marvel_worker_last_seen_seconds"));
    }
}

/**
 * Watcher mode: subscribe to a marvel-campaignd status feed. The
 * daemon pushes its heartbeat JSON on every beat; print each one
 * (with per-worker rows scraped from the Metrics endpoint) and exit
 * cleanly once the campaign completes (or the daemon goes away).
 */
int
cmdStatusConnect(const Options &opts)
{
    const net::Endpoint endpoint = net::parseEndpoint(opts.connect);
    const int fd = net::connectTo(endpoint);
    if (fd < 0)
        fatal("marvel-campaign: cannot connect to %s: %s",
              endpoint.str().c_str(), std::strerror(errno));

    auto send = [&](net::MsgType type) {
        std::string out;
        net::encodeFrame({type, ""}, out);
        return net::sendAll(fd, out);
    };
    if (!send(net::MsgType::StatusSubscribe)) {
        ::close(fd);
        fatal("marvel-campaign: %s closed the connection",
              endpoint.str().c_str());
    }

    net::FrameReader reader;
    std::string buf;
    for (;;) {
        net::Frame frame;
        while (reader.next(frame)) {
            if (frame.type == net::MsgType::Metrics) {
                printWorkerRows(frame.payload);
                std::fflush(stdout);
                continue;
            }
            if (frame.type != net::MsgType::StatusUpdate)
                continue;
            sched::Heartbeat beat;
            if (!sched::parseHeartbeatJson(frame.payload, beat))
                continue;
            std::printf("%s: %s\n", endpoint.str().c_str(),
                        sched::formatHeartbeat(beat).c_str());
            std::fflush(stdout);
            if (beat.complete) {
                ::close(fd);
                return 0;
            }
            // Chase each beat with a fleet scrape; the reply frame
            // arrives interleaved with the status feed.
            send(net::MsgType::Metrics);
        }
        if (reader.poisoned()) {
            ::close(fd);
            fatal("marvel-campaign: malformed frame from %s",
                  endpoint.str().c_str());
        }
        buf.clear();
        const long n = net::recvSome(fd, buf);
        if (n <= 0) {
            // Daemon gone without a final complete beat: the campaign
            // may have been interrupted — say so, don't pretend.
            ::close(fd);
            std::printf("%s: daemon disconnected\n",
                        endpoint.str().c_str());
            return 3;
        }
        reader.feed(buf.data(), buf.size());
    }
}

int
cmdStatus(const Options &opts)
{
    if (!opts.connect.empty())
        return cmdStatusConnect(opts);
    if (opts.journals.empty())
        fatal("marvel-campaign: status needs --journal "
              "(or --connect)");
    if (opts.follow)
        return cmdStatusFollow(opts);
    TextTable table("campaign status");
    table.header({"journal", "target", "shard", "done", "chunks",
                  "masked", "sdc", "crash", "AVF (95% CI)",
                  "runs/s", "note"});
    for (const std::string &path : opts.journals) {
        const sched::ShardProgress p = sched::shardProgress(path);
        // Live throughput comes from the heartbeat when one exists;
        // the AVF and its achieved margin come straight from the
        // journaled verdicts.
        sched::Heartbeat beat;
        const bool haveBeat =
            sched::readHeartbeat(sched::heartbeatPath(path), beat);
        table.row(
            {path, p.meta.target,
             strfmt("%u/%u", p.meta.shardIndex, p.meta.shardCount),
             strfmt("%llu/%llu",
                    static_cast<unsigned long long>(p.done),
                    static_cast<unsigned long long>(p.expected)),
             strfmt("%llu", static_cast<unsigned long long>(
                                p.chunksCommitted)),
             strfmt("%llu", (unsigned long long)p.partial.masked),
             strfmt("%llu", (unsigned long long)p.partial.sdc),
             strfmt("%llu", (unsigned long long)p.partial.crash),
             strfmt("%.2f%% +/-%.2f%%", p.partial.avf() * 100,
                    p.partial.errorMargin() * 100),
             haveBeat ? strfmt("%.1f", beat.runsPerSec)
                      : std::string("-"),
             p.complete() ? "complete"
                          : (p.tornTail ? "torn tail" : "partial")});
    }
    table.print();
    return 0;
}

int
cmdMerge(const Options &opts)
{
    if (opts.journals.empty())
        fatal("marvel-campaign: merge needs --journal");
    // mergeJournals does the identity/hole/overlap validation; only
    // after it accepts the set is a canonical file worth writing.
    const fi::CampaignResult res =
        sched::mergeJournals(opts.journals);
    printResult(strfmt("merged campaign: %s / %s (%zu journals)",
                       res.workload.c_str(),
                       res.target.name.c_str(),
                       opts.journals.size()),
                res, res.hvfCorruptions > 0);
    if (!opts.outPath.empty()) {
        std::vector<store::JournalVerdict> verdicts;
        store::JournalMeta meta;
        for (const std::string &path : opts.journals) {
            const store::Journal journal = store::readJournal(path);
            if (verdicts.empty())
                meta = journal.meta;
            verdicts.insert(verdicts.end(),
                            journal.verdicts.begin(),
                            journal.verdicts.end());
        }
        store::writeCanonicalJournal(opts.outPath, meta, verdicts);
        std::printf("canonical journal written to %s\n",
                    opts.outPath.c_str());
    }
    return 0;
}

/** wall_us percentile over a sorted sample set (nearest-rank). */
u64
percentile(const std::vector<u64> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
}

int
cmdReport(const Options &opts)
{
    if (opts.journals.empty())
        fatal("marvel-campaign: report needs --journal");

    std::array<u64, obs::profiler::kNumPhases> phaseMicros{};
    u64 wallMillis = 0;
    bool haveMetrics = false;
    // Verdict classes keyed by outcome, pruned split out: a pruned
    // fault's wall time measures the profile lookup, not simulation.
    struct ClassRow
    {
        u64 count = 0;
        u64 withProv = 0;
        std::vector<u64> wallUs;
    };
    std::map<std::string, ClassRow> classes;
    u64 stopped = 0;    ///< provenance says a rung match ended the run
    u64 earlyStops = 0; ///< metrics-record counter, summed over shards

    for (const std::string &path : opts.journals) {
        const store::Journal journal = store::readJournal(path);
        if (!journal.hasMeta)
            fatal("marvel-campaign: '%s' has no journal meta record",
                  path.c_str());
        if (journal.hasMetrics) {
            haveMetrics = true;
            for (std::size_t p = 0; p < phaseMicros.size(); ++p)
                phaseMicros[p] += journal.metrics.phaseMicros[p];
            // Shard journals ran concurrently, but their metrics
            // records measure disjoint processes; summing gives the
            // total compute wall-clock the campaign consumed.
            wallMillis += journal.metrics.wallMillis;
            earlyStops += journal.metrics.earlyStops;
        }
        std::unordered_set<u64> seen;
        for (const store::JournalVerdict &jv : journal.verdicts) {
            if (!seen.insert(jv.idx).second)
                continue; // first record per index wins, as always
            const bool pruned =
                jv.verdict.detail ==
                    fi::OutcomeDetail::MaskedPruned &&
                jv.verdict.cyclesRun == 0;
            ClassRow &row =
                classes[pruned ? "pruned"
                               : fi::outcomeName(jv.verdict.outcome)];
            ++row.count;
            if (jv.prov.present) {
                ++row.withProv;
                row.wallUs.push_back(jv.prov.wallMicros);
                if (jv.prov.stoppedRung)
                    ++stopped;
            }
        }
    }

    if (haveMetrics) {
        TextTable table("wall-clock phase breakdown");
        table.header({"phase", "seconds", "share"});
        u64 totalMicros = 0;
        for (const u64 us : phaseMicros)
            totalMicros += us;
        for (std::size_t p = 0; p < phaseMicros.size(); ++p) {
            if (!phaseMicros[p])
                continue;
            table.row(
                {obs::profiler::phaseName(
                     static_cast<obs::profiler::Phase>(p)),
                 strfmt("%.3f",
                        static_cast<double>(phaseMicros[p]) / 1e6),
                 strfmt("%5.1f%%",
                        totalMicros
                            ? 100.0 *
                                  static_cast<double>(phaseMicros[p]) /
                                  static_cast<double>(totalMicros)
                            : 0.0)});
        }
        table.print();
    } else {
        std::printf("no metrics record found (campaign still "
                    "running, or written by an older build) — "
                    "phase table unavailable\n");
    }

    TextTable verdicts("per-verdict wall time");
    verdicts.header({"class", "count", "p50 ms", "p95 ms", "max ms"});
    for (auto &[name, row] : classes) {
        std::sort(row.wallUs.begin(), row.wallUs.end());
        auto ms = [](u64 us) {
            return strfmt("%.2f", static_cast<double>(us) / 1000.0);
        };
        verdicts.row(
            {name, strfmt("%llu", (unsigned long long)row.count),
             row.wallUs.empty() ? "-"
                                : ms(percentile(row.wallUs, 0.50)),
             row.wallUs.empty() ? "-"
                                : ms(percentile(row.wallUs, 0.95)),
             row.wallUs.empty() ? "-" : ms(row.wallUs.back())});
        if (row.withProv < row.count)
            std::printf("note: %llu %s verdict(s) carry no "
                        "provenance (journaled by an older build)\n",
                        static_cast<unsigned long long>(
                            row.count - row.withProv),
                        name.c_str());
    }
    verdicts.print();

    if (stopped || earlyStops)
        std::printf("early stops: %llu verdict(s) fabricated at a "
                    "converged rung (metrics record: %llu)\n",
                    static_cast<unsigned long long>(stopped),
                    static_cast<unsigned long long>(earlyStops));

    // Machine-greppable summary, consumed by the observability smoke
    // test's "phases sum to ~campaign wall-clock" check.
    u64 totalMicros = 0;
    for (const u64 us : phaseMicros)
        totalMicros += us;
    std::printf("phase-total-seconds %.3f\n",
                static_cast<double>(totalMicros) / 1e6);
    std::printf("campaign-wall-seconds %.3f\n",
                static_cast<double>(wallMillis) / 1000.0);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        if (opts.command == "run")
            return cmdRun(opts, false);
        if (opts.command == "resume")
            return cmdRun(opts, true);
        if (opts.command == "status")
            return cmdStatus(opts);
        if (opts.command == "merge")
            return cmdMerge(opts);
        if (opts.command == "report")
            return cmdReport(opts);
        usageError("unknown subcommand", opts.command);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
