/**
 * @file
 * marvel-top — live fleet view of a marvel-campaignd campaign.
 *
 * Where `marvel-campaign status --connect` is a scrolling feed,
 * marvel-top is the glanceable dashboard: it subscribes to the
 * daemon's status feed (the same StatusSubscribe plumbing), chases
 * every beat with a Metrics scrape, and redraws one screen —
 * campaign progress + ETA on top, one row per worker underneath
 * (verdict throughput, wall-clock phase split, held lease, last-seen
 * age). It exits 0 once the campaign completes, 3 if the daemon goes
 * away first (matching the other tools' "interrupted" convention).
 *
 * Usage:
 *   marvel-top --connect unix:/path|host:port [--once]
 *   marvel-top --help | --version
 *
 * --once renders a single frame (first scrape) without touching the
 * terminal modes — the form CI and scripts consume.
 */

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/cli.hh"
#include "common/log.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "obs/openmetrics.hh"

using namespace marvel;

namespace
{

struct Options
{
    std::string connect;
    bool once = false;
    bool raw = false;
};

const cli::Tool kTool = {
    "marvel-top",
    "usage: marvel-top --connect unix:/path|host:port "
    "[--once] [--raw]\n"
    "       marvel-top --help | --version\n"
    "  --once  print one snapshot and exit (no screen redraw)\n"
    "  --raw   with --once: print the OpenMetrics scrape verbatim\n"
    "          (the form scripts/validate_metrics.py consumes)\n",
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        if (arg == "--connect") {
            if (i + 1 >= argc)
                cli::usageError(kTool, "flag needs a value:", arg);
            opts.connect = argv[++i];
        } else if (arg == "--once")
            opts.once = true;
        else if (arg == "--raw")
            opts.raw = true;
        else
            cli::usageError(kTool, "unknown flag", arg);
    }
    if (opts.connect.empty())
        cli::usageError(kTool, "missing --connect", "");
    if (opts.raw && !opts.once)
        cli::usageError(kTool, "--raw needs --once", "");
    return opts;
}

double
sampleValue(const std::vector<obs::MetricSample> &samples,
            const char *name, const std::string &worker)
{
    const obs::MetricSample *s =
        obs::findSample(samples, name, worker);
    return s ? s->value : 0.0;
}

/**
 * Compact phase split for one worker: the top phases of its own
 * wall-clock, e.g. "sim 84% sock 11% ff 4%". Workers mostly simulate;
 * a worker that is mostly `sock` is starved for leases.
 */
std::string
phaseSplit(const std::vector<obs::MetricSample> &samples,
           const std::string &worker)
{
    struct Share
    {
        std::string phase;
        double seconds = 0;
    };
    std::vector<Share> shares;
    double total = 0;
    for (const obs::MetricSample &s : samples) {
        if (s.name != "marvel_worker_phase_seconds_total" ||
            s.label("worker") != worker || s.value <= 0)
            continue;
        shares.push_back({s.label("phase"), s.value});
        total += s.value;
    }
    if (total <= 0)
        return "-";
    std::sort(shares.begin(), shares.end(),
              [](const Share &a, const Share &b) {
                  return a.seconds > b.seconds;
              });
    // Short aliases keep the row narrow.
    auto alias = [](const std::string &phase) -> std::string {
        if (phase == "simulate")
            return "sim";
        if (phase == "socket_wait")
            return "sock";
        if (phase == "fast_forward")
            return "ff";
        if (phase == "classify")
            return "cls";
        if (phase == "journal_io")
            return "jrnl";
        if (phase == "golden_build")
            return "gold";
        if (phase == "rung_capture")
            return "rung";
        if (phase == "stop_check")
            return "stop";
        return phase;
    };
    std::string out;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, shares.size());
         ++i) {
        if (!out.empty())
            out += ' ';
        out += strfmt("%s %.0f%%", alias(shares[i].phase).c_str(),
                      100.0 * shares[i].seconds / total);
    }
    return out;
}

/** Render one full frame from a scrape; true when campaign done. */
bool
renderFrame(const std::string &scrape, bool redraw)
{
    std::vector<obs::MetricSample> samples;
    if (!obs::parseOpenMetrics(scrape, samples))
        return false;
    auto campaign = [&](const char *name) {
        return sampleValue(samples, name, std::string());
    };

    if (redraw)
        std::fputs("\033[H\033[J", stdout); // home + clear below

    const double done = campaign("marvel_campaign_runs_total");
    const double expected = campaign("marvel_campaign_expected_runs");
    const double eta = campaign("marvel_campaign_eta_seconds");
    const bool complete = campaign("marvel_campaign_complete") != 0;
    const double stops =
        campaign("marvel_campaign_early_stops_total");
    std::string stopsNote;
    if (stops > 0)
        stopsNote = strfmt("  stops %.0f", stops);
    std::printf(
        "campaign  %.0f/%.0f (%.1f%%)  %.1f runs/s  AVF %.2f%%%s  "
        "%s\n",
        done, expected,
        expected > 0 ? 100.0 * done / expected : 0.0,
        campaign("marvel_campaign_runs_per_second"),
        100.0 * campaign("marvel_campaign_avf"), stopsNote.c_str(),
        complete  ? "done"
        : eta > 0 ? strfmt("eta %.0fs", eta).c_str()
                  : "eta ?");
    std::printf(
        "dispatch  leases %.0f granted / %.0f done / %.0f expired / "
        "%.0f re-queued   uptime %.0fs\n\n",
        campaign("marvel_dispatch_leases_granted_total"),
        campaign("marvel_dispatch_leases_completed_total"),
        campaign("marvel_dispatch_leases_expired_total"),
        campaign("marvel_dispatch_leases_requeued_total"),
        campaign("marvel_campaign_uptime_seconds"));

    std::vector<std::string> workers;
    for (const obs::MetricSample &s : samples)
        if (s.name == "marvel_worker_verdicts_total")
            workers.push_back(s.label("worker"));
    std::sort(workers.begin(), workers.end());
    std::printf("%-14s %9s %7s %-24s %-10s %s\n", "worker",
                "verdicts", "rate", "phase split", "lease",
                "last seen");
    for (const std::string &w : workers) {
        const double verdicts =
            sampleValue(samples, "marvel_worker_verdicts_total", w);
        const double busy = sampleValue(
            samples, "marvel_worker_busy_seconds_total", w);
        const u64 lease = static_cast<u64>(
            sampleValue(samples, "marvel_worker_current_lease", w));
        std::printf(
            "%-14s %9.0f %6.1f/s %-24s %-10s %.1fs ago\n", w.c_str(),
            verdicts, busy > 0 ? verdicts / busy : 0.0,
            phaseSplit(samples, w).c_str(),
            lease ? strfmt("#%llu",
                           static_cast<unsigned long long>(lease))
                        .c_str()
                  : "idle",
            sampleValue(samples, "marvel_worker_last_seen_seconds",
                        w));
    }
    if (workers.empty())
        std::printf("(no workers have connected yet)\n");
    std::fflush(stdout);
    return complete;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        const net::Endpoint endpoint =
            net::parseEndpoint(opts.connect);
        const int fd = net::connectTo(endpoint);
        if (fd < 0)
            fatal("marvel-top: cannot connect to %s: %s",
                  endpoint.str().c_str(), std::strerror(errno));

        auto send = [&](net::MsgType type) {
            std::string out;
            net::encodeFrame({type, ""}, out);
            return net::sendAll(fd, out);
        };
        // The status feed is the clock: every StatusUpdate triggers
        // one Metrics scrape, so the redraw cadence follows the
        // daemon's heartbeat without a second timer.
        if (!send(net::MsgType::StatusSubscribe) ||
            !send(net::MsgType::Metrics)) {
            ::close(fd);
            fatal("marvel-top: %s closed the connection",
                  endpoint.str().c_str());
        }

        net::FrameReader reader;
        std::string buf;
        bool firstFrame = true;
        for (;;) {
            net::Frame frame;
            while (reader.next(frame)) {
                if (frame.type == net::MsgType::StatusUpdate) {
                    send(net::MsgType::Metrics);
                    continue;
                }
                if (frame.type != net::MsgType::Metrics)
                    continue;
                if (opts.raw) {
                    std::fwrite(frame.payload.data(), 1,
                                frame.payload.size(), stdout);
                    ::close(fd);
                    return 0;
                }
                const bool complete = renderFrame(
                    frame.payload, !opts.once && !firstFrame);
                firstFrame = false;
                if (opts.once || complete) {
                    ::close(fd);
                    return 0;
                }
            }
            if (reader.poisoned()) {
                ::close(fd);
                fatal("marvel-top: malformed frame from %s",
                      endpoint.str().c_str());
            }
            buf.clear();
            const long n = net::recvSome(fd, buf);
            if (n <= 0) {
                ::close(fd);
                std::printf("%s: daemon disconnected\n",
                            endpoint.str().c_str());
                return 3;
            }
            reader.feed(buf.data(), buf.size());
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
