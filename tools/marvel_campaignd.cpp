/**
 * @file
 * marvel-campaignd — the distributed-campaign work-dispenser daemon.
 *
 * One daemon owns one campaign: it builds the golden run, opens (or
 * resumes) the whole-campaign verdict journal, then listens on a
 * dispatch socket and leases contiguous fault-index ranges to
 * marvel-worker processes. Workers stream verdicts back as journal
 * records; the daemon appends them through the same crash-safe
 * JournalWriter a single-process run uses, so the artifact it leaves
 * behind IS a normal campaign journal — `marvel-campaign status`,
 * `merge`, `resume` and `marvel-trace replay` all work on it
 * unchanged.
 *
 * Fault tolerance:
 *   - a worker that dies mid-lease is caught by the lease TTL (or by
 *     its connection dropping); the unfinished indices re-queue and
 *     another worker picks them up;
 *   - a daemon that dies is covered by the journal (completed work)
 *     plus the <journal>.leases table (promised work): restart the
 *     same command line and it resumes mid-campaign without
 *     double-granting in-flight ranges.
 *
 * Usage:
 *   marvel-campaignd --listen unix:/tmp/m.sock --journal camp.jsonl
 *                    --workload sha --target l1d [--faults N]
 *                    [--seed S] [--model M] [--ladder N|auto|off]
 *                    [--prune] [--hvf] [--no-early-term]
 *                    [--ttl-ms N] [--lease N] [--chunk N]
 *                    [--preset P | --config F] [--driver D]
 *
 * Re-running over an existing journal resumes it (identity checked);
 * campaign parameters then come from the journal meta.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "accel/designs/designs.hh"
#include "common/cli.hh"
#include "common/config.hh"
#include "net/daemon.hh"
#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

const cli::Tool kTool = {
    "marvel-campaignd",
    "usage: marvel-campaignd --listen ADDR --journal FILE\n"
    "                        --workload W|--driver D --target T\n"
    "  ADDR: unix:/path/to.sock | host:port (port 0 = kernel picks)\n"
    "  campaign: [--faults N] [--seed S]\n"
    "            [--model transient|stuck-at-0|stuck-at-1]\n"
    "            [--fault-model SPEC | --target-filter FILTER]\n"
    "            [--ladder N|auto|off] [--prune] [--hvf]\n"
    "            [--no-early-term] [--early-stop on|off|auto]\n"
    "  system:   [--preset P] [--config F]\n"
    "  dispatch: [--ttl-ms N]  lease TTL (default 30000)\n"
    "            [--lease N]   max faults per lease (default 8)\n"
    "            [--chunk N]   verdicts per chunk (default 16)\n"
    "  re-running over an existing journal resumes the campaign;\n"
    "  <journal>.leases carries in-flight leases across restarts\n",
};

struct Options
{
    std::string listen;
    std::string journal;
    std::string preset = "riscv";
    std::string configFile;
    std::string workload;
    std::string driver;
    std::string target;
    unsigned faults = 200;
    fi::FaultModel model = fi::FaultModel::Transient;
    std::string faultModel;
    bool faultModelSet = false;
    std::string targetFilter;
    u64 seed = 0x5eed;
    bool hvf = false;
    bool earlyTerm = true;
    bool prune = false;
    unsigned ladderRungs = 0;
    fi::CampaignOptions::EarlyStopSetting earlyStop =
        fi::CampaignOptions::EarlyStopSetting::Off;
    u64 ttlMillis = 30'000;
    u64 leaseFaults = 8;
    u64 chunk = 16;
};

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                cli::usageError(kTool, "flag needs a value:", arg);
            return argv[++i];
        };
        if (arg == "--listen")
            opts.listen = next();
        else if (arg == "--journal")
            opts.journal = next();
        else if (arg == "--preset")
            opts.preset = next();
        else if (arg == "--config")
            opts.configFile = next();
        else if (arg == "--workload")
            opts.workload = next();
        else if (arg == "--driver")
            opts.driver = next();
        else if (arg == "--target")
            opts.target = next();
        else if (arg == "--faults")
            opts.faults = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--seed")
            opts.seed = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--ttl-ms")
            opts.ttlMillis =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--lease")
            opts.leaseFaults =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--chunk")
            opts.chunk = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--model") {
            const std::string m = next();
            if (m == "transient")
                opts.model = fi::FaultModel::Transient;
            else if (m == "stuck-at-0")
                opts.model = fi::FaultModel::StuckAt0;
            else if (m == "stuck-at-1")
                opts.model = fi::FaultModel::StuckAt1;
            else
                cli::usageError(kTool, "unknown fault model", m);
        } else if (arg == "--fault-model") {
            opts.faultModel = next();
            opts.faultModelSet = true;
        } else if (arg == "--target-filter") {
            opts.targetFilter = next();
        } else if (arg == "--ladder") {
            const std::string spec = next();
            if (spec == "auto")
                opts.ladderRungs = fi::kLadderAuto;
            else if (spec == "off")
                opts.ladderRungs = 0;
            else {
                char *end = nullptr;
                opts.ladderRungs = static_cast<unsigned>(
                    std::strtoul(spec.c_str(), &end, 10));
                if (!end || *end != '\0')
                    cli::usageError(
                        kTool, "malformed --ladder (want N, auto or "
                               "off):", spec);
            }
        } else if (arg == "--early-stop") {
            const std::string spec = next();
            if (spec == "on")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::On;
            else if (spec == "off")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::Off;
            else if (spec == "auto")
                opts.earlyStop =
                    fi::CampaignOptions::EarlyStopSetting::Auto;
            else
                cli::usageError(
                    kTool, "malformed --early-stop (want on, off or "
                           "auto):", spec);
        } else if (arg == "--prune")
            opts.prune = true;
        else if (arg == "--hvf")
            opts.hvf = true;
        else if (arg == "--no-early-term")
            opts.earlyTerm = false;
        else
            cli::usageError(kTool, "unknown flag", arg);
    }
    if (opts.listen.empty())
        cli::usageError(kTool, "missing --listen", "");
    if (opts.journal.empty())
        cli::usageError(kTool, "missing --journal", "");
    return opts;
}

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop.store(true);
}

int
runDaemon(const Options &opts)
{
    soc::SystemConfig cfg =
        opts.configFile.empty()
            ? soc::preset(opts.preset)
            : soc::configFromFile(opts.configFile);
    if (!opts.driver.empty() && cfg.cluster.designs.empty())
        cfg.cluster.designs.push_back(accel::designs::makeByName(
            opts.driver, kAccelSpaceBase));

    workloads::Workload wl;
    if (!opts.driver.empty())
        wl = workloads::accelDriver(opts.driver, 0);
    else if (!opts.workload.empty())
        wl = workloads::get(opts.workload);
    else
        fatal("marvel-campaignd: need --workload or --driver");

    fi::CampaignOptions copts;
    copts.numFaults = opts.faults;
    copts.model = opts.model;
    // Same precedence as marvel-campaign: --fault-model, then
    // --target-filter shorthand, then the [fault_model] config
    // section, then the legacy single-bit draw. Workers never need a
    // matching flag — they self-configure from the HelloAck meta.
    if (opts.faultModelSet && !opts.targetFilter.empty())
        cli::usageError(kTool,
                        "--fault-model and --target-filter are "
                        "exclusive (fold the filter into the spec):",
                        opts.targetFilter);
    if (opts.faultModelSet)
        copts.modelSpec = fi::FaultModelSpec::parse(opts.faultModel);
    else if (!opts.targetFilter.empty())
        copts.modelSpec = fi::FaultModelSpec::parse(
            "targeted " + opts.targetFilter);
    else if (!opts.configFile.empty())
        copts.modelSpec = fi::FaultModelSpec::fromConfig(
            ConfigFile::parseFile(opts.configFile));
    copts.seed = opts.seed;
    copts.computeHvf = opts.hvf;
    copts.earlyTermination = opts.earlyTerm;
    copts.prune = opts.prune;
    copts.ladderRungs = opts.ladderRungs;
    copts.earlyStop = opts.earlyStop;
    copts.workloadName = wl.name;
    std::string targetName = opts.target;

    // Resuming: the journal's meta is the campaign identity; the
    // command line only needs to rebuild the same golden run (same
    // rule as `marvel-campaign resume`).
    if (store::journalExists(opts.journal)) {
        const store::Journal journal =
            store::readJournal(opts.journal);
        const store::JournalMeta &meta = journal.meta;
        copts.numFaults = static_cast<unsigned>(meta.numFaults);
        copts.seed = meta.seed;
        copts.computeHvf = meta.optHvf != 0;
        copts.earlyTermination = meta.optEarlyTerm != 0;
        copts.timeoutFactor =
            static_cast<double>(meta.timeoutFactorMilli) / 1000.0;
        copts.ladderRungs = meta.ladderRungs;
        copts.prune = meta.optPrune != 0;
        copts.earlyStop =
            meta.optEarlyStop
                ? fi::CampaignOptions::EarlyStopSetting::On
                : fi::CampaignOptions::EarlyStopSetting::Off;
        targetName = meta.target;
        // The journaled spec wins over flags/config on resume, same
        // as every other identity field.
        copts.modelSpec = fi::FaultModelSpec::parse(meta.faultModel);
        if (meta.model == "transient")
            copts.model = fi::FaultModel::Transient;
        else if (meta.model == "stuck-at-0")
            copts.model = fi::FaultModel::StuckAt0;
        else if (meta.model == "stuck-at-1")
            copts.model = fi::FaultModel::StuckAt1;
    } else if (targetName.empty()) {
        fatal("marvel-campaignd: need --target (or an existing "
              "journal to resume)");
    }

    const isa::Program prog = isa::compile(wl.module, cfg.cpu.isa);
    std::printf("golden run (%s, %s)...\n", wl.name.c_str(),
                isa::isaName(cfg.cpu.isa));
    const fi::GoldenRun golden =
        fi::runGolden(cfg, prog, 500'000'000, copts.ladderRungs);
    const fi::TargetRef target =
        fi::targetByName(golden.checkpoint.view(), targetName);
    const fi::TargetInfo info =
        fi::targetInfo(golden.checkpoint.view(), target);

    net::DaemonConfig dcfg;
    dcfg.endpoint = net::parseEndpoint(opts.listen);
    dcfg.journalPath = opts.journal;
    dcfg.meta = sched::journalMetaFor(golden, info, copts);
    dcfg.ttlMillis = opts.ttlMillis;
    dcfg.maxLeaseFaults = opts.leaseFaults;
    dcfg.chunk = opts.chunk;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    net::Daemon daemon(dcfg);
    daemon.start();
    if (!dcfg.endpoint.isUnix && dcfg.endpoint.port == 0)
        std::printf("listening on port %u\n", daemon.tcpPort());
    std::fflush(stdout);
    daemon.run(&gStop);

    if (!daemon.complete()) {
        std::printf("interrupted; %llu/%llu verdicts journaled — "
                    "rerun the same command to resume\n",
                    static_cast<unsigned long long>(
                        daemon.leases().doneCount()),
                    static_cast<unsigned long long>(
                        daemon.leases().numFaults()));
        return 3;
    }
    std::fputs(obs::formatDispatchMetrics(daemon.telemetry()).c_str(),
               stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runDaemon(parseArgs(argc, argv));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
