/**
 * @file
 * marvel-cli — command-line fault-injection campaigns.
 *
 * Mirrors the paper's Fig. 2 campaign layout: pick a hardware
 * configuration (preset or config file), a workload (MiBench kernel or
 * accelerator driver), a target structure, a fault model, and a sample
 * size; the tool runs the golden run, the parallel faulty runs, and
 * prints the AVF/HVF report. Individual fault masks can also be
 * replayed for debugging.
 *
 * Usage:
 *   marvel-cli targets  [--preset riscv-soc]
 *   marvel-cli list-workloads
 *   marvel-cli campaign --workload sha --target l1d [options]
 *   marvel-cli campaign --driver gemm --target gemm.MATRIX1 [options]
 *   marvel-cli replay   --workload sha --mask "l1d entry=3 bit=77 ..."
 *   marvel-cli stats    --workload sha [--json FILE]
 *
 * Options:
 *   --preset NAME      riscv | arm | x86 | *-soc     (default riscv)
 *   --config FILE      INI system description (overrides --preset)
 *   --faults N         sample size                   (default 200)
 *   --model M          transient | stuck-at-0 | stuck-at-1
 *   --seed N           campaign seed                 (default 0x5eed)
 *   --threads N        parallel workers              (default: hw)
 *   --hvf              also compute HVF on the same runs
 *   --no-early-term    disable the SIV-B speed optimizations
 *   --json FILE        (stats) also dump the stats tree as JSON
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "accel/designs/designs.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "fi/campaign.hh"
#include "fi/metrics.hh"
#include "obs/profiler.hh"
#include "soc/builder.hh"
#include "stats/stats.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

struct Options
{
    std::string command;
    std::string preset = "riscv";
    std::string configFile;
    std::string workload;
    std::string driver;
    std::string target;
    std::string mask;
    std::string jsonPath;
    unsigned faults = 200;
    fi::FaultModel model = fi::FaultModel::Transient;
    u64 seed = 0x5eed;
    unsigned threads = 0;
    bool hvf = false;
    bool earlyTerm = true;
};

const cli::Tool kTool = {
    "marvel-cli",
    "usage: marvel-cli "
    "{targets|list-workloads|campaign|replay|stats} "
    "[--preset P] [--config F] [--workload W] "
    "[--driver D] [--target T] [--faults N] [--model M] "
    "[--seed S] [--threads N] [--hvf] [--no-early-term] "
    "[--mask \"...\"] [--json FILE]\n"
    "       marvel-cli --help | --version\n",
};

/** Complain about one specific bad token, then the usage text. */
[[noreturn]] void
usageError(const char *what, const std::string &token)
{
    cli::usageError(kTool, what, token);
}

Options
parseArgs(int argc, char **argv)
{
    Options opts;
    if (argc < 2)
        usageError("missing subcommand", "");
    opts.command = argv[1];
    cli::handleStandardFlag(kTool, opts.command);
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (cli::handleStandardFlag(kTool, arg))
            continue;
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usageError("flag needs a value:", arg);
            return argv[++i];
        };
        if (arg == "--preset")
            opts.preset = next();
        else if (arg == "--config")
            opts.configFile = next();
        else if (arg == "--workload")
            opts.workload = next();
        else if (arg == "--driver")
            opts.driver = next();
        else if (arg == "--target")
            opts.target = next();
        else if (arg == "--mask")
            opts.mask = next();
        else if (arg == "--json")
            opts.jsonPath = next();
        else if (arg == "--faults")
            opts.faults = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--seed")
            opts.seed = std::strtoull(next().c_str(), nullptr, 0);
        else if (arg == "--threads")
            opts.threads = std::strtoul(next().c_str(), nullptr, 10);
        else if (arg == "--model") {
            const std::string m = next();
            if (m == "transient")
                opts.model = fi::FaultModel::Transient;
            else if (m == "stuck-at-0")
                opts.model = fi::FaultModel::StuckAt0;
            else if (m == "stuck-at-1")
                opts.model = fi::FaultModel::StuckAt1;
            else
                usageError("unknown fault model", m);
        } else if (arg == "--hvf")
            opts.hvf = true;
        else if (arg == "--no-early-term")
            opts.earlyTerm = false;
        else
            usageError("unknown flag", arg);
    }
    return opts;
}

soc::SystemConfig
systemFor(const Options &opts)
{
    soc::SystemConfig cfg =
        opts.configFile.empty() ? soc::preset(opts.preset)
                                : soc::configFromFile(opts.configFile);
    // Drivers need their design attached when the preset lacks it.
    if (!opts.driver.empty() && cfg.cluster.designs.empty())
        cfg.cluster.designs.push_back(accel::designs::makeByName(
            opts.driver, kAccelSpaceBase));
    return cfg;
}

workloads::Workload
workloadFor(const Options &opts)
{
    if (!opts.driver.empty())
        return workloads::accelDriver(opts.driver, 0);
    if (!opts.workload.empty())
        return workloads::get(opts.workload);
    fatal("marvel-cli: need --workload or --driver");
}

int
cmdTargets(const Options &opts)
{
    const soc::SystemConfig cfg = systemFor(opts);
    soc::System sys(cfg);
    TextTable table("injectable targets");
    table.header({"name", "entries", "bits/entry", "total bits"});
    for (const fi::TargetInfo &info : fi::listTargets(sys))
        table.row({info.name, strfmt("%u", info.geometry.entries),
                   strfmt("%u", info.geometry.bitsPerEntry),
                   strfmt("%llu",
                          static_cast<unsigned long long>(
                              info.geometry.totalBits()))});
    table.print();
    return 0;
}

int
cmdListWorkloads()
{
    std::printf("MiBench kernels:\n");
    for (const std::string &name : workloads::mibenchNames())
        std::printf("  %s\n", name.c_str());
    std::printf("accelerator drivers (--driver):\n");
    for (const std::string &name :
         accel::designs::allDesignNames())
        std::printf("  %s\n", name.c_str());
    return 0;
}

int
cmdCampaign(const Options &opts)
{
    if (opts.target.empty())
        fatal("marvel-cli: campaign needs --target");
    const soc::SystemConfig cfg = systemFor(opts);
    const workloads::Workload wl = workloadFor(opts);
    const isa::Program prog = isa::compile(wl.module, cfg.cpu.isa);
    std::printf("golden run (%s, %s)...\n", wl.name.c_str(),
                isa::isaName(cfg.cpu.isa));
    const fi::GoldenRun golden = fi::runGolden(cfg, prog);
    std::printf("  window %llu cycles, total %llu cycles, "
                "%zu-uop commit trace\n",
                static_cast<unsigned long long>(golden.windowCycles),
                static_cast<unsigned long long>(golden.totalCycles),
                golden.trace.size());

    const fi::TargetRef target =
        fi::targetByName(golden.checkpoint.view(), opts.target);
    fi::CampaignOptions copts;
    copts.numFaults = opts.faults;
    copts.model = opts.model;
    copts.seed = opts.seed;
    copts.threads = opts.threads;
    copts.computeHvf = opts.hvf;
    copts.earlyTermination = opts.earlyTerm;
    const fi::CampaignResult res =
        fi::runCampaignOnGolden(golden, target, copts);

    TextTable table("campaign: " + wl.name + " / " + opts.target);
    table.header({"metric", "value"});
    table.row({"faults", strfmt("%llu", (unsigned long long)
                                            res.total())});
    table.row({"fault population",
               strfmt("%.3g bit-cycles", res.population())});
    table.row({"error margin (95%)",
               strfmt("+/-%.2f%%", res.errorMargin() * 100)});
    table.row({"AVF", strfmt("%.2f%% (+/-%.2f%%)",
                             res.avf() * 100,
                             res.errorMargin() * 100)});
    table.row({"SDC AVF", strfmt("%.2f%%", res.sdcAvf() * 100)});
    table.row({"Crash AVF", strfmt("%.2f%%", res.crashAvf() * 100)});
    if (opts.hvf)
        table.row({"HVF", strfmt("%.2f%%", res.hvf() * 100)});
    table.row({"masked", strfmt("%llu",
                                (unsigned long long)res.masked)});
    table.row({"  early-terminated",
               strfmt("%llu", (unsigned long long)res.maskedEarly)});
    table.row({"  invalid-entry hits",
               strfmt("%llu",
                      (unsigned long long)res.maskedInvalid)});
    if (res.maskedInAccel)
        table.row({"  contained in accelerator",
                   strfmt("%llu",
                          (unsigned long long)res.maskedInAccel)});
    table.row({"SDCs", strfmt("%llu", (unsigned long long)res.sdc)});
    table.row({"crashes",
               strfmt("%llu", (unsigned long long)res.crash)});
    table.row({"  timeouts",
               strfmt("%llu", (unsigned long long)res.timeouts)});
    table.print();
    return 0;
}

int
cmdStats(const Options &opts)
{
    const soc::SystemConfig cfg = systemFor(opts);
    const workloads::Workload wl = workloadFor(opts);
    soc::System sys(cfg);
    sys.loadProgram(isa::compile(wl.module, cfg.cpu.isa));
    for (;;) {
        const soc::RunExit exit = sys.run(500'000'000);
        if (exit == soc::RunExit::Exited)
            break;
        if (exit == soc::RunExit::Checkpoint ||
            exit == soc::RunExit::SwitchCpu)
            continue; // magic ops are no-ops for a plain stats run
        fatal("marvel-cli: stats run ended with %s (%s)",
              soc::runExitName(exit), sys.crashReason().c_str());
    }

    // One tree carries both clocks: the SoC's simulated counters and
    // the profiler's wall-clock phase split for this process.
    stats::Group root;
    sys.regStats(root);
    obs::profiler::regStats(root);
    const stats::Snapshot snap = stats::Snapshot::capture(root);
    std::fputs(stats::formatText(snap).c_str(), stdout);
    if (!opts.jsonPath.empty()) {
        const std::string json = stats::formatJson(snap);
        std::FILE *f = std::fopen(opts.jsonPath.c_str(), "wb");
        if (!f)
            fatal("marvel-cli: cannot write '%s'",
                  opts.jsonPath.c_str());
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("# json stats written to %s\n",
                    opts.jsonPath.c_str());
    }
    return 0;
}

int
cmdReplay(const Options &opts)
{
    if (opts.mask.empty())
        fatal("marvel-cli: replay needs --mask");
    const soc::SystemConfig cfg = systemFor(opts);
    const workloads::Workload wl = workloadFor(opts);
    const fi::GoldenRun golden =
        fi::runGolden(cfg, isa::compile(wl.module, cfg.cpu.isa));
    const fi::FaultMask mask = fi::FaultMask::parse(opts.mask);
    fi::InjectionOptions iopts;
    iopts.computeHvf = true;
    const fi::RunVerdict verdict =
        fi::runWithFault(golden, mask, iopts);
    std::printf("mask:    %s\nverdict: %s\ncycles:  %llu\n",
                mask.toString().c_str(), verdict.toString().c_str(),
                static_cast<unsigned long long>(verdict.cyclesRun));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        if (opts.command == "targets")
            return cmdTargets(opts);
        if (opts.command == "list-workloads")
            return cmdListWorkloads();
        if (opts.command == "campaign")
            return cmdCampaign(opts);
        if (opts.command == "replay")
            return cmdReplay(opts);
        if (opts.command == "stats")
            return cmdStats(opts);
        usageError("unknown subcommand", opts.command);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
