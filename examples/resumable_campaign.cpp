/**
 * @file
 * Resumable campaigns: persistence, crash recovery, and sharding.
 *
 * Walks the store/sched subsystem end to end:
 *  1. run a journaled campaign (every verdict lands in a crash-safe
 *     JSONL journal, fsync'd in chunks);
 *  2. simulate a SIGKILL by truncating the journal mid-record, then
 *     resume it — the scheduler replays the intact prefix and runs
 *     only the missing fault indices, landing on bit-identical
 *     counts;
 *  3. split the same campaign across two shard journals and merge
 *     them back into the single-process totals.
 *
 *   $ ./resumable_campaign
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "sched/scheduler.hh"
#include "soc/builder.hh"
#include "store/journal.hh"
#include "store/serialize.hh"
#include "workloads/workloads.hh"

using namespace marvel;

namespace
{

std::string
scratch(const char *name)
{
    std::string path = "/tmp/";
    path += name;
    std::remove(path.c_str());
    return path;
}

void
report(const char *label, const fi::CampaignResult &res)
{
    std::printf("%-28s masked=%llu sdc=%llu crash=%llu "
                "(AVF %.1f%% +/-%.1f%%)\n",
                label,
                static_cast<unsigned long long>(res.masked),
                static_cast<unsigned long long>(res.sdc),
                static_cast<unsigned long long>(res.crash),
                res.avf() * 100, res.errorMargin() * 100);
}

} // namespace

int
main()
{
    // A golden run to campaign against, plus its persisted record:
    // the arch-state digest in the journal meta ties every journal
    // to this exact snapshot.
    soc::SystemConfig cfg = soc::preset("riscv");
    const workloads::Workload wl = workloads::get("crc32");
    const fi::GoldenRun golden =
        fi::runGolden(cfg, isa::compile(wl.module,
                                        isa::IsaKind::RISCV));
    const std::string goldenPath = scratch("example_golden.bin");
    store::saveGoldenRun(goldenPath, golden);
    std::printf("golden saved: digest %016llx, window %llu cycles\n",
                static_cast<unsigned long long>(
                    store::loadGoldenRecord(goldenPath).archDigest),
                static_cast<unsigned long long>(golden.windowCycles));

    // 1. A journaled campaign.
    fi::CampaignOptions opts;
    opts.numFaults = 60;
    opts.seed = 0xca3;
    opts.workloadName = wl.name;
    opts.journalPath = scratch("example_campaign.jsonl");
    opts.chunkSize = 16;
    const fi::CampaignResult full =
        sched::runCampaign(golden, {fi::TargetId::L1D}, opts);
    report("journaled run:", full);

    // 2. Crash it: truncate the journal mid-record (what a SIGKILL
    //    during an append leaves behind) and resume.
    std::string content;
    {
        std::ifstream in(opts.journalPath, std::ios::binary);
        content.assign(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out(opts.journalPath,
                          std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size() / 2));
    }
    const sched::ShardProgress torn =
        sched::shardProgress(opts.journalPath);
    std::printf("after simulated crash: %llu/%llu verdicts intact\n",
                static_cast<unsigned long long>(torn.done),
                static_cast<unsigned long long>(torn.expected));
    opts.resume = true;
    const fi::CampaignResult resumed =
        sched::runCampaign(golden, {fi::TargetId::L1D}, opts);
    report("resumed run:", resumed);
    std::printf("  counts %s the uninterrupted run\n",
                resumed.masked == full.masked &&
                        resumed.sdc == full.sdc &&
                        resumed.crash == full.crash
                    ? "MATCH"
                    : "DIVERGE FROM");

    // 3. Shard the campaign 2 ways and merge the journals.
    std::vector<std::string> shardPaths;
    for (u32 s = 0; s < 2; ++s) {
        fi::CampaignOptions shardOpts = opts;
        shardOpts.resume = false;
        shardOpts.shardIndex = s;
        shardOpts.shardCount = 2;
        shardOpts.journalPath =
            scratch(s == 0 ? "example_shard0.jsonl"
                           : "example_shard1.jsonl");
        const fi::CampaignResult part = sched::runCampaign(
            golden, {fi::TargetId::L1D}, shardOpts);
        std::printf("shard %u/2: %llu faults\n", s,
                    static_cast<unsigned long long>(part.total()));
        shardPaths.push_back(shardOpts.journalPath);
    }
    const fi::CampaignResult merged =
        sched::mergeJournals(shardPaths);
    report("merged shards:", merged);
    return 0;
}
