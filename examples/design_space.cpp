/**
 * @file
 * Accelerator design-space exploration (the paper's §V-H study), built
 * from a text system description (the configuration-script-generator
 * path): sweep the GEMM datapath parallelism and report the
 * reliability / performance / area trade-off.
 *
 *   $ ./design_space [faults]
 */

#include <cstdio>
#include <cstdlib>

#include "accel/designs/designs.hh"
#include "common/table.hh"
#include "fi/campaign.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

int
main(int argc, char **argv)
{
    const unsigned faults =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;

    // The host side comes from a config description; the swept
    // accelerator is attached programmatically per configuration.
    const soc::SystemConfig base = soc::configFromText(
        "[system]\n"
        "isa = riscv\n"
        "[cpu]\n"
        "rob = 128\n"
        "iq = 64\n");

    fi::CampaignOptions opts;
    opts.numFaults = faults;
    TextTable table("GEMM datapath DSE");
    table.header({"parallelism", "AVF(MATRIX1)%", "cycles",
                  "area(a.u.)", "cycles*area"});
    for (unsigned p : {1u, 2u, 4u, 8u}) {
        accel::FuConfig fu;
        for (unsigned i = 0; i < isa::kNumFuClasses; ++i)
            fu.counts[i] = std::max(1u, p / 2);
        fu.counts[(unsigned)isa::FuClass::IntAlu] = 2 * p;
        fu.counts[(unsigned)isa::FuClass::FpMul] = p;
        fu.counts[(unsigned)isa::FuClass::FpAlu] = p;
        fu.counts[(unsigned)isa::FuClass::MemPort] = 2 * p;

        soc::SystemConfig cfg = base;
        cfg.cluster.designs.push_back(
            accel::designs::makeGemm(kAccelSpaceBase, &fu));
        const workloads::Workload wl = workloads::accelDriver("gemm", 0);
        const fi::GoldenRun golden = fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
        const fi::TargetRef ref = fi::targetByName(
            golden.checkpoint.view(), "gemm.MATRIX1");
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, ref, opts);
        const double area = cfg.cluster.designs[0].area();
        table.row({strfmt("P%u", p),
                   strfmt("%.1f", res.avf() * 100),
                   strfmt("%llu", static_cast<unsigned long long>(
                                      golden.windowCycles)),
                   strfmt("%.0f", area),
                   strfmt("%.3g", area * static_cast<double>(
                                             golden.windowCycles))});
    }
    table.print();
    std::printf("fewer parallel units -> longer residency of live "
                "input data -> higher AVF (paper Obs. #8)\n");
    return 0;
}
