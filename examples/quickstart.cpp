/**
 * @file
 * Quickstart: the 60-second tour of MARVEL.
 *
 * Builds a small workload in MIR, compiles it for the RISC-V flavor,
 * takes the golden run, injects a single transient bit flip into the
 * integer physical register file, and classifies the outcome — then
 * runs a small campaign and prints the AVF.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "fi/campaign.hh"
#include "mir/builder.hh"
#include "soc/builder.hh"

using namespace marvel;

int
main()
{
    // 1. A workload: sum an array, with the fault-injection window
    //    delimited by the Checkpoint/SwitchCpu magic instructions.
    mir::ModuleBuilder mb;
    mb.globalInit("data", std::vector<u8>(4096, 0x21), 64);
    mir::FunctionBuilder fb = mb.func("main", {}, true);
    mir::VReg data = fb.gaddr("data");
    fb.checkpoint();
    mir::VReg sum = fb.constI(0);
    auto loop = fb.beginLoop(fb.constI(0), fb.constI(4096 / 8));
    fb.assign(sum,
              fb.add(sum, fb.ld8(fb.add(data, fb.shlI(loop.idx, 3)))));
    fb.endLoop(loop);
    fb.switchCpu();
    fb.st8(fb.constI(static_cast<i64>(kOutputBase)), sum);
    fb.ret(sum);
    mb.setEntry("main");
    mir::verify(mb.module());

    // 2. Compile for an ISA flavor and take the golden run.
    soc::SystemConfig cfg = soc::preset("riscv");
    const isa::Program prog =
        isa::compile(mb.module(), isa::IsaKind::RISCV);
    const fi::GoldenRun golden = fi::runGolden(cfg, prog);
    std::printf("golden: %llu cycles, window %llu cycles, exit %lld\n",
                static_cast<unsigned long long>(golden.totalCycles),
                static_cast<unsigned long long>(golden.windowCycles),
                static_cast<long long>(golden.exitCode));

    // 3. Inject one fault by hand.
    fi::FaultMask mask = fi::FaultMask::parse(
        "prf-int entry=70 bit=17 model=transient cycle=100");
    const fi::RunVerdict verdict = fi::runWithFault(golden, mask);
    std::printf("fault [%s] -> %s\n", mask.toString().c_str(),
                verdict.toString().c_str());

    // 4. A statistical campaign over the same structure.
    fi::CampaignOptions opts;
    opts.numFaults = 200;
    const fi::CampaignResult res = fi::runCampaignOnGolden(
        golden, {fi::TargetId::PrfInt}, opts);
    std::printf("campaign: AVF %.1f%% (SDC %.1f%%, Crash %.1f%%) "
                "over %llu faults, margin +/-%.1f%%\n",
                res.avf() * 100, res.sdcAvf() * 100,
                res.crashAvf() * 100,
                static_cast<unsigned long long>(res.total()),
                res.errorMargin() * 100);
    return 0;
}
