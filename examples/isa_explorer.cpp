/**
 * @file
 * Cross-ISA vulnerability exploration (the paper's §V-B study on one
 * workload): compile the same benchmark for all three ISA flavors and
 * compare the AVF of a chosen hardware structure.
 *
 *   $ ./isa_explorer [workload] [target] [faults]
 *   $ ./isa_explorer sha l1d 200
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "fi/campaign.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "crc32";
    const std::string targetName = argc > 2 ? argv[2] : "prf-int";
    const unsigned faults =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 150;

    const workloads::Workload wl = workloads::get(workload);
    fi::CampaignOptions opts;
    opts.numFaults = faults;
    opts.computeHvf = true;

    TextTable table("ISA comparison: " + workload + " / " +
                    targetName);
    table.header({"ISA", "AVF%", "SDC%", "Crash%", "HVF%",
                  "golden cycles", "code bytes"});
    for (isa::IsaKind kind : isa::kAllIsas) {
        soc::SystemConfig cfg = soc::preset(isa::isaName(kind));
        const isa::Program prog = isa::compile(wl.module, kind);
        const fi::GoldenRun golden = fi::runGolden(cfg, prog);
        const fi::TargetRef target =
            fi::targetByName(golden.checkpoint.view(), targetName);
        const fi::CampaignResult res =
            fi::runCampaignOnGolden(golden, target, opts);
        table.row({isa::isaName(kind),
                   strfmt("%.1f", res.avf() * 100),
                   strfmt("%.1f", res.sdcAvf() * 100),
                   strfmt("%.1f", res.crashAvf() * 100),
                   strfmt("%.1f", res.hvf() * 100),
                   strfmt("%llu", static_cast<unsigned long long>(
                                      golden.totalCycles)),
                   strfmt("%llu", static_cast<unsigned long long>(
                                      prog.stats.codeBytes))});
    }
    table.print();
    return 0;
}
