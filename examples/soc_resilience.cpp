/**
 * @file
 * Heterogeneous SoC resilience study (the paper's §V-G scenario): the
 * same GEMM task on the host CPU and on a GEMM accelerator, comparing
 * raw AVF against the performance-aware Operations-per-Failure metric.
 *
 *   $ ./soc_resilience [algorithm] [faults]     (gemm/bfs/fft/md_knn)
 */

#include <cstdio>
#include <cstdlib>

#include "accel/designs/designs.hh"
#include "common/table.hh"
#include "fi/campaign.hh"
#include "fi/metrics.hh"
#include "soc/builder.hh"
#include "workloads/workloads.hh"

using namespace marvel;

int
main(int argc, char **argv)
{
    const std::string algo = argc > 1 ? argv[1] : "gemm";
    const unsigned faults =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;
    fi::CampaignOptions opts;
    opts.numFaults = faults;

    TextTable table("CPU vs DSA: " + algo);
    table.header({"platform", "target", "AVF%", "cycles", "OPF"});

    // CPU side: the algorithm compiled for the RISC-V core; faults go
    // into the L1 data cache holding its working set.
    {
        const workloads::Workload wl = workloads::cpuVersionOf(algo);
        soc::SystemConfig cfg = soc::preset("riscv");
        const fi::GoldenRun golden = fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
        const fi::CampaignResult res = fi::runCampaignOnGolden(
            golden, {fi::TargetId::L1D}, opts);
        table.row({"cpu", "l1d", strfmt("%.1f", res.avf() * 100),
                   strfmt("%llu", static_cast<unsigned long long>(
                                      golden.windowCycles)),
                   strfmt("%.3g",
                          fi::operationsPerFailure(
                              wl.opsPerRun, golden.windowCycles,
                              res.avf(), cfg.clockGHz))});
    }

    // DSA side: the MachSuite design driven over MMRs + DMA + IRQ;
    // faults go into each of its Table IV components.
    {
        soc::SystemConfig cfg = soc::preset("riscv");
        cfg.cluster.designs.push_back(
            accel::designs::makeByName(algo, kAccelSpaceBase));
        const workloads::Workload wl = workloads::accelDriver(algo, 0);
        const fi::GoldenRun golden = fi::runGolden(
            cfg, isa::compile(wl.module, isa::IsaKind::RISCV));
        for (const fi::TargetInfo &info :
             fi::listTargets(golden.checkpoint.view())) {
            if (info.ref.id != fi::TargetId::AccelMem)
                continue;
            const fi::CampaignResult res =
                fi::runCampaignOnGolden(golden, info.ref, opts);
            table.row({"dsa", info.name,
                       strfmt("%.1f", res.avf() * 100),
                       strfmt("%llu",
                              static_cast<unsigned long long>(
                                  golden.windowCycles)),
                       strfmt("%.3g",
                              fi::operationsPerFailure(
                                  wl.opsPerRun, golden.windowCycles,
                                  res.avf(), cfg.clockGHz))});
        }
    }
    table.print();
    std::printf("OPF = correct task executions per failure; the DSA "
                "trades higher AVF for far higher throughput.\n");
    return 0;
}
